#!/usr/bin/env bash
# Process-level crash-recovery check (CI `recovery` job, also runnable
# locally): start the durable server, load a database over the wire,
# apply row-level INSERT/DELETE mutations (journaled through the WAL),
# record a QUERY answer and a SUBSCRIBE view's contents, `kill -9` the
# process, restart it on the same --wal-dir, and require (a) the startup
# log to report a recovered catalog, (b) the same QUERY to return
# byte-identical rows, and (c) a re-registered subscription to
# materialize the identical view contents against the recovered catalog.
#
# Uses only bash (/dev/tcp) and the repo's own `serve` example — no
# external client. The wire protocol frames each response with a final
# `.` line, so a session is: send a line, read lines up to `.`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill -9 "${pid:-}" "${pid2:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

data="$workdir/data"
wal="$workdir/wal"
mkdir -p "$data" "$wal"
printf 'R(a, b):\n  1, 2\n  2, 3\nS(b, c):\n  2, 9\n  3, 7\n' > "$data/base.db"

cargo build --release --example serve

serve_bin=target/release/examples/serve
query_body='G(x, z) :- R(x, y), S(y, z).'
query="QUERY d $query_body"

# Wait for the server whose log is $1 to print its address, echo it.
wait_addr() {
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^pq-service listening on //p' "$1" | head -n 1)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "server did not come up; log:" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$addr"
}

# Drive one connection: requests on stdin, all response lines on stdout.
session() {
  local host=${1%:*} port=${1##*:}
  exec 3<>"/dev/tcp/$host/$port"
  local req line
  while IFS= read -r req; do
    printf '%s\n' "$req" >&3
    while IFS= read -r line <&3; do
      line=${line%$'\r'}
      [ "$line" = "." ] && break
      printf '%s\n' "$line"
    done
  done
  exec 3<&- 3>&-
}

echo "== first server: load + mutate over the wire, record answers, kill -9"
"$serve_bin" 127.0.0.1:0 --data-dir "$data" --wal-dir "$wal" --fsync always \
  > "$workdir/log1" 2>&1 &
pid=$!
addr=$(wait_addr "$workdir/log1")

# Row-level mutations ride the WAL: the post-crash catalog must include
# the inserted row and lack the deleted one. After R += (9,2) and
# S -= (3,7) the join answer is exactly {(1,9), (9,9)}.
printf '%s\n' \
  "LOAD d base.db" \
  "INSERT d R 9, 2" \
  "DELETE d S 3, 7" \
  "$query" | session "$addr" > "$workdir/before"
grep -q '^OK loaded d relations=2 tuples=4' "$workdir/before"
grep -q '^OK inserted 1 R' "$workdir/before"
grep -q '^OK deleted 1 S' "$workdir/before"
grep -q '^OK 2 x,z' "$workdir/before"

# A live view over the same query: its initial materialization is the
# pre-crash reference for the post-recovery subscription.
printf '%s\n' "SUBSCRIBE d $query_body" | session "$addr" > "$workdir/sub_before"
grep -q '^OK subscribed' "$workdir/sub_before"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== second server: recover from the WAL dir alone, compare answers"
"$serve_bin" 127.0.0.1:0 --wal-dir "$wal" --fsync always \
  > "$workdir/log2" 2>&1 &
pid2=$!
addr=$(wait_addr "$workdir/log2")
grep -q '^recovered catalog from' "$workdir/log2"

# A fresh subscription must re-register against the recovered catalog and
# materialize exactly the pre-crash view contents (modulo the sub id).
printf '%s\n' "SUBSCRIBE d $query_body" | session "$addr" > "$workdir/sub_after"
grep -q '^OK subscribed' "$workdir/sub_after"
sed 1d "$workdir/sub_before" > "$workdir/sub_before_rows"
sed 1d "$workdir/sub_after"  > "$workdir/sub_after_rows"
diff -u "$workdir/sub_before_rows" "$workdir/sub_after_rows"

printf '%s\n' "$query" "SHUTDOWN" | session "$addr" > "$workdir/after"
wait "$pid2" 2>/dev/null || true
pid2=""

# Compare the QUERY responses, ignoring the volatile `# engine=.. cache=..`
# header suffix and the LOAD/INSERT/DELETE/SHUTDOWN acks around them.
grep -v '^OK \(loaded\|inserted\|deleted\)' "$workdir/before" | sed 's/ # .*//' > "$workdir/before_q"
grep -v '^OK bye' "$workdir/after" | sed 's/ # .*//' > "$workdir/after_q"
diff -u "$workdir/before_q" "$workdir/after_q"

echo "kill -9 recovery: answers and view contents identical across the crash"
