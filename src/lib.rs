//! Umbrella crate: re-exports the whole workspace for examples and integration tests.
pub use pq_core as core;
pub use pq_data as data;
pub use pq_engine as engine;
pub use pq_exec as exec;
pub use pq_hypergraph as hypergraph;
pub use pq_query as query;
pub use pq_wtheory as wtheory;
