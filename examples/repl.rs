//! A minimal interactive client for the `pq-service` wire protocol.
//!
//! Run with: `cargo run --release --example repl -- [addr]`
//! (default `127.0.0.1:7878`; start `examples/serve.rs` first).
//!
//! Type protocol lines at the prompt:
//!
//! ```text
//! LOAD company data/company.db
//! QUERY company G(e) :- EP(e, p), ES(e, s), s > 110.
//! QUERY @deadline_ms=50 @budget=100000 company G(x, z) :- E(x, y), E(y, z).
//! EXPLAIN company G(x, z) :- E(x, y), E(y, z).
//! STATS
//! SHUTDOWN
//! ```

use std::io::{BufRead, Write};
use std::net::TcpStream;

use pq_service::roundtrip;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut stream = TcpStream::connect(&addr)
        .unwrap_or_else(|e| panic!("cannot connect to {addr}: {e} (is `serve` running?)"));
    println!("connected to {addr}; type requests, Ctrl-D to quit");

    let stdin = std::io::stdin();
    loop {
        print!("pq> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap() == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match roundtrip(&mut stream, line) {
            Ok(lines) => {
                for l in &lines {
                    println!("{l}");
                }
                if line.eq_ignore_ascii_case("shutdown") {
                    break;
                }
            }
            Err(e) => {
                eprintln!("connection error: {e}");
                break;
            }
        }
    }
    println!("bye");
}
