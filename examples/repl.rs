//! A minimal interactive client for the `pq-service` wire protocol.
//!
//! Run with: `cargo run --release --example repl -- [addr]`
//! (default `127.0.0.1:7878`; start `examples/serve.rs` first).
//!
//! Type protocol lines at the prompt:
//!
//! ```text
//! LOAD company data/company.db
//! QUERY company G(e) :- EP(e, p), ES(e, s), s > 110.
//! QUERY @deadline_ms=50 @budget=100000 company G(x, z) :- E(x, y), E(y, z).
//! QUERY @count company G(x, z) :- E(x, y), E(y, z).
//! QUERY @count_by(x) company G(x, z) :- E(x, y), E(y, z).
//! EXPLAIN company G(x, z) :- E(x, y), E(y, z).
//! INSERT company EP ann, web; bob, api
//! DELETE company EP bob, api
//! SUBSCRIBE company G(e) :- EP(e, p), ES(e, s).
//! STATS
//! SHUTDOWN
//! ```
//!
//! `@count` / `@count_by(x̄)` answer with exact answer counts (one `count`
//! row, or one row per group) computed without enumeration when possible.
//!
//! `SUBSCRIBE` switches the session into streaming mode: the initial answer
//! and every pushed `DELTA` frame are printed as they arrive, until Enter or
//! Ctrl-D ends the subscription (the connection is dedicated to it, so the
//! repl exits afterwards). The `OK subscribed <id> <n> <attrs>` header and
//! each `DELTA … rows=<n>` header carry the view's current cardinality, so
//! a count-watcher can follow `|V(d)|` without reading the row bodies.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use pq_service::{read_response, roundtrip};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let mut stream = TcpStream::connect(&addr)
        .unwrap_or_else(|e| panic!("cannot connect to {addr}: {e} (is `serve` running?)"));
    println!("connected to {addr}; type requests, Ctrl-D to quit");

    let stdin = std::io::stdin();
    loop {
        print!("pq> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap() == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.len() >= 9 && line[..9].eq_ignore_ascii_case("subscribe") {
            stream_subscription(&stream, line);
            break; // the connection was dedicated to the subscription
        }
        match roundtrip(&mut stream, line) {
            Ok(lines) => {
                for l in &lines {
                    println!("{l}");
                }
                if line.eq_ignore_ascii_case("shutdown") {
                    break;
                }
            }
            Err(e) => {
                eprintln!("connection error: {e}");
                break;
            }
        }
    }
    println!("bye");
}

/// Send a `SUBSCRIBE` line, then print the initial answer and every pushed
/// `DELTA` frame as it arrives; Enter or Ctrl-D ends the subscription.
fn stream_subscription(stream: &TcpStream, line: &str) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connection error: {e}");
            return;
        }
    };
    if writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("connection error: cannot send subscription");
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("connection error: {e}");
            return;
        }
    };
    println!("streaming (press Enter or Ctrl-D to stop)…");
    let printer = std::thread::spawn(move || {
        while let Ok(frame) = read_response(&mut reader) {
            for l in &frame {
                println!("{l}");
            }
            if frame
                .first()
                .is_some_and(|l| l.starts_with("OK unsubscribed") || l.starts_with("ERR"))
            {
                break;
            }
        }
    });
    // Block on stdin: any input (or EOF) tells the server to unsubscribe,
    // which ends the stream and closes the connection.
    let mut sink = String::new();
    let _ = std::io::stdin().lock().read_line(&mut sink);
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
    let _ = printer.join();
    println!("subscription ended");
}
