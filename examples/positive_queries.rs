//! Theorem 1(2) live: positive queries, W[SAT], and the prenex caveat.
//!
//! Walks the two directions tying positive queries (parameter `v`) to
//! weighted formula satisfiability, shows the union-of-CQs expansion
//! exploding exponentially in `q` (while remaining a legal parametric
//! reduction), and demonstrates why prenexing does not preserve `v`.
//!
//! Run with: `cargo run --release --example positive_queries`

use pq_engine::positive_eval;
use pq_query::{parse_positive, QueryMetrics};
use pq_wtheory::formula::BoolFormula;
use pq_wtheory::reductions::wformula_positive;
use pq_wtheory::weighted_sat::weighted_formula_sat_n;

fn main() {
    // -- R5: a weighted-satisfiability question as a database query --------
    // φ = (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (x2 ∨ ¬x3), k = 2.
    let phi = BoolFormula::and([
        BoolFormula::or([BoolFormula::var(0), BoolFormula::var(1)]),
        BoolFormula::or([BoolFormula::neg(0), BoolFormula::var(2)]),
        BoolFormula::or([BoolFormula::var(1), BoolFormula::neg(2)]),
    ]);
    let (n, k) = (3, 2);
    println!("φ = {phi},  weight k = {k}");
    let truth = weighted_formula_sat_n(&phi, n, k).is_some();
    println!("weighted satisfiability (ground truth): {truth}");

    let inst = wformula_positive::wformula_to_positive(&phi, n, k).expect("n covers φ");
    println!(
        "\nR5 database: EQ with {} tuples, NEQ with {} tuples",
        inst.database.relation("EQ").unwrap().len(),
        inst.database.relation("NEQ").unwrap().len()
    );
    println!("R5 query (prenex, v = {}):", inst.query.num_variables());
    println!("  {}", inst.query);
    let via_query = positive_eval::query_holds(&inst.query, &inst.database).unwrap();
    println!(
        "query evaluates to: {via_query}   (must equal ground truth: {})",
        via_query == truth
    );
    assert_eq!(via_query, truth);

    // -- R6: and back again -------------------------------------------------
    let back = wformula_positive::prenex_positive_to_wformula(&inst.query, &inst.database)
        .expect("R5 output is prenex and closed");
    println!(
        "\nR6 round trip: Boolean formula over {} z-variables, weight {}",
        back.num_vars, back.k
    );
    let round = weighted_formula_sat_n(&back.formula, back.num_vars, back.k).is_some();
    assert_eq!(round, truth);
    println!("round-trip answer preserved: {round}");

    // -- The union-of-CQs expansion is exponential in q ----------------------
    println!("\nunion-of-CQs expansion (the W[1] membership route, parameter q):");
    for m in 1..=4usize {
        // (A1 ∨ B1) ∧ … ∧ (Am ∨ Bm): 2^m disjuncts.
        let mut src = String::from("Q(x) := ");
        for i in 0..m {
            if i > 0 {
                src.push_str(" & ");
            }
            src.push_str(&format!("(A{i}(x) | B{i}(x))"));
        }
        let q = parse_positive(&src).unwrap();
        println!(
            "  {} conjuncts → {} CQ disjuncts (q = {})",
            m,
            q.to_union_of_cqs().len(),
            q.size()
        );
    }

    // -- The prenex caveat: prenexing grows v --------------------------------
    let q = parse_positive("Q(x) := exists y. R(x, y) | exists y. S(x, y)").unwrap();
    let (quants, _) = q.to_prenex();
    println!("\nprenex caveat:");
    println!("  original:  {q}    (v = {})", q.num_variables());
    println!("  prenexing renames the sibling scopes: quantifier block {quants:?}");
    println!(
        "  → v grows from {} to {} — why the paper's W[SAT]-completeness",
        q.num_variables(),
        quants.len() + 1
    );
    println!("    under parameter v is stated for *prenex* positive queries only.");
}
