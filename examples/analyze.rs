//! Lint a corpus with the static analyzer and print one deterministic
//! report per entry — the CI lint gate diffs this output against the
//! golden files (see `tests/analyze_golden.rs` for the in-process twin of
//! the same check).
//!
//! A `.cq` corpus holds one conjunctive query per line; a `.dl` corpus
//! holds blank-line-separated Datalog programs (lines of a block are
//! joined with single spaces, so programs can be written one rule per
//! line). `#` lines are comments in both.
//!
//! ```text
//! cargo run --release --example analyze -- tests/corpus/queries.cq
//! cargo run --release --example analyze -- tests/corpus/programs.dl
//! ```

use pq_analyze::{analyze, analyze_program, AnalyzeOptions};
use pq_query::{parse_cq, parse_datalog};

/// Render the analyzer's report for one corpus query. Shared shape with
/// `tests/analyze_golden.rs`: `## <src>` then one line per diagnostic, the
/// minimized core when one exists, and the final verdict. An `@count `
/// prefix runs the counting-tractability pass (`PQA7xx`) on the query, the
/// way the wire flag does; a `@view <view-cq> | <query>` row registers the
/// view under the name `v` and runs the containment pass (`PQA8xx`)
/// against it, the way the service matches queries against a database's
/// live view registry.
pub fn report(src: &str) -> String {
    let mut out = format!("## {src}\n");
    let mut opts = AnalyzeOptions::default();
    let mut src = src;
    if let Some(rest) = src.strip_prefix("@view ") {
        let Some((view_src, q_src)) = rest.split_once('|') else {
            out.push_str("parse error: `@view` rows need `<view-cq> | <query>`\n");
            return out;
        };
        match parse_cq(view_src.trim()) {
            Ok(v) => {
                opts.views = vec![("v".to_string(), v)];
                src = q_src.trim();
            }
            Err(e) => {
                out.push_str(&format!("parse error: {e}\n"));
                return out;
            }
        }
    } else if let Some(rest) = src.strip_prefix("@count ") {
        opts.counting = true;
        src = rest.trim();
    }
    match parse_cq(src) {
        Err(e) => out.push_str(&format!("parse error: {e}\n")),
        Ok(q) => {
            for line in analyze(&q, &opts).lines() {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

/// Render the whole-program analyzer's report for one corpus program
/// (`src` is the block already joined onto one line).
pub fn report_program(src: &str) -> String {
    let mut out = format!("## {src}\n");
    match parse_datalog(src) {
        Err(e) => out.push_str(&format!("parse error: {e}\n")),
        Ok(p) => {
            for line in analyze_program(&p, &AnalyzeOptions::default()).lines() {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

/// Split a `.dl` corpus into one-line program sources: blocks are
/// separated by blank lines, `#` lines are dropped, and a block's lines
/// are joined with single spaces.
pub fn program_blocks(corpus: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for line in corpus.lines().chain(std::iter::once("")) {
        let line = line.trim();
        if line.is_empty() {
            if !current.is_empty() {
                blocks.push(current.join(" "));
                current.clear();
            }
        } else if !line.starts_with('#') {
            current.push(line);
        }
    }
    blocks
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/corpus/queries.cq".to_string());
    let corpus = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read corpus `{path}`: {e}"));
    let mut first = true;
    if path.ends_with(".dl") {
        for src in program_blocks(&corpus) {
            if !first {
                println!();
            }
            first = false;
            print!("{}", report_program(&src));
        }
    } else {
        for line in corpus.lines() {
            let src = line.trim();
            if src.is_empty() || src.starts_with('#') {
                continue;
            }
            if !first {
                println!();
            }
            first = false;
            print!("{}", report(src));
        }
    }
}
