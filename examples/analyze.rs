//! Lint a corpus of conjunctive queries with the static analyzer and print
//! one deterministic report per query — the CI lint gate diffs this output
//! against `tests/corpus/golden.txt` (see `tests/analyze_golden.rs` for the
//! in-process twin of the same check).
//!
//! ```text
//! cargo run --release --example analyze -- tests/corpus/queries.cq
//! ```

use pq_analyze::{analyze, AnalyzeOptions};
use pq_query::parse_cq;

/// Render the analyzer's report for one corpus line. Shared shape with
/// `tests/analyze_golden.rs`: `## <src>` then one line per diagnostic, the
/// minimized core when one exists, and the final verdict.
pub fn report(src: &str) -> String {
    let mut out = format!("## {src}\n");
    match parse_cq(src) {
        Err(e) => out.push_str(&format!("parse error: {e}\n")),
        Ok(q) => {
            for line in analyze(&q, &AnalyzeOptions::default()).lines() {
                out.push_str(&line);
                out.push('\n');
            }
        }
    }
    out
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/corpus/queries.cq".to_string());
    let corpus = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read corpus `{path}`: {e}"));
    let mut first = true;
    for line in corpus.lines() {
        let src = line.trim();
        if src.is_empty() || src.starts_with('#') {
            continue;
        }
        if !first {
            println!();
        }
        first = false;
        print!("{}", report(src));
    }
}
