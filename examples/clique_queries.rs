//! Theorem 1(1) live: the clique problem *is* conjunctive-query evaluation.
//!
//! Runs the paper's R1 reduction (clique → CQ) and its converse circle
//! (CQ → weighted 2-CNF → conflict-graph clique, footnote 2), and measures
//! the `n^k` scaling of the generic evaluator — the exponent the paper
//! argues is inherent.
//!
//! Run with: `cargo run --release --example clique_queries`

use std::time::Instant;

use pq_engine::naive;
use pq_query::QueryMetrics;
use pq_wtheory::graphs::random_graph;
use pq_wtheory::reductions::{clique_to_cq, cq_to_w2cnf};
use pq_wtheory::weighted_sat::has_weighted_cnf_sat;

fn main() {
    println!("== R1: clique(G, k) as the query  P :- ⋀ G(xi, xj)  ==\n");
    println!(
        "{:>6} {:>4} {:>8} {:>8} {:>12} {:>8}",
        "n", "k", "q", "v", "naive time", "clique?"
    );
    for k in [2usize, 3, 4] {
        for n in [16usize, 32, 64] {
            let g = random_graph(n, 0.25, (n * 31 + k) as u64);
            let (db, q) = clique_to_cq::reduce(&g, k);
            let t0 = Instant::now();
            let ans = naive::is_nonempty(&q, &db).unwrap();
            let dt = t0.elapsed();
            assert_eq!(ans, g.has_clique(k), "reduction must be exact");
            println!(
                "{:>6} {:>4} {:>8} {:>8} {:>12.2?} {:>8}",
                n,
                k,
                q.size(),
                q.num_variables(),
                dt,
                ans
            );
        }
    }

    println!("\n== Footnote 2: the same query, back to clique ==\n");
    let g = random_graph(12, 0.4, 7);
    let (db, q) = clique_to_cq::reduce(&g, 3);
    let inst = cq_to_w2cnf::reduce(&q, &db).unwrap();
    println!(
        "2-CNF: {} variables, {} clauses, weight k = {}",
        inst.cnf.num_vars,
        inst.cnf.clauses.len(),
        inst.k
    );
    let conflict = cq_to_w2cnf::conflict_graph(&inst);
    println!(
        "conflict graph: {} vertices, {} edges",
        conflict.num_vertices(),
        conflict.num_edges()
    );
    let via_cnf = has_weighted_cnf_sat(&inst.cnf, inst.k);
    let via_clique = conflict.has_clique(inst.k);
    let direct = g.has_clique(3);
    println!("clique in G: {direct}   weighted 2-CNF: {via_cnf}   clique in conflict graph: {via_clique}");
    assert_eq!(direct, via_cnf);
    assert_eq!(direct, via_clique);
    println!("\nAll three agree — the W[1]-completeness circle closes.");
}
