//! Resource limits & graceful degradation: evaluate under a deadline, a
//! tuple budget, and cancellation, and watch the planner's fallback chain
//! recover from an engine that gives up.
//!
//! Run with: `cargo run --release --example resource_limits`

use std::time::Duration;

use pq_core::evaluate_with_fallback;
use pq_data::{tuple, Database};
use pq_engine::governor::{CancellationToken, ExecutionContext};
use pq_engine::{naive, EngineError};
use pq_query::parse_cq;

fn main() {
    // A path graph large enough that a generous evaluation does real work.
    let mut db = Database::new();
    let n = 500i64;
    db.add_table("E", ["a", "b"], (0..n - 1).map(|i| tuple![i, i + 1]))
        .unwrap();
    let q = parse_cq("G(x, z) :- E(x, y), E(y, z).").unwrap();

    // 1. Unlimited: the ungoverned entry point, as before.
    let full = naive::evaluate(&q, &db).unwrap();
    println!("unlimited:     {} answer tuples", full.len());

    // 2. A generous governor changes nothing.
    let roomy = ExecutionContext::new()
        .with_deadline(Duration::from_secs(10))
        .with_tuple_budget(1_000_000);
    let same = naive::evaluate_governed(&q, &db, &roomy).unwrap();
    println!(
        "roomy budget:  {} answer tuples ({} ticks, {} tuples charged)",
        same.len(),
        roomy.ticks(),
        roomy.tuples_materialized()
    );
    assert_eq!(full, same);

    // 3. A tuple budget smaller than the answer: structured failure, not a
    //    truncated relation.
    let tight = ExecutionContext::new().with_tuple_budget(100);
    match naive::evaluate_governed(&q, &db, &tight) {
        Err(e @ EngineError::ResourceExhausted { .. }) => {
            println!("tight budget:  {e}");
        }
        other => panic!("expected exhaustion, got {other:?}"),
    }

    // 4. An already-expired deadline.
    let expired = ExecutionContext::new().with_deadline(Duration::ZERO);
    let err = naive::evaluate_governed(&q, &db, &expired).unwrap_err();
    println!("zero deadline: {err}");

    // 5. Cooperative cancellation (here: cancelled up front; in real use,
    //    another thread flips the token mid-evaluation).
    let token = CancellationToken::new();
    token.cancel();
    let cancelled = ExecutionContext::new().with_cancellation(token);
    let err = naive::evaluate_governed(&q, &db, &cancelled).unwrap_err();
    println!("cancelled:     {err}");

    // 6. The planner's graceful degradation: a cyclic (W[1]-hard) query is
    //    Unsupported by the structure-exploiting engines; the fallback chain
    //    records each attempt and lands on an engine that can answer it.
    let mut tri = Database::new();
    tri.add_table("R", ["a", "b"], [tuple![1, 2], tuple![2, 3], tuple![3, 1]])
        .unwrap();
    let cyclic = parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap();
    let ctx = ExecutionContext::new().with_tuple_budget(10_000);
    let out = evaluate_with_fallback(&cyclic, &tri, &ctx).unwrap();
    println!("fallback trail for a cyclic query:");
    for a in &out.attempts {
        match &a.error {
            Some(e) => println!("  {:>13}: gave up ({e})", a.engine),
            None => println!("  {:>13}: ok — {} tuple(s)", a.engine, out.result.len()),
        }
    }
}
