//! Section 4's recursive languages: bottom-up Datalog evaluation, naive vs
//! semi-naive, on transitive closure and same-generation workloads.
//!
//! Run with: `cargo run --release --example datalog_reachability`

use std::time::Instant;

use pq_data::{tuple, Database};
use pq_engine::datalog_eval::{self, Strategy};
use pq_query::parse_datalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dag(n: usize, avg_out: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool((avg_out / n as f64).min(1.0)) {
                rows.push(tuple![a, b]);
            }
        }
    }
    let mut db = Database::new();
    db.add_table("E", ["a", "b"], rows).unwrap();
    db
}

fn main() {
    let tc = parse_datalog(
        "T(x, y) :- E(x, y).\n\
         T(x, z) :- E(x, y), T(y, z).\n\
         ?- T",
    )
    .unwrap();
    println!("program:\n{tc}\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "nodes", "edges", "naive", "semi-naive", "rounds", "|T|"
    );
    for n in [50usize, 100, 200, 400] {
        let db = random_dag(n, 3.0, 11);
        let edges = db.relation("E").unwrap().len();

        let t0 = Instant::now();
        let (out_n, _) = datalog_eval::evaluate_with_stats(&tc, &db, Strategy::Naive).unwrap();
        let t_naive = t0.elapsed();

        let t0 = Instant::now();
        let (out_s, stats) =
            datalog_eval::evaluate_with_stats(&tc, &db, Strategy::SemiNaive).unwrap();
        let t_semi = t0.elapsed();

        assert_eq!(out_n.canonical_rows(), out_s.canonical_rows());
        println!(
            "{:>6} {:>8} {:>10.2?} {:>10.2?} {:>8} {:>8}",
            n,
            edges,
            t_naive,
            t_semi,
            stats.rounds,
            out_s.len()
        );
    }

    println!();
    println!("Fixed-arity Datalog is in W[1] (Section 4): every stage evaluates");
    println!("bounded-variable conjunctive queries, and the fixpoint arrives in");
    println!("at most n^r stages. Semi-naive evaluation only re-derives from the");
    println!("delta, which is where its advantage over naive comes from.");
}
