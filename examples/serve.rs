//! Serve conjunctive queries over TCP with `pq-service`.
//!
//! Run with: `cargo run --release --example serve -- [addr] [options]`
//!
//! ```text
//! serve                          listen on 127.0.0.1:7878
//! serve 127.0.0.1:0             pick an ephemeral port (printed at startup)
//! serve --workers 8 --queue 128  size the pool and its admission queue
//! serve --threads 4              intra-query parallelism per worker
//! serve company=data/company.db  preload `company` from a loader-format file
//! serve --data-dir data          allow wire LOAD, confined to `data/`
//! serve --wal-dir state          durable catalog: recover from + journal to
//!                                `state/` (catalog.snap + catalog.wal)
//! serve --fsync interval:50      WAL fsync policy: always | never |
//!                                interval:<ms>   (default: always)
//! serve --snapshot-every 64      snapshot + rotate the WAL every N appends
//!                                (0 = only on PERSIST/SHUTDOWN; default 256)
//! ```
//!
//! Without `--data-dir` the wire `LOAD` verb is disabled (clients could
//! otherwise read any server-readable file); preloads via `name=path` are
//! resolved by *this* process and are always available.
//!
//! With `--wal-dir` the catalog survives restarts: startup replays the
//! snapshot + WAL tail (stats are printed), every mutation is write-ahead
//! logged, and the wire `SHUTDOWN` drains gracefully and seals a final
//! snapshot. Kill -9 loses at most the un-fsynced tail (nothing under
//! `--fsync always`).
//!
//! Talk to it with `examples/repl.rs`, or anything that can speak the
//! line protocol (`LOAD` / `QUERY` / `EXPLAIN` / `ANALYZE` / `STATS` /
//! `DROP` / `INSERT` / `DELETE` / `SUBSCRIBE` / `PERSIST` / `SHUTDOWN`);
//! see the README's service section for the grammar. `INSERT`/`DELETE`
//! maintain any subscribed views incrementally and are WAL-logged when
//! `--wal-dir` is set; `SUBSCRIBE` turns its connection into a live delta
//! stream.

use std::sync::Arc;

use pq_service::{
    serve, serve_with_data_dir, DurabilityConfig, FsyncPolicy, QueryService, ServiceConfig,
};

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServiceConfig::default();
    let mut preloads: Vec<(String, String)> = Vec::new();
    let mut data_dir: Option<String> = None;
    let mut wal_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut snapshot_every: u64 = 256;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a positive integer");
            }
            "--queue" => {
                config.queue_depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue needs a positive integer");
            }
            "--threads" => {
                config.intra_query_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--data-dir" => {
                data_dir = Some(args.next().expect("--data-dir needs a path"));
            }
            "--wal-dir" => {
                wal_dir = Some(args.next().expect("--wal-dir needs a path"));
            }
            "--fsync" => {
                let spec = args
                    .next()
                    .expect("--fsync needs always|never|interval:<ms>");
                fsync = FsyncPolicy::parse(&spec)
                    .unwrap_or_else(|e| panic!("bad --fsync `{spec}`: {e}"));
            }
            "--snapshot-every" => {
                snapshot_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--snapshot-every needs an unsigned integer");
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve [addr] [--workers N] [--queue N] [--threads N] \
                     [--data-dir DIR] [--wal-dir DIR] [--fsync POLICY] \
                     [--snapshot-every N] [name=path ...]"
                );
                return;
            }
            other if other.contains('=') => {
                let (name, path) = other.split_once('=').unwrap();
                preloads.push((name.to_string(), path.to_string()));
            }
            other => addr = other.to_string(),
        }
    }

    if let Some(dir) = &wal_dir {
        config.durability = Some(DurabilityConfig {
            dir: dir.into(),
            fsync,
            snapshot_every,
        });
    }

    let service = Arc::new(QueryService::try_new(config).expect("cannot start service"));
    if let Some(stats) = service.recovery_stats() {
        println!(
            "recovered catalog from `{}`: {} database(s) from snapshot, \
             {} WAL record(s) replayed ({} skipped, {} torn byte(s) discarded) in {} ms",
            wal_dir.as_deref().unwrap_or("?"),
            stats.snapshot_databases,
            stats.replayed_records,
            stats.skipped_records,
            stats.torn_tail_bytes,
            stats.elapsed_ms
        );
    }
    for (name, path) in preloads {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"));
        let summary = service
            .load_str(&name, &text)
            .unwrap_or_else(|e| panic!("cannot load `{path}`: {e}"));
        println!(
            "preloaded {} ({} relations, {} tuples)",
            summary.name, summary.relations, summary.tuples
        );
    }

    let handle = match &data_dir {
        Some(dir) => {
            println!("wire LOAD enabled, confined to `{dir}`");
            serve_with_data_dir(addr.as_str(), service, dir).expect("bind failed")
        }
        None => serve(addr.as_str(), service).expect("bind failed"),
    };
    println!("pq-service listening on {}", handle.local_addr());
    println!("send SHUTDOWN (e.g. via the repl example) to stop");
    handle.wait();
    println!("bye");
}
