//! Theorem 3's boundary: acyclic conjunctive queries with `<` comparisons.
//!
//! The paper's example — employees earning more than their manager — plus
//! the consistency/collapse preprocessing (Klug) and a demonstration that
//! the Theorem 3 reduction really encodes clique into a comparison query.
//!
//! Run with: `cargo run --release --example salary_comparisons`

use pq_core::{classify, evaluate, PlannerOptions};
use pq_data::{tuple, Database};
use pq_engine::comparisons;
use pq_query::parse_cq;
use pq_wtheory::graphs::random_graph;
use pq_wtheory::reductions::clique_to_comparisons;

fn main() {
    // The paper's example: G(e) :- EM(e,m), ES(e,s), ES(m,s'), s' < s.
    let mut db = Database::new();
    db.add_table(
        "EM",
        ["emp", "mgr"],
        [
            tuple!["ann", "bob"],
            tuple!["cid", "bob"],
            tuple!["dee", "ann"],
        ],
    )
    .unwrap();
    db.add_table(
        "ES",
        ["emp", "sal"],
        [
            tuple!["ann", 120],
            tuple!["bob", 100],
            tuple!["cid", 90],
            tuple!["dee", 150],
        ],
    )
    .unwrap();

    let q = parse_cq("G(e) :- EM(e, m), ES(e, s), ES(m, s2), s2 < s.").unwrap();
    let c = classify(&q);
    println!("query : {q}");
    println!("class : {:?}", c.class);
    println!("note  : {}", c.summary);
    let ans = evaluate(&q, &db, &PlannerOptions::default()).unwrap();
    println!(
        "answer: {:?}\n",
        ans.tuples()
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );

    // Consistency preprocessing in action: implied equalities collapse.
    let q2 = parse_cq("G(e) :- ES(e, s), ES(e, s2), s <= s2, s2 <= s, 100 <= s.").unwrap();
    let collapsed = comparisons::collapse_query(&q2)
        .unwrap()
        .expect("consistent");
    println!("before collapse: {q2}");
    println!("after  collapse: {collapsed}\n");

    // And an inconsistent system is detected outright.
    let q3 = parse_cq("G :- ES(e, s), s < 100, 200 < s.").unwrap();
    assert!(comparisons::collapse_query(&q3).unwrap().is_none());
    println!("inconsistent system detected: {q3}\n");

    // Theorem 3: clique hides inside acyclic comparison queries.
    println!("== Theorem 3 reduction: clique(G, k) as a comparison path query ==\n");
    for seed in 0..3u64 {
        let g = random_graph(6, 0.5, seed + 3);
        let k = 3;
        let (cdb, cq) = clique_to_comparisons::reduce(&g, k);
        let expected = g.has_clique(k);
        let got = pq_engine::naive::is_nonempty(&cq, &cdb).unwrap();
        assert_eq!(expected, got);
        println!(
            "graph #{seed}: {} vertices, {} edges → query with {} atoms, {} comparisons; \
             clique of {k}: {got}",
            g.num_vertices(),
            g.num_edges(),
            cq.atoms.len(),
            cq.comparisons.len()
        );
    }
    println!("\nThe hypergraph of each reduced query is acyclic and the comparison");
    println!("graph is acyclic — yet evaluation is W[1]-complete: the ≠ result of");
    println!("Theorem 2 cannot be extended to order comparisons.");
}
