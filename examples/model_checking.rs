//! The paper's introduction motivates its question with model checking:
//! "usually specifications are rather small (like queries) and programs are
//! quite large (like databases)" — and LTL model checking is exponential in
//! the spec but *linear in the program*. This example plays that analogy
//! out inside the query world: a transition system is the database, small
//! specs are queries, and the tractable engines keep evaluation polynomial
//! in the model with the spec size only in the constant factor.
//!
//! Run with: `cargo run --release --example model_checking`

use std::time::Instant;

use pq_data::{tuple, Database};
use pq_engine::datalog_eval::{self, Strategy};
use pq_engine::fo_eval;
use pq_query::{parse_datalog, parse_fo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random transition system: states 0..n, ~2 successors each, a `Bad`
/// label on a few states far from the initial state, `Init = {0}`.
fn transition_system(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = n / 2;
    let mut trans = Vec::new();
    for s in 0..n {
        if s < half {
            // The reachable region: one guaranteed forward edge (staying in
            // the region) plus one random edge within it.
            let fwd = (s + rng.gen_range(1..4)).min(half - 1);
            trans.push(tuple![s, fwd]);
            trans.push(tuple![s, rng.gen_range(0..half)]);
        } else {
            // The unreachable region, where the Bad states live.
            trans.push(tuple![s, rng.gen_range(half..n)]);
        }
    }
    let mut db = Database::new();
    db.add_table("Trans", ["s", "t"], trans).unwrap();
    db.add_table("Init", ["s"], [tuple![0]]).unwrap();
    db.add_table("Bad", ["s"], (0..3).map(|i| tuple![n - 1 - i * 7]))
        .unwrap();
    db
}

fn main() {
    println!("spec 1 (safety, needs recursion): no reachable state is Bad");
    println!("spec 2 (deadlock freedom, plain FO): every state has a successor\n");

    let reach = parse_datalog(
        "Reach(s) :- Init(s).\n\
         Reach(t) :- Reach(s), Trans(s, t).\n\
         ?- Reach",
    )
    .unwrap();
    let violation = parse_fo("V := exists s. (Reach(s) & Bad(s))").unwrap();
    let deadlock_free = parse_fo("D := forall s. (!Reach(s) | exists t. Trans(s, t))").unwrap();

    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10}",
        "states", "reachable", "reach time", "safety", "no-deadlock"
    );
    for n in [100usize, 400, 1600, 6400] {
        let db = transition_system(n, 9);
        let t0 = Instant::now();
        let reachable = datalog_eval::evaluate(&reach, &db, Strategy::SemiNaive).unwrap();
        let d_reach = t0.elapsed();

        // Extend the database with the computed Reach relation, then ask
        // the FO specs — small specs, big model.
        let mut db2 = db.clone();
        db2.set_relation("Reach", reachable.clone());
        let safe = !fo_eval::query_holds(&violation, &db2).unwrap();
        let live = fo_eval::query_holds(&deadlock_free, &db2).unwrap();
        println!(
            "{:>8} {:>10} {:>12.2?} {:>10} {:>10}",
            n,
            reachable.len(),
            d_reach,
            safe,
            live
        );
    }

    println!("\nThe model grows 64×; the spec stays fixed. Bottom-up Datalog keeps");
    println!("reachability polynomial in the model, and the FO specs evaluate in");
    println!("O(q · n^v) with v = 2 — the shape the paper asks query evaluation");
    println!("to have, and which Theorems 1–3 show is only available for special");
    println!("query classes.");
}
