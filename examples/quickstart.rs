//! Quickstart: build a database, parse queries in rule notation, let the
//! planner classify them per the paper and pick the right engine.
//!
//! Run with: `cargo run --example quickstart`

use pq_core::{classify, evaluate, plan, PlannerOptions};
use pq_data::{tuple, Database};
use pq_query::parse_cq;

fn main() {
    // A small company database.
    let mut db = Database::new();
    db.add_table(
        "EP", // employee–project
        ["emp", "proj"],
        [
            tuple!["ann", "db"],
            tuple!["ann", "web"],
            tuple!["bob", "db"],
            tuple!["cid", "web"],
            tuple!["cid", "ml"],
            tuple!["dee", "ml"],
        ],
    )
    .unwrap();
    db.add_table(
        "EM", // employee–manager
        ["emp", "mgr"],
        [
            tuple!["ann", "bob"],
            tuple!["cid", "bob"],
            tuple!["dee", "ann"],
        ],
    )
    .unwrap();

    let opts = PlannerOptions::default();

    let queries = [
        // Acyclic, pure: who works with whom on a shared project?
        "Pair(e1, e2) :- EP(e1, p), EP(e2, p).",
        // The paper's Section 5 example: employees on more than one project
        // (acyclic + ≠ — Theorem 2 territory).
        "Busy(e) :- EP(e, p), EP(e, p2), p != p2.",
        // Cyclic: a managerial triangle (W[1]-complete territory).
        "Tri :- EM(x, y), EM(y, z), EM(z, x).",
    ];

    for src in queries {
        let q = parse_cq(src).unwrap();
        let c = classify(&q);
        let p = plan(&q, &opts);
        println!("query    : {q}");
        println!("class    : {:?}  (q = {}, v = {})", c.class, c.q, c.v);
        println!("verdict  : {}", c.summary);
        println!("engine   : {}", p.engine);
        let answer = evaluate(&q, &db, &opts).unwrap();
        println!("answer   : {} tuple(s)", answer.len());
        for t in answer.iter().take(5) {
            println!("           {t}");
        }
        println!();
    }
}
