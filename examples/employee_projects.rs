//! The Section 5 motivating workloads, at scale: acyclic conjunctive
//! queries with `≠` evaluated by the Theorem 2 color-coding engine, against
//! the naive `n^q` evaluator — the paper's fixed-parameter tractability made
//! visible.
//!
//! Run with: `cargo run --release --example employee_projects`

use std::time::Instant;

use pq_data::{tuple, Database};
use pq_engine::colorcoding::{self, ColorCodingOptions};
use pq_engine::naive;
use pq_query::parse_cq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic university database: students, departments, courses.
fn university(n_students: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let depts = ["cs", "math", "bio", "chem", "phys"];
    let n_courses = 40;
    let mut db = Database::new();

    // Each course belongs to one department.
    let course_dept: Vec<&str> = (0..n_courses)
        .map(|_| depts[rng.gen_range(0..depts.len())])
        .collect();
    db.add_table(
        "CD",
        ["course", "dept"],
        (0..n_courses).map(|c| tuple![format!("c{c}"), course_dept[c]]),
    )
    .unwrap();

    // Students have a home department and 1–4 courses.
    let mut sd = Vec::new();
    let mut sc = Vec::new();
    for s in 0..n_students {
        let home = depts[rng.gen_range(0..depts.len())];
        sd.push(tuple![format!("s{s}"), home]);
        for _ in 0..rng.gen_range(1..=4) {
            let c = rng.gen_range(0..n_courses);
            sc.push(tuple![format!("s{s}"), format!("c{c}")]);
        }
    }
    db.add_table("SD", ["student", "dept"], sd).unwrap();
    db.add_table("SC", ["student", "course"], sc).unwrap();
    db
}

fn main() {
    // The paper's second Section 5 example: students taking courses outside
    // their department — `G(s) :- SD(s,d), SC(s,c), CD(c,d'), d ≠ d'`.
    let q = parse_cq("G(s) :- SD(s, d), SC(s, c), CD(c, d2), d != d2.").unwrap();
    println!("query: {q}");
    println!(
        "acyclic: {}   (the ≠ edge would make the hypergraph cyclic!)",
        q.is_acyclic()
    );
    println!();
    println!(
        "{:>9} {:>10} {:>14} {:>14} {:>8}",
        "students", "db size", "colorcoding", "naive", "answers"
    );

    for n_students in [200usize, 400, 800, 1600, 3200] {
        let db = university(n_students, 42);

        let t0 = Instant::now();
        let fast = colorcoding::evaluate(&q, &db, &ColorCodingOptions::default()).unwrap();
        let t_cc = t0.elapsed();

        let t0 = Instant::now();
        let slow = naive::evaluate(&q, &db).unwrap();
        let t_naive = t0.elapsed();

        assert_eq!(fast, slow, "engines must agree");
        println!(
            "{:>9} {:>10} {:>12.2?} {:>12.2?} {:>8}",
            n_students,
            db.size(),
            t_cc,
            t_naive,
            fast.len()
        );
    }

    println!();
    println!("Both engines agree on every size; the color-coding engine scales");
    println!("near-linearly in the database (Theorem 2's g(v)·q·n·log n bound),");
    println!("because the ≠ pair {{d, d2}} never co-occurs in an atom (k = 2).");
}
