//! Counting over acyclic pure CQs: the join-tree instantiation of the
//! semiring sweep, plus the `COUNT DISTINCT` / `GROUP BY` operators.

use std::collections::BTreeSet;

use pq_data::{Database, Relation};
use pq_engine::governor::{ExecutionContext, SharedContext};
use pq_engine::yannakakis::atom_relation_governed;
use pq_engine::EngineError;
use pq_exec::Pool;
use pq_hypergraph::{join_tree, Hypergraph, JoinTree};
use pq_query::ConjunctiveQuery;

use crate::counted::CountedRelation;
use crate::sweep::{counted_sweep, counted_sweep_parallel, total_parallel};
use crate::{CountError, QueryCount, Result};

/// Engine name reported in errors and diagnostics.
pub(crate) const ENGINE: &str = "count-yannakakis";

/// Is the head quantifier-free — does it export *every* body variable?
/// Chen–Mengel's tractable counting case: no existential variables, so
/// assignments map injectively onto answer tuples and
/// `|Q(d)| = #assignments`, computable without tracking projections at all.
pub fn quantifier_free(q: &ConjunctiveQuery) -> bool {
    let head: BTreeSet<&str> = q.head_variables().into_iter().collect();
    q.atom_variables().into_iter().all(|v| head.contains(v))
}

pub(crate) fn check_safety(q: &ConjunctiveQuery) -> Result<()> {
    let body_vars: BTreeSet<&str> = q.atom_variables().into_iter().collect();
    for v in q.head_variables() {
        if !body_vars.contains(v) {
            return Err(CountError::Engine(EngineError::Query(
                pq_query::QueryError::UnsafeHeadVariable(v.to_string()),
            )));
        }
    }
    Ok(())
}

/// Validate a `GROUP BY` list: distinct head variables only, returned
/// deduplicated with first-occurrence order preserved.
pub(crate) fn check_groups(q: &ConjunctiveQuery, groups: &[String]) -> Result<Vec<String>> {
    let head: BTreeSet<&str> = q.head_variables().into_iter().collect();
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for g in groups {
        if !head.contains(g.as_str()) {
            return Err(CountError::Engine(EngineError::Unsupported(format!(
                "GROUP BY variable `{g}` is not a head variable of {q}"
            ))));
        }
        if seen.insert(g.as_str()) {
            out.push(g.clone());
        }
    }
    Ok(out)
}

fn prepare(q: &ConjunctiveQuery) -> Result<(Hypergraph, JoinTree)> {
    if !q.is_pure() {
        return Err(CountError::Engine(EngineError::Unsupported(
            "counting engines handle pure CQs; ≠ and comparisons fall back to \
             enumerate-then-count"
                .into(),
        )));
    }
    let hg = q.hypergraph();
    let tree = join_tree(&hg).ok_or_else(|| {
        CountError::Engine(EngineError::Unsupported(format!(
            "query is not acyclic, no join tree exists: {q}"
        )))
    })?;
    Ok((hg, tree))
}

fn atom_relations(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<Vec<Relation>> {
    q.atoms
        .iter()
        .map(|a| atom_relation_governed(a, db, ctx).map_err(CountError::from))
        .collect()
}

pub(crate) fn atom_relations_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<Vec<Relation>> {
    pool.try_run(&q.atoms, |_, a| {
        atom_relation_governed(a, db, &shared.worker()).map_err(CountError::from)
    })
}

/// Assemble a [`QueryCount`] from the sweep, choosing the tracked-variable
/// set by head shape: a quantifier-free head marginalizes everything away
/// (`z = ∅`, input-polynomial) and reads both counts off the grand total; a
/// projected head tracks per-head-projection counts (`z` = head variables)
/// and reads `distinct` = number of projections, `assignments` = their sum.
pub(crate) fn finish_count(
    q: &ConjunctiveQuery,
    hg: &Hypergraph,
    tree: &JoinTree,
    rels: &[Relation],
    ctx: &ExecutionContext,
    engine: &'static str,
) -> Result<QueryCount> {
    if quantifier_free(q) {
        let root = counted_sweep(hg, tree, rels, &[], ctx, engine)?;
        let total = root.total(engine)?;
        Ok(QueryCount {
            distinct: total,
            assignments: total,
        })
    } else {
        let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
        let per = counted_sweep(hg, tree, rels, &z, ctx, engine)?;
        Ok(QueryCount {
            distinct: per.len() as u128,
            assignments: per.total(engine)?,
        })
    }
}

/// Parallel [`finish_count`]: the level-scheduled sweep plus a
/// partition-and-sum total, byte-identical at any thread count.
pub(crate) fn finish_count_parallel(
    q: &ConjunctiveQuery,
    hg: &Hypergraph,
    tree: &JoinTree,
    rels: &[Relation],
    shared: &SharedContext,
    pool: &Pool,
    engine: &'static str,
) -> Result<QueryCount> {
    if quantifier_free(q) {
        let root = counted_sweep_parallel(hg, tree, rels, &[], shared, pool, engine)?;
        let total = total_parallel(&root, pool, engine)?;
        Ok(QueryCount {
            distinct: total,
            assignments: total,
        })
    } else {
        let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
        let per = counted_sweep_parallel(hg, tree, rels, &z, shared, pool, engine)?;
        Ok(QueryCount {
            distinct: per.len() as u128,
            assignments: total_parallel(&per, pool, engine)?,
        })
    }
}

/// Grouped counts from the sweep: the number of **distinct answer tuples**
/// per assignment of the group variables. Quantifier-free heads track the
/// group variables directly (distinct = assignments per group); projected
/// heads track the full head projection and then count projections per
/// group.
pub(crate) fn finish_count_by(
    q: &ConjunctiveQuery,
    hg: &Hypergraph,
    tree: &JoinTree,
    rels: &[Relation],
    groups: &[String],
    ctx: &ExecutionContext,
    engine: &'static str,
) -> Result<CountedRelation> {
    if quantifier_free(q) {
        return counted_sweep(hg, tree, rels, groups, ctx, engine);
    }
    let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
    let per = counted_sweep(hg, tree, rels, &z, ctx, engine)?;
    distinct_per_group(&per, groups, ctx, engine)
}

#[allow(clippy::too_many_arguments)] // mirrors finish_count_by + (shared, pool)
pub(crate) fn finish_count_by_parallel(
    q: &ConjunctiveQuery,
    hg: &Hypergraph,
    tree: &JoinTree,
    rels: &[Relation],
    groups: &[String],
    shared: &SharedContext,
    pool: &Pool,
    engine: &'static str,
) -> Result<CountedRelation> {
    if quantifier_free(q) {
        return counted_sweep_parallel(hg, tree, rels, groups, shared, pool, engine);
    }
    let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
    let per = counted_sweep_parallel(hg, tree, rels, &z, shared, pool, engine)?;
    distinct_per_group(&per, groups, &shared.worker(), engine)
}

/// Collapse per-head-projection counts to per-group **distinct** counts:
/// every distinct head projection contributes 1 to its group.
fn distinct_per_group(
    per: &CountedRelation,
    groups: &[String],
    ctx: &ExecutionContext,
    engine: &'static str,
) -> Result<CountedRelation> {
    let positions: Vec<usize> = groups
        .iter()
        .map(|g| {
            per.attrs()
                .iter()
                .position(|a| a == g)
                .expect("groups are head variables")
        })
        .collect();
    let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
    for (t, _) in per.iter() {
        ctx.tick(engine)?;
        out.insert_add(t.project(&positions), 1, engine)?;
    }
    Ok(out)
}

/// Exact counts of `Q(d)` for an acyclic pure CQ, without enumeration.
///
/// ```
/// use pq_data::{tuple, Database};
/// use pq_query::parse_cq;
///
/// let mut db = Database::new();
/// db.add_table("R", ["a", "b"], [tuple![1, 2], tuple![1, 3]]).unwrap();
/// db.add_table("S", ["b", "c"], [tuple![2, 9], tuple![3, 9]]).unwrap();
/// let q = parse_cq("G(x, y, z) :- R(x, y), S(y, z).").unwrap();
/// let c = pq_count::count(&q, &db).unwrap();
/// assert_eq!(c.distinct, 2);
/// ```
pub fn count(q: &ConjunctiveQuery, db: &Database) -> Result<QueryCount> {
    count_governed(q, db, &ExecutionContext::unlimited())
}

/// [`count`] under the resource limits of `ctx`.
pub fn count_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<QueryCount> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return Ok(QueryCount {
            distinct: 1,
            assignments: 1,
        });
    }
    let (hg, tree) = prepare(q)?;
    let rels = atom_relations(q, db, ctx)?;
    finish_count(q, &hg, &tree, &rels, ctx, ENGINE)
}

/// [`count`] with parallel atom scans, a level-scheduled parallel sweep,
/// and a partition-and-sum total; byte-identical at any thread count.
pub fn count_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<QueryCount> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return Ok(QueryCount {
            distinct: 1,
            assignments: 1,
        });
    }
    let (hg, tree) = prepare(q)?;
    let rels = atom_relations_parallel(q, db, shared, pool)?;
    finish_count_parallel(q, &hg, &tree, &rels, shared, pool, ENGINE)
}

/// Grouped counts `COUNT(Q) GROUP BY groups`: one row per assignment of the
/// group variables (which must be head variables), carrying the number of
/// distinct answer tuples in that group.
pub fn count_by(q: &ConjunctiveQuery, db: &Database, groups: &[String]) -> Result<CountedRelation> {
    count_by_governed(q, db, groups, &ExecutionContext::unlimited())
}

/// [`count_by`] under the resource limits of `ctx`.
pub fn count_by_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    groups: &[String],
    ctx: &ExecutionContext,
) -> Result<CountedRelation> {
    check_safety(q)?;
    let groups = check_groups(q, groups)?;
    if q.atoms.is_empty() {
        let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
        if groups.is_empty() {
            out.insert_add(pq_data::Tuple::default(), 1, ENGINE)?;
        }
        return Ok(out);
    }
    let (hg, tree) = prepare(q)?;
    let rels = atom_relations(q, db, ctx)?;
    finish_count_by(q, &hg, &tree, &rels, &groups, ctx, ENGINE)
}

/// [`count_by`] with the parallel sweep; byte-identical at any thread count.
pub fn count_by_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    groups: &[String],
    shared: &SharedContext,
    pool: &Pool,
) -> Result<CountedRelation> {
    check_safety(q)?;
    let groups = check_groups(q, groups)?;
    if q.atoms.is_empty() {
        let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
        if groups.is_empty() {
            out.insert_add(pq_data::Tuple::default(), 1, ENGINE)?;
        }
        return Ok(out);
    }
    let (hg, tree) = prepare(q)?;
    let rels = atom_relations_parallel(q, db, shared, pool)?;
    finish_count_by_parallel(q, &hg, &tree, &rels, &groups, shared, pool, ENGINE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_engine::yannakakis;
    use pq_query::parse_cq;

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            "R",
            ["a", "b"],
            [tuple![1, 2], tuple![1, 3], tuple![2, 3], tuple![4, 5]],
        )
        .unwrap();
        db.add_table("S", ["b", "c"], [tuple![2, 7], tuple![3, 7], tuple![3, 8]])
            .unwrap();
        db.add_table("T", ["c", "d"], [tuple![7, 0], tuple![8, 0], tuple![8, 1]])
            .unwrap();
        db
    }

    fn oracle(q: &ConjunctiveQuery, db: &Database) -> u128 {
        yannakakis::evaluate(q, db).unwrap().len() as u128
    }

    #[test]
    fn quantifier_free_chain_matches_enumeration() {
        let db = chain_db();
        let q = parse_cq("G(x, y, z, w) :- R(x, y), S(y, z), T(z, w).").unwrap();
        assert!(quantifier_free(&q));
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, oracle(&q, &db));
        assert_eq!(c.assignments, c.distinct);
    }

    #[test]
    fn projected_head_counts_distinct_not_assignments() {
        let db = chain_db();
        let q = parse_cq("G(x) :- R(x, y), S(y, z).").unwrap();
        assert!(!quantifier_free(&q));
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, oracle(&q, &db));
        // x=1 reaches (y,z) ∈ {(2,7),(3,7),(3,8)}, x=2 reaches {(3,7),(3,8)}
        assert_eq!(c.assignments, 5);
        assert_eq!(c.distinct, 2);
    }

    #[test]
    fn boolean_query_counts_zero_or_one() {
        let db = chain_db();
        let q = parse_cq("G :- R(x, y), S(y, z).").unwrap();
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, 1);
        assert_eq!(c.assignments, 5);
        let empty = parse_cq("G :- S(x, y), S(y, z).").unwrap();
        let c = count(&empty, &db).unwrap();
        assert_eq!(c.distinct, 0);
        assert_eq!(c.assignments, 0);
    }

    #[test]
    fn head_constants_and_repeats_stay_injective() {
        let db = chain_db();
        // Head exports every body variable (plus a constant and a repeat):
        // still quantifier-free, still |Q(d)| = #assignments.
        let q = parse_cq("G(x, y, x, 9) :- R(x, y).").unwrap();
        assert!(quantifier_free(&q));
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, oracle(&q, &db));
        assert_eq!(c.distinct, 4);
    }

    #[test]
    fn empty_body_is_the_vacuous_single_answer() {
        let db = chain_db();
        let q = ConjunctiveQuery::boolean("G", []);
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, 1);
        assert_eq!(c.assignments, 1);
    }

    #[test]
    fn cyclic_and_impure_queries_are_unsupported() {
        let db = chain_db();
        let cyclic = parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap();
        assert!(matches!(
            count(&cyclic, &db),
            Err(CountError::Engine(EngineError::Unsupported(_)))
        ));
        let impure = parse_cq("G(x) :- R(x, y), x != y.").unwrap();
        assert!(matches!(
            count(&impure, &db),
            Err(CountError::Engine(EngineError::Unsupported(_)))
        ));
    }

    #[test]
    fn grouped_counts_match_enumeration_per_group() {
        let db = chain_db();
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let by_x = count_by(&q, &db, &["x".to_string()]).unwrap();
        // Enumerate and group by hand.
        let rows = yannakakis::evaluate(&q, &db).unwrap();
        let mut expected: std::collections::BTreeMap<pq_data::Tuple, u128> = Default::default();
        let pos = rows.attr_pos("x").unwrap();
        for t in rows.iter() {
            *expected.entry(t.project(&[pos])).or_insert(0) += 1;
        }
        for (t, c) in by_x.iter() {
            assert_eq!(expected.get(t).copied(), Some(c), "group {t}");
        }
        assert_eq!(by_x.len(), expected.len());
    }

    #[test]
    fn grouped_counts_reject_non_head_variables() {
        let db = chain_db();
        let q = parse_cq("G(x) :- R(x, y), S(y, z).").unwrap();
        assert!(count_by(&q, &db, &["y".to_string()]).is_err());
    }

    #[test]
    fn parallel_counts_match_serial_at_any_degree() {
        let db = chain_db();
        for src in [
            "G(x, y, z, w) :- R(x, y), S(y, z), T(z, w).",
            "G(x) :- R(x, y), S(y, z).",
            "G :- R(x, y), S(y, z).",
        ] {
            let q = parse_cq(src).unwrap();
            let serial = count(&q, &db).unwrap();
            for threads in [1, 2, 4] {
                let pool = Pool::new(threads);
                let shared = ExecutionContext::unlimited().into_shared();
                let par = count_parallel(&q, &db, &shared, &pool).unwrap();
                assert_eq!(par, serial, "{src} at {threads} threads");
            }
        }
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let serial = count_by(&q, &db, &["x".to_string()]).unwrap();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let shared = ExecutionContext::unlimited().into_shared();
            let par = count_by_parallel(&q, &db, &["x".to_string()], &shared, &pool).unwrap();
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn exponential_answer_sets_count_without_materializing() {
        // A branching chain: every layer doubles the path count. 60 layers
        // of fan-out 2 gives 2^60 paths from each of the 2 roots — far
        // beyond anything enumerable — counted through u128 in microseconds.
        let mut db = Database::new();
        db.add_table(
            "E",
            ["a", "b"],
            [tuple![0, 0], tuple![0, 1], tuple![1, 0], tuple![1, 1]],
        )
        .unwrap();
        let len = 60;
        let atoms: Vec<String> = (0..len).map(|i| format!("E(x{i}, x{})", i + 1)).collect();
        let head: Vec<String> = (0..=len).map(|i| format!("x{i}")).collect();
        let q = parse_cq(&format!("G({}) :- {}.", head.join(", "), atoms.join(", "))).unwrap();
        let c = count(&q, &db).unwrap();
        assert_eq!(c.distinct, 2u128 << len); // 2 roots × 2^60 extensions
                                              // A tight tuple budget still governs the counting path.
        let ctx = ExecutionContext::new().with_tuple_budget(1);
        assert!(matches!(
            count_governed(&q, &db, &ctx),
            Err(CountError::Engine(EngineError::ResourceExhausted { .. }))
        ));
    }

    #[test]
    fn unsafe_head_is_a_query_error() {
        let db = chain_db();
        let q = parse_cq("G(q) :- R(x, y).").unwrap();
        assert!(matches!(
            count(&q, &db),
            Err(CountError::Engine(EngineError::Query(_)))
        ));
    }
}
