//! The semiring Yannakakis sweep shared by the acyclic and decomposed
//! counting engines.
//!
//! Input: a hypergraph whose edges are the nodes of a join tree (atom
//! hypergraph + GYO join tree, or bag hypergraph + decomposition tree) and
//! one set-semantics relation per node. The sweep annotates every tuple
//! with multiplicity 1, then walks the tree bottom-up: each child is
//! marginalized onto its connecting variables plus any tracked `z`
//! variables below it ([`zj_vars`], summing multiplicities over the
//! variables projected away) and multiplied into its parent. Because every
//! variable's occurrences form a connected subtree (the join-tree
//! property), each satisfying assignment of *all* variables is counted
//! exactly once, so the root — marginalized onto `z` — holds, per
//! `z`-projection, the exact number of satisfying assignments extending it.
//!
//! With `z = ∅` this is Chen–Mengel counting without enumeration: time
//! polynomial in the input alone, answer sets be damned. With `z` = the
//! head variables it is per-projection counting: cost bounded by input ×
//! distinct projections, the honest price of projection (#W[1]-hardness)
//! without paying full enumeration.
//!
//! Overflow note: all multiplicities are ≥ 1, so any partial sum or
//! partial product is bounded by its final value. Whether a sweep overflows
//! therefore does not depend on the order children are folded in — the
//! serial and parallel schedules below agree on success, value, *and*
//! failure.

use std::collections::BTreeSet;

use pq_data::Relation;
use pq_engine::governor::{ExecutionContext, SharedContext};
use pq_exec::Pool;
use pq_hypergraph::{Hypergraph, JoinTree};

use crate::counted::CountedRelation;
use crate::Result;

/// The variables child `j` hands its parent `u`: the connecting variables
/// `U_j ∩ U_u` plus every tracked variable of `z` occurring in the subtree
/// `T[j]` (in vertex-index order — deterministic).
fn zj_vars(hg: &Hypergraph, tree: &JoinTree, j: usize, u: usize, z: &[String]) -> Vec<String> {
    let mut keep: BTreeSet<usize> = hg.edge(j).intersection(hg.edge(u)).copied().collect();
    for &v in &tree.subtree_vertices(hg, j) {
        if z.iter().any(|s| s == hg.label(v)) {
            keep.insert(v);
        }
    }
    keep.iter().map(|&v| hg.label(v).to_string()).collect()
}

/// Group the tree's nodes by depth, deepest level last; nodes within a
/// level are in ascending index order. Levels are processed back-to-front
/// so every child's marginal is ready before its parent folds it in.
fn levels(tree: &JoinTree) -> Vec<Vec<usize>> {
    let mut depth = vec![0usize; tree.num_nodes()];
    for n in tree.top_down() {
        if let Some(u) = tree.parent(n) {
            depth[n] = depth[u] + 1;
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut lv = vec![Vec::new(); max_depth + 1];
    for (n, &d) in depth.iter().enumerate() {
        lv[d].push(n);
    }
    lv
}

/// The serial counted sweep: returns the root counted relation over `z`
/// (empty when the query is empty on this database).
pub(crate) fn counted_sweep(
    hg: &Hypergraph,
    tree: &JoinTree,
    node_rels: &[Relation],
    z: &[String],
    ctx: &ExecutionContext,
    engine: &'static str,
) -> Result<CountedRelation> {
    let mut rels: Vec<Option<CountedRelation>> = node_rels
        .iter()
        .map(|r| Some(CountedRelation::from_relation(r)))
        .collect();
    for j in tree.bottom_up() {
        ctx.tick(engine)?;
        if rels[j].as_ref().expect("node visited once").is_empty() {
            return CountedRelation::new(z.iter().map(String::clone));
        }
        let Some(u) = tree.parent(j) else {
            continue;
        };
        let child = rels[j].take().expect("node visited once");
        let marginal = child.project_sum(&zj_vars(hg, tree, j, u, z), ctx, engine)?;
        ctx.charge_tuples(engine, marginal.len() as u64)?;
        let parent = rels[u].take().expect("parent not yet visited");
        let joined = parent.join_multiply(&marginal, ctx, engine)?;
        ctx.charge_tuples(engine, joined.len() as u64)?;
        rels[u] = Some(joined);
    }
    let root = rels[tree.root()].take().expect("root remains");
    let out = root.project_sum(z, ctx, engine)?;
    ctx.charge_tuples(engine, out.len() as u64)?;
    Ok(out)
}

/// The parallel counted sweep: child marginals of each tree level are
/// computed as one pool task per node (in node order), then folded into
/// their parents serially in ascending node order. Multiplicity algebra is
/// commutative and all weights are ≥ 1, so the result — and the overflow
/// verdict — is identical to [`counted_sweep`] at any thread count.
pub(crate) fn counted_sweep_parallel(
    hg: &Hypergraph,
    tree: &JoinTree,
    node_rels: &[Relation],
    z: &[String],
    shared: &SharedContext,
    pool: &Pool,
    engine: &'static str,
) -> Result<CountedRelation> {
    let mut rels: Vec<Option<CountedRelation>> = node_rels
        .iter()
        .map(|r| Some(CountedRelation::from_relation(r)))
        .collect();
    let schedule = levels(tree);
    for level in schedule.iter().rev() {
        for &j in level {
            if rels[j].as_ref().expect("node visited once").is_empty() {
                return CountedRelation::new(z.iter().map(String::clone));
            }
        }
        // Root level: nothing to marginalize into a parent.
        if level.len() == 1 && tree.parent(level[0]).is_none() {
            continue;
        }
        let marginals: Vec<CountedRelation> = pool.try_run(level, |_, &j| {
            let w = shared.worker();
            let u = tree.parent(j).expect("non-root levels have parents");
            let child = rels[j].as_ref().expect("node visited once");
            let m = child.project_sum(&zj_vars(hg, tree, j, u, z), &w, engine)?;
            w.charge_tuples(engine, m.len() as u64)?;
            Ok::<_, crate::CountError>(m)
        })?;
        let w = shared.worker();
        for (idx, &j) in level.iter().enumerate() {
            rels[j] = None;
            let u = tree.parent(j).expect("non-root levels have parents");
            let parent = rels[u].take().expect("parent not yet visited");
            let joined = parent.join_multiply(&marginals[idx], &w, engine)?;
            w.charge_tuples(engine, joined.len() as u64)?;
            rels[u] = Some(joined);
        }
    }
    let w = shared.worker();
    let root = rels[tree.root()].take().expect("root remains");
    let out = root.project_sum(z, &w, engine)?;
    w.charge_tuples(engine, out.len() as u64)?;
    Ok(out)
}

/// Partition-and-sum total of a counted relation over a pool: multiplicity
/// chunks (in row order) are summed per task and the partials folded in
/// chunk order — deterministic, and since all terms are non-negative the
/// overflow verdict matches the serial total.
pub(crate) fn total_parallel(
    cr: &CountedRelation,
    pool: &Pool,
    engine: &'static str,
) -> Result<u128> {
    let counts: Vec<u128> = cr.iter().map(|(_, c)| c).collect();
    let chunks = pq_exec::morsels(counts.len(), pool.threads().saturating_mul(4).max(1));
    let partials: Vec<u128> = pool.try_run(&chunks, |_, r| {
        counts[r.clone()]
            .iter()
            .try_fold(0u128, |a, &b| a.checked_add(b))
            .ok_or(crate::CountError::Overflow { engine })
    })?;
    partials
        .into_iter()
        .try_fold(0u128, |a, b| a.checked_add(b))
        .ok_or(crate::CountError::Overflow { engine })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_group_by_depth() {
        // 1 -> 0 <- 2, 3 -> 1  (root 0)
        let t = JoinTree::from_parents(vec![None, Some(0), Some(0), Some(1)]);
        assert_eq!(levels(&t), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn zj_vars_track_connecting_and_z_vars() {
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["z", "w"]]);
        // path 0 -> 1 -> 2, root 2
        let t = JoinTree::from_parents(vec![Some(1), Some(2), None]);
        // No tracked vars: just the connector.
        assert_eq!(zj_vars(&hg, &t, 0, 1, &[]), vec!["y".to_string()]);
        // Tracking x keeps it through the join even though the parent
        // lacks it.
        assert_eq!(
            zj_vars(&hg, &t, 0, 1, &["x".to_string()]),
            vec!["x".to_string(), "y".to_string()]
        );
    }
}
