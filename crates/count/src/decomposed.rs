//! Counting over bounded-hypertree-width CQs: run the same semiring sweep
//! over the bag tree of a hypertree decomposition. Each atom is covered by
//! some bag, so an assignment satisfies the query iff its restriction to
//! every bag lands in that bag's materialized relation — the sweep over
//! bags therefore counts full satisfying assignments exactly once, just as
//! the join-tree sweep does for acyclic queries.

use pq_data::Database;
use pq_engine::governor::{ExecutionContext, SharedContext};
use pq_engine::hypertree::{materialize_bags_governed, materialize_bags_parallel};
use pq_exec::Pool;
use pq_hypergraph::HypertreeDecomposition;
use pq_query::ConjunctiveQuery;

use crate::acyclic::{
    check_groups, check_safety, finish_count, finish_count_by, finish_count_by_parallel,
    finish_count_parallel,
};
use crate::counted::CountedRelation;
use crate::{QueryCount, Result};

/// Engine name reported in errors and diagnostics.
pub(crate) const ENGINE: &str = "count-hypertree";

/// Exact counts of `Q(d)` over a hypertree decomposition `d`, without
/// enumeration. `d` must cover `q` (use [`pq_engine::hypertree::prepare`]
/// or [`pq_hypergraph::decompose`] to obtain one).
pub fn count_decomposed(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    ctx: &ExecutionContext,
) -> Result<QueryCount> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return Ok(QueryCount {
            distinct: 1,
            assignments: 1,
        });
    }
    let (bags, tree, rels) = materialize_bags_governed(q, db, d, ctx)?;
    finish_count(q, &bags, &tree, &rels, ctx, ENGINE)
}

/// [`count_decomposed`] with parallel bag materialization and the parallel
/// sweep; byte-identical at any thread count.
pub fn count_decomposed_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<QueryCount> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return Ok(QueryCount {
            distinct: 1,
            assignments: 1,
        });
    }
    let (bags, tree, rels) = materialize_bags_parallel(q, db, d, shared, pool)?;
    finish_count_parallel(q, &bags, &tree, &rels, shared, pool, ENGINE)
}

/// Grouped counts over a hypertree decomposition: one row per assignment of
/// the group variables, carrying the number of distinct answer tuples.
pub fn count_by_decomposed(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    groups: &[String],
    ctx: &ExecutionContext,
) -> Result<CountedRelation> {
    check_safety(q)?;
    let groups = check_groups(q, groups)?;
    if q.atoms.is_empty() {
        let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
        if groups.is_empty() {
            out.insert_add(pq_data::Tuple::default(), 1, ENGINE)?;
        }
        return Ok(out);
    }
    let (bags, tree, rels) = materialize_bags_governed(q, db, d, ctx)?;
    finish_count_by(q, &bags, &tree, &rels, &groups, ctx, ENGINE)
}

/// [`count_by_decomposed`] with the parallel sweep; byte-identical at any
/// thread count.
pub fn count_by_decomposed_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    groups: &[String],
    shared: &SharedContext,
    pool: &Pool,
) -> Result<CountedRelation> {
    check_safety(q)?;
    let groups = check_groups(q, groups)?;
    if q.atoms.is_empty() {
        let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
        if groups.is_empty() {
            out.insert_add(pq_data::Tuple::default(), 1, ENGINE)?;
        }
        return Ok(out);
    }
    let (bags, tree, rels) = materialize_bags_parallel(q, db, d, shared, pool)?;
    finish_count_by_parallel(q, &bags, &tree, &rels, &groups, shared, pool, ENGINE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_engine::hypertree;
    use pq_query::parse_cq;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        let edges = [
            tuple![1, 2],
            tuple![2, 3],
            tuple![3, 1],
            tuple![2, 1],
            tuple![3, 2],
            tuple![1, 3],
            tuple![1, 1],
            tuple![4, 5],
        ];
        db.add_table("E", ["a", "b"], edges.clone()).unwrap();
        db
    }

    #[test]
    fn triangle_count_matches_enumeration() {
        let db = triangle_db();
        let q = parse_cq("G(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let d = hypertree::prepare(&q).unwrap();
        let ctx = ExecutionContext::unlimited();
        let c = count_decomposed(&q, &db, &d, &ctx).unwrap();
        let oracle = hypertree::evaluate_decomposed(&q, &db, &d, &ExecutionContext::unlimited())
            .unwrap()
            .len() as u128;
        assert_eq!(c.distinct, oracle);
        assert_eq!(c.assignments, c.distinct); // quantifier-free head
        assert!(c.distinct > 0);
    }

    #[test]
    fn projected_triangle_counts_distinct() {
        let db = triangle_db();
        let q = parse_cq("G(x) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let d = hypertree::prepare(&q).unwrap();
        let ctx = ExecutionContext::unlimited();
        let c = count_decomposed(&q, &db, &d, &ctx).unwrap();
        let oracle = hypertree::evaluate_decomposed(&q, &db, &d, &ExecutionContext::unlimited())
            .unwrap()
            .len() as u128;
        assert_eq!(c.distinct, oracle);
        assert!(c.assignments >= c.distinct);
    }

    #[test]
    fn parallel_matches_serial() {
        let db = triangle_db();
        for src in [
            "G(x, y, z) :- E(x, y), E(y, z), E(z, x).",
            "G(x) :- E(x, y), E(y, z), E(z, x).",
        ] {
            let q = parse_cq(src).unwrap();
            let d = hypertree::prepare(&q).unwrap();
            let serial = count_decomposed(&q, &db, &d, &ExecutionContext::unlimited()).unwrap();
            for threads in [1, 3] {
                let pool = Pool::new(threads);
                let shared = ExecutionContext::unlimited().into_shared();
                let par = count_decomposed_parallel(&q, &db, &d, &shared, &pool).unwrap();
                assert_eq!(par, serial, "{src} at {threads} threads");
            }
        }
    }

    #[test]
    fn grouped_triangle_counts_per_vertex() {
        let db = triangle_db();
        let q = parse_cq("G(x, y) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let d = hypertree::prepare(&q).unwrap();
        let ctx = ExecutionContext::unlimited();
        let by_x = count_by_decomposed(&q, &db, &d, &["x".to_string()], &ctx).unwrap();
        // Oracle: enumerate and group.
        let rows =
            hypertree::evaluate_decomposed(&q, &db, &d, &ExecutionContext::unlimited()).unwrap();
        let pos = rows.attr_pos("x").unwrap();
        let mut expected: std::collections::BTreeMap<pq_data::Tuple, u128> = Default::default();
        for t in rows.iter() {
            *expected.entry(t.project(&[pos])).or_insert(0) += 1;
        }
        assert_eq!(by_x.len(), expected.len());
        for (t, c) in by_x.iter() {
            assert_eq!(expected.get(t).copied(), Some(c), "group {t}");
        }
        // Parallel grouped agrees too.
        let pool = Pool::new(2);
        let shared = ExecutionContext::unlimited().into_shared();
        let par =
            count_by_decomposed_parallel(&q, &db, &d, &["x".to_string()], &shared, &pool).unwrap();
        assert_eq!(par, by_x);
    }
}
