//! Multiplicity-annotated relations: the carrier of the counting semiring.
//!
//! A [`CountedRelation`] maps each distinct tuple to a `u128` multiplicity.
//! Rows live in a `BTreeMap`, so iteration order is the lexicographic tuple
//! order — deterministic by construction, independent of insertion order,
//! and therefore independent of any parallel schedule that produced the
//! rows. All multiplicity arithmetic is checked; overflow surfaces as the
//! typed [`CountError::Overflow`], never as a wrapped count.

use std::collections::{BTreeMap, HashMap};

use pq_data::{Relation, Tuple, Value};
use pq_engine::governor::ExecutionContext;

use crate::{CountError, Result};

/// A relation whose tuples carry exact `u128` multiplicities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedRelation {
    attrs: Vec<String>,
    rows: BTreeMap<Tuple, u128>,
}

/// Render a `u128` count as a domain [`Value`]: an integer when it fits in
/// `i64`, else its decimal string (the wire and cached representations keep
/// exactness either way).
pub fn count_value(c: u128) -> Value {
    if c <= i64::MAX as u128 {
        Value::int(c as i64)
    } else {
        Value::str(c.to_string())
    }
}

impl CountedRelation {
    /// An empty counted relation over the given attribute names.
    ///
    /// # Errors
    /// [`CountError::Engine`] (duplicate attribute) when a name repeats.
    pub fn new(attrs: impl IntoIterator<Item = impl Into<String>>) -> Result<Self> {
        // Reuse the substrate's header validation.
        let probe = Relation::new(attrs).map_err(CountError::from)?;
        Ok(CountedRelation {
            attrs: probe.attrs().to_vec(),
            rows: BTreeMap::new(),
        })
    }

    /// Annotate every tuple of a set-semantics relation with multiplicity 1.
    pub fn from_relation(r: &Relation) -> Self {
        CountedRelation {
            attrs: r.attrs().to_vec(),
            rows: r.iter().map(|t| (t.clone(), 1u128)).collect(),
        }
    }

    /// The header (attribute names, in column order).
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no tuple has positive multiplicity.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The multiplicity of `t`, or `None` when absent.
    pub fn get(&self, t: &Tuple) -> Option<u128> {
        self.rows.get(t).copied()
    }

    /// Iterate `(tuple, multiplicity)` pairs in lexicographic tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u128)> {
        self.rows.iter().map(|(t, &c)| (t, c))
    }

    /// Add `m` to the multiplicity of `t` (checked).
    pub fn insert_add(&mut self, t: Tuple, m: u128, engine: &'static str) -> Result<()> {
        debug_assert_eq!(t.arity(), self.attrs.len(), "arity mismatch");
        let slot = self.rows.entry(t).or_insert(0);
        *slot = slot.checked_add(m).ok_or(CountError::Overflow { engine })?;
        Ok(())
    }

    /// The sum of all multiplicities (checked).
    pub fn total(&self, engine: &'static str) -> Result<u128> {
        self.rows
            .values()
            .try_fold(0u128, |a, &b| a.checked_add(b))
            .ok_or(CountError::Overflow { engine })
    }

    /// Project onto `keep`, **summing** multiplicities of tuples that
    /// collide — the semiring marginalization step. Every name in `keep`
    /// must be in the header.
    pub fn project_sum(
        &self,
        keep: &[String],
        ctx: &ExecutionContext,
        engine: &'static str,
    ) -> Result<CountedRelation> {
        let positions: Vec<usize> = keep
            .iter()
            .map(|a| {
                self.attrs
                    .iter()
                    .position(|b| b == a)
                    .ok_or_else(|| missing_attr(a, &self.attrs))
            })
            .collect::<Result<_>>()?;
        let mut out = CountedRelation {
            attrs: keep.to_vec(),
            rows: BTreeMap::new(),
        };
        for (t, &c) in &self.rows {
            ctx.tick(engine)?;
            out.insert_add(t.project(&positions), c, engine)?;
        }
        Ok(out)
    }

    /// Natural join with multiplicity **products** — the semiring
    /// combination step. Output attributes are `self`'s header followed by
    /// `other`'s non-shared attributes; a tuple's multiplicity is the
    /// product of its two projections' multiplicities. Tuples of `self`
    /// with no partner are dropped (the count-propagating semijoin).
    pub fn join_multiply(
        &self,
        other: &CountedRelation,
        ctx: &ExecutionContext,
        engine: &'static str,
    ) -> Result<CountedRelation> {
        let shared: Vec<&String> = other
            .attrs
            .iter()
            .filter(|a| self.attrs.contains(a))
            .collect();
        let self_key: Vec<usize> = shared
            .iter()
            .map(|a| self.attrs.iter().position(|b| &b == a).expect("shared"))
            .collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|a| other.attrs.iter().position(|b| &b == a).expect("shared"))
            .collect();
        let other_rest: Vec<usize> = (0..other.attrs.len())
            .filter(|i| !other_key.contains(i))
            .collect();

        // Build side: group the right rows by join key.
        let mut by_key: HashMap<Tuple, Vec<(Tuple, u128)>> = HashMap::new();
        for (t, &c) in &other.rows {
            ctx.tick(engine)?;
            by_key
                .entry(t.project(&other_key))
                .or_default()
                .push((t.project(&other_rest), c));
        }

        let mut attrs = self.attrs.clone();
        attrs.extend(other_rest.iter().map(|&i| other.attrs[i].clone()));
        let mut out = CountedRelation {
            attrs,
            rows: BTreeMap::new(),
        };
        for (t, &c) in &self.rows {
            ctx.tick(engine)?;
            let Some(matches) = by_key.get(&t.project(&self_key)) else {
                continue;
            };
            for (rest, m) in matches {
                let prod = c.checked_mul(*m).ok_or(CountError::Overflow { engine })?;
                out.insert_add(t.extend_with(rest.iter().cloned()), prod, engine)?;
            }
        }
        Ok(out)
    }

    /// Materialize as a set-semantics relation with the multiplicity
    /// appended as a final `count_attr` column (see [`count_value`] for the
    /// value encoding). Rows come out in lexicographic tuple order.
    pub fn to_relation(&self, count_attr: &str) -> Result<Relation> {
        let mut attrs = self.attrs.clone();
        attrs.push(count_attr.to_string());
        let mut out = Relation::new(attrs).map_err(CountError::from)?;
        for (t, &c) in &self.rows {
            out.insert(t.extend_with([count_value(c)]))
                .map_err(CountError::from)?;
        }
        Ok(out)
    }
}

fn missing_attr(attr: &str, header: &[String]) -> CountError {
    CountError::Engine(pq_engine::EngineError::Data(
        pq_data::DataError::UnknownAttribute {
            attr: attr.to_string(),
            header: header.to_vec(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;

    fn ctx() -> ExecutionContext {
        ExecutionContext::unlimited()
    }

    #[test]
    fn from_relation_is_unit_weighted() {
        let r = Relation::with_tuples(["a", "b"], [tuple![1, 2], tuple![3, 4]]).unwrap();
        let c = CountedRelation::from_relation(&r);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&tuple![1, 2]), Some(1));
        assert_eq!(c.total("t").unwrap(), 2);
    }

    #[test]
    fn project_sum_merges_multiplicities() {
        let r =
            Relation::with_tuples(["a", "b"], [tuple![1, 2], tuple![1, 3], tuple![2, 9]]).unwrap();
        let c = CountedRelation::from_relation(&r);
        let p = c.project_sum(&["a".to_string()], &ctx(), "t").unwrap();
        assert_eq!(p.get(&tuple![1]), Some(2));
        assert_eq!(p.get(&tuple![2]), Some(1));
        assert_eq!(p.attrs(), ["a".to_string()]);
    }

    #[test]
    fn join_multiply_multiplies_and_semijoins() {
        let left = CountedRelation::from_relation(
            &Relation::with_tuples(["a", "b"], [tuple![1, 2], tuple![5, 6]]).unwrap(),
        );
        let right = Relation::with_tuples(["b", "c"], [tuple![2, 7], tuple![2, 8]]).unwrap();
        let marg = CountedRelation::from_relation(&right)
            .project_sum(&["b".to_string()], &ctx(), "t")
            .unwrap();
        assert_eq!(marg.get(&tuple![2]), Some(2));
        let j = left.join_multiply(&marg, &ctx(), "t").unwrap();
        // (5, 6) has no partner and is dropped; (1, 2) picks up weight 2.
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(&tuple![1, 2]), Some(2));
    }

    #[test]
    fn join_multiply_extends_with_unshared_attrs() {
        let left =
            CountedRelation::from_relation(&Relation::with_tuples(["a"], [tuple![1]]).unwrap());
        let right = CountedRelation::from_relation(
            &Relation::with_tuples(["a", "z"], [tuple![1, 10], tuple![1, 20]]).unwrap(),
        );
        let j = left.join_multiply(&right, &ctx(), "t").unwrap();
        assert_eq!(j.attrs(), ["a".to_string(), "z".to_string()]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&tuple![1, 10]), Some(1));
    }

    #[test]
    fn overflow_is_typed_never_wrapped() {
        let mut c = CountedRelation::new(["a"]).unwrap();
        c.insert_add(tuple![1], u128::MAX, "t").unwrap();
        let err = c.insert_add(tuple![1], 1, "t").unwrap_err();
        assert!(err.is_overflow(), "got {err:?}");
        // total() over two near-max rows overflows too.
        let mut d = CountedRelation::new(["a"]).unwrap();
        d.insert_add(tuple![1], u128::MAX, "t").unwrap();
        d.insert_add(tuple![2], 1, "t").unwrap();
        assert!(d.total("t").unwrap_err().is_overflow());
        // product overflow in a join
        let big = d;
        let mut unit = CountedRelation::new(["a"]).unwrap();
        unit.insert_add(tuple![1], 3, "t").unwrap();
        assert!(unit
            .join_multiply(&big, &ctx(), "t")
            .unwrap_err()
            .is_overflow());
    }

    #[test]
    fn to_relation_appends_count_column() {
        let mut c = CountedRelation::new(["g"]).unwrap();
        c.insert_add(tuple![1], 4, "t").unwrap();
        c.insert_add(tuple![2], u128::MAX, "t").unwrap();
        let r = c.to_relation("count").unwrap();
        assert_eq!(r.attrs(), ["g".to_string(), "count".to_string()]);
        assert!(r.contains(&tuple![1, 4]));
        // Beyond i64: the exact decimal string.
        assert!(r.contains(&Tuple::new(vec![
            Value::int(2),
            Value::str(u128::MAX.to_string())
        ])));
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let mut c = CountedRelation::new(["a"]).unwrap();
        for v in [5, 1, 3, 2, 4] {
            c.insert_add(tuple![v], 1, "t").unwrap();
        }
        let order: Vec<Tuple> = c.iter().map(|(t, _)| t.clone()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }
}
