//! `pq-count` — exact answer counting and aggregation *without enumeration*.
//!
//! The workspace's other engines decide and enumerate `Q(d)`; the natural
//! analytics workload asks only *how many*. Chen & Mengel (*Counting Answers
//! to Existential Positive Queries*, arXiv 1601.03240) pin down exactly when
//! that question stays polynomial: for acyclic (and, via hypertree
//! decompositions, bounded-width) conjunctive queries with a
//! **quantifier-free head** — every body variable exported — the answer
//! count equals the number of satisfying assignments, and a Yannakakis-style
//! dynamic program computes it in time polynomial in the *input alone*, even
//! when the answer set is exponentially larger. With projection (existential
//! body variables) counting is as hard as `#W[1]` in general; this crate
//! then tracks counts *per head-variable projection*, which costs input +
//! output-projections — still far below materializing the answers.
//!
//! The mechanism is a commutative-semiring sweep: every tuple of a join-tree
//! node (or decomposition bag) carries a `u128` multiplicity, children are
//! marginalized onto their connecting variables (**summing** multiplicities
//! over the variables projected away), and joins **multiply** multiplicities
//! into the parent. All arithmetic is checked: an overflowing count is a
//! typed [`CountError::Overflow`], never a wrapped number.
//!
//! Entry points mirror the engine crate: ungoverned, governed
//! ([`pq_engine::governor::ExecutionContext`]), and pool-parallel with
//! deterministic (item-ordered) reduction, so counts are byte-identical at
//! any thread count. Grouped counts (`COUNT(Q) GROUP BY x̄`) come back as a
//! [`CountedRelation`]; [`QueryCount`] carries both the distinct answer
//! count (`COUNT DISTINCT`, i.e. `|Q(d)|`) and the bag-semantics assignment
//! count.

#![warn(missing_docs)]

pub mod acyclic;
pub mod counted;
pub mod decomposed;
mod sweep;

use std::fmt;

use pq_data::DataError;
use pq_engine::EngineError;

pub use acyclic::{
    count, count_by, count_by_governed, count_by_parallel, count_governed, count_parallel,
    quantifier_free,
};
pub use counted::{count_value, CountedRelation};
pub use decomposed::{
    count_by_decomposed, count_by_decomposed_parallel, count_decomposed, count_decomposed_parallel,
};

/// Errors raised by the counting engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CountError {
    /// A multiplicity product or sum exceeded `u128::MAX`. The true count is
    /// astronomically large; no fallback (enumeration least of all) could
    /// produce it, so this is terminal, and it is **never** reported as a
    /// wrapped count.
    Overflow {
        /// The counting engine that overflowed.
        engine: &'static str,
    },
    /// An underlying engine/data/query error (unsupported query class,
    /// resource exhaustion, arity mismatch, …).
    Engine(EngineError),
}

impl CountError {
    /// Convenience: is this the typed overflow error?
    pub fn is_overflow(&self) -> bool {
        matches!(self, CountError::Overflow { .. })
    }
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Overflow { engine } => {
                write!(f, "count overflow in engine `{engine}`: exceeds u128")
            }
            CountError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CountError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CountError::Engine(e) => Some(e),
            CountError::Overflow { .. } => None,
        }
    }
}

impl From<EngineError> for CountError {
    fn from(e: EngineError) -> Self {
        CountError::Engine(e)
    }
}

impl From<DataError> for CountError {
    fn from(e: DataError) -> Self {
        CountError::Engine(EngineError::Data(e))
    }
}

/// Result alias for this crate.
pub type Result<T, E = CountError> = std::result::Result<T, E>;

/// The two exact counts of one query evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCount {
    /// `|Q(d)|` — the number of *distinct* answer tuples (`COUNT DISTINCT`,
    /// and the count set semantics calls *the* count).
    pub distinct: u128,
    /// The number of satisfying assignments of the body variables that
    /// produce an answer (the bag-semantics `COUNT(*)` over the join).
    /// Equals `distinct` exactly when the head is quantifier-free.
    pub assignments: u128,
}
