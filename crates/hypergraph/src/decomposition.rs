//! Hypertree decompositions: the tractability frontier *beyond* acyclicity.
//!
//! Gottlob, Leone & Scarcello (*Hypertree Decompositions and Tractable
//! Queries*, cs/9812022) generalize the paper's Fig. 1 island of acyclic
//! queries: a hypergraph is α-acyclic iff it has hypertree width 1, and for
//! every fixed `k`, queries of hypertree width ≤ `k` are evaluable in
//! polynomial time by materializing each decomposition node's bag (a join of
//! at most `k` relations) and running the Yannakakis semijoin sweep over the
//! bag tree.
//!
//! A *hypertree decomposition* of a hypergraph `H` is a rooted tree whose
//! nodes `t` carry a **bag** `χ(t)` of vertices and a **cover** `λ(t)` of
//! hyperedges, such that
//!
//! 1. every hyperedge is contained in some bag (so the corresponding atom can
//!    be semijoined against a materialized bag),
//! 2. for every vertex, the nodes whose bags contain it form a connected
//!    subtree (the classical join-tree property, lifted to bags), and
//! 3. every bag is covered by the union of its cover's edges, `χ(t) ⊆ ∪λ(t)`
//!    (so the bag relation is a sub-relation of a join of `|λ(t)|` atoms).
//!
//! The **width** is `max_t |λ(t)|`; conditions 1–3 are exactly what the
//! evaluator in `pq-engine::hypertree` needs for correctness (they define
//! *generalized* hypertree decompositions; the exact search below also
//! maintains GLS's descendant condition, which is what makes the search
//! polynomial but is not required for evaluation).
//!
//! [`decompose`] tries, in order: a width-1 decomposition straight from the
//! GYO join tree (acyclic case); an exact branch-and-bound search in the
//! style of det-k-decomp for `k = 2..=width_limit` (gated to hypergraphs with
//! at most [`EXACT_EDGE_LIMIT`] edges); and a greedy vertex-elimination
//! heuristic whose result is a *verified-width certificate* — a valid
//! decomposition whose width upper-bounds the true hypertree width. All
//! tie-breaking is by index, so the output is deterministic across runs and
//! platforms; the exact search seeds its guard ordering with the (sorted) GYO
//! cyclic core, the same witness `PQA401` names.

use std::collections::{BTreeSet, HashMap};

use crate::gyo::{gyo, GyoOutcome};
use crate::hypergraph::Hypergraph;
use crate::jointree::JoinTree;

/// Default bound on the widths the exact search explores (and the largest
/// width the planner will route to the hypertree engine). Gated in
/// `AnalyzeOptions::width_limit` the way `minimize_atom_limit` gates core
/// minimization.
pub const DEFAULT_WIDTH_LIMIT: usize = 3;

/// The exact branch-and-bound search runs only on hypergraphs with at most
/// this many edges; larger inputs get the greedy heuristic certificate only.
pub const EXACT_EDGE_LIMIT: usize = 16;

/// One node of a hypertree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypertreeNode {
    /// `χ(t)`: the vertices this node is responsible for.
    pub bag: BTreeSet<usize>,
    /// `λ(t)`: hyperedge indices whose vertex union covers the bag.
    pub cover: BTreeSet<usize>,
}

/// A rooted hypertree decomposition; see the module docs for the invariants.
///
/// Instances are produced by [`decompose`] (validity checked by construction
/// and re-checkable with [`HypertreeDecomposition::verify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypertreeDecomposition {
    nodes: Vec<HypertreeNode>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
    width: usize,
    exact: bool,
}

impl HypertreeDecomposition {
    fn assemble(nodes: Vec<HypertreeNode>, parent: Vec<Option<usize>>, exact: bool) -> Self {
        assert_eq!(nodes.len(), parent.len());
        assert!(!nodes.is_empty(), "decomposition needs at least one node");
        let roots: Vec<usize> = (0..parent.len()).filter(|&i| parent[i].is_none()).collect();
        assert_eq!(roots.len(), 1, "exactly one root expected, got {roots:?}");
        let mut children = vec![Vec::new(); nodes.len()];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        let width = nodes
            .iter()
            .map(|n| n.cover.len())
            .max()
            .unwrap_or(0)
            .max(1);
        let d = HypertreeDecomposition {
            nodes,
            parent,
            children,
            root: roots[0],
            width,
            exact,
        };
        assert_eq!(
            d.top_down().len(),
            d.num_nodes(),
            "parent pointers contain a cycle"
        );
        d
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of decomposition nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node at index `i`.
    pub fn node(&self, i: usize) -> &HypertreeNode {
        &self.nodes[i]
    }

    /// Parent of node `i`, or `None` for the root.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Children of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// The width, `max_t |λ(t)|`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` when the width is the exact hypertree width; `false` when it is
    /// the heuristic's verified upper bound.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Nodes in top-down (preorder) order, root first.
    pub fn top_down(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in &self.children[n] {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes in bottom-up order: every node after all of its children.
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order = self.top_down();
        order.reverse();
        order
    }

    /// Number of levels (a single node has depth 1).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 1;
        for n in self.top_down() {
            depth[n] = self.parent[n].map_or(1, |p| depth[p] + 1);
            max = max.max(depth[n]);
        }
        max
    }

    /// Compact shape summary for wire output: `bags=N depth=D width=W`.
    pub fn shape(&self) -> String {
        format!(
            "bags={} depth={} width={}",
            self.num_nodes(),
            self.depth(),
            self.width
        )
    }

    /// The bag tree as a [`JoinTree`] (one tree node per decomposition node);
    /// the evaluator runs the classical semijoin sweeps over this.
    pub fn to_join_tree(&self) -> JoinTree {
        JoinTree::from_parents(self.parent.clone())
    }

    /// Re-check the three decomposition conditions against `hg`: every
    /// (nonempty) hyperedge inside some bag, per-vertex bag connectedness,
    /// and `χ(t) ⊆ ∪λ(t)` with in-range cover indices.
    pub fn verify(&self, hg: &Hypergraph) -> bool {
        // Condition 1: every hyperedge fits in some bag.
        for e in hg.edges() {
            if !self.nodes.iter().any(|n| e.is_subset(&n.bag)) {
                return false;
            }
        }
        // Condition 3: covers are in range and cover their bags.
        for n in &self.nodes {
            if n.cover.iter().any(|&e| e >= hg.num_edges()) {
                return false;
            }
            let covered: BTreeSet<usize> = n
                .cover
                .iter()
                .flat_map(|&e| hg.edge(e).iter().copied())
                .collect();
            if !n.bag.is_subset(&covered) {
                return false;
            }
        }
        // Condition 2: per-vertex connectedness of the bags containing it.
        for v in 0..hg.num_vertices() {
            let holders: BTreeSet<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].bag.contains(&v))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            let start = *holders.iter().next().expect("nonempty");
            let mut seen = BTreeSet::from([start]);
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                let mut nbrs: Vec<usize> = self.children[n].clone();
                if let Some(p) = self.parent[n] {
                    nbrs.push(p);
                }
                for m in nbrs {
                    if holders.contains(&m) && seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
            if seen != holders {
                return false;
            }
        }
        true
    }
}

/// Compute a hypertree decomposition of `hg`.
///
/// Returns `None` when the hypergraph has no nonempty edge (a constant-only
/// query body has no structure to decompose). Otherwise the result is always
/// a valid decomposition: exact of width 1 for acyclic hypergraphs, exact of
/// width `k ≤ width_limit` when the branch-and-bound search succeeds (only
/// attempted when `num_edges ≤ EXACT_EDGE_LIMIT`), or the greedy elimination
/// certificate with `is_exact() == false` — whose width may exceed
/// `width_limit`, in which case callers fall back to the naive engine.
pub fn decompose(hg: &Hypergraph, width_limit: usize) -> Option<HypertreeDecomposition> {
    if hg.edges().iter().all(|e| e.is_empty()) {
        return None;
    }
    match gyo(hg) {
        GyoOutcome::Acyclic(tree) => {
            let nodes = (0..hg.num_edges())
                .map(|e| HypertreeNode {
                    bag: hg.edge(e).clone(),
                    cover: BTreeSet::from([e]),
                })
                .collect();
            let parent = (0..hg.num_edges()).map(|e| tree.parent(e)).collect();
            Some(HypertreeDecomposition::assemble(nodes, parent, true))
        }
        GyoOutcome::Cyclic(core) => {
            if hg.num_edges() <= EXACT_EDGE_LIMIT {
                for k in 2..=width_limit {
                    if let Some(d) = exact_search(hg, k, &core) {
                        debug_assert!(d.verify(hg));
                        return Some(d);
                    }
                }
            }
            let d = greedy_elimination(hg);
            debug_assert!(d.verify(hg));
            Some(d)
        }
    }
}

// ------------------------------------------------------------------ exact --

/// A decomposition fragment: node 0 is the fragment root; `parent` indices
/// are fragment-local (ignored at node 0).
type Fragment = Vec<FragNode>;

#[derive(Clone)]
struct FragNode {
    bag: BTreeSet<usize>,
    cover: BTreeSet<usize>,
    parent: usize,
}

struct Search<'a> {
    hg: &'a Hypergraph,
    k: usize,
    /// Guard preference order: the GYO cyclic core (sorted) first, then the
    /// remaining edges by index — deterministic and biased toward the part
    /// of the hypergraph that actually causes cyclicity.
    order: Vec<usize>,
    memo: HashMap<(Vec<usize>, Vec<usize>), Option<Fragment>>,
}

/// det-k-decomp-style search for a width-`k` decomposition in GLS normal
/// form: each node's guard `λ` contains at least one edge of the component it
/// is decomposing (so at least one edge is covered per step and recursion
/// terminates), guards are drawn from the component plus edges meeting the
/// connector (any other edge contributes nothing to the bag), and the bag is
/// `∪λ` restricted to the component's vertices plus the connector — which
/// keeps guard vertices that live outside the component out of every
/// descendant bag (GLS's descendant condition).
fn exact_search(hg: &Hypergraph, k: usize, core: &[usize]) -> Option<HypertreeDecomposition> {
    let mut order: Vec<usize> = core.to_vec();
    order.sort_unstable();
    for e in 0..hg.num_edges() {
        if !core.contains(&e) {
            order.push(e);
        }
    }
    let mut search = Search {
        hg,
        k,
        order,
        memo: HashMap::new(),
    };

    let nonempty: BTreeSet<usize> = (0..hg.num_edges())
        .filter(|&e| !hg.edge(e).is_empty())
        .collect();
    let mut fragments = Vec::new();
    for comp in components(hg, &nonempty, &BTreeSet::new()) {
        fragments.push(search.decompose_component(&comp, &BTreeSet::new())?);
    }

    let mut nodes = Vec::new();
    let mut parent = Vec::new();
    let mut roots = Vec::new();
    for frag in fragments {
        let off = nodes.len();
        roots.push(off);
        for (i, fnode) in frag.into_iter().enumerate() {
            parent.push(if i == 0 {
                None
            } else {
                Some(off + fnode.parent)
            });
            nodes.push(HypertreeNode {
                bag: fnode.bag,
                cover: fnode.cover,
            });
        }
    }
    // Disconnected hypergraphs: attach the extra component roots under the
    // first (vertex-disjoint, so connectedness is unaffected).
    for &r in &roots[1..] {
        parent[r] = Some(roots[0]);
    }
    Some(HypertreeDecomposition::assemble(nodes, parent, true))
}

/// Split `edges` into connected components, treating two edges as adjacent
/// when they share a vertex outside `separator`. Components come out sorted
/// by their smallest edge index.
fn components(
    hg: &Hypergraph,
    edges: &BTreeSet<usize>,
    separator: &BTreeSet<usize>,
) -> Vec<BTreeSet<usize>> {
    let mut remaining: BTreeSet<usize> = edges.clone();
    let mut out = Vec::new();
    while let Some(&start) = remaining.iter().next() {
        let mut comp = BTreeSet::from([start]);
        remaining.remove(&start);
        let mut stack = vec![start];
        while let Some(e) = stack.pop() {
            let grown: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&f| {
                    hg.edge(e)
                        .iter()
                        .any(|v| !separator.contains(v) && hg.edge(f).contains(v))
                })
                .collect();
            for f in grown {
                remaining.remove(&f);
                comp.insert(f);
                stack.push(f);
            }
        }
        out.push(comp);
    }
    out
}

impl Search<'_> {
    fn decompose_component(
        &mut self,
        comp: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
    ) -> Option<Fragment> {
        let key = (
            comp.iter().copied().collect::<Vec<_>>(),
            connector.iter().copied().collect::<Vec<_>>(),
        );
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }

        // Guard candidates, in preference order: component edges first, then
        // outside edges that meet the connector (anything else is useless —
        // an outside edge intersects the component's vertices only inside
        // the connector).
        let mut cands: Vec<usize> = Vec::new();
        for &e in &self.order {
            if comp.contains(&e) {
                cands.push(e);
            }
        }
        for &e in &self.order {
            if !comp.contains(&e) && self.hg.edge(e).iter().any(|v| connector.contains(v)) {
                cands.push(e);
            }
        }

        let comp_verts: BTreeSet<usize> = comp
            .iter()
            .flat_map(|&e| self.hg.edge(e).iter().copied())
            .collect();
        let mut scope = comp_verts;
        scope.extend(connector.iter().copied());

        let result = self.try_guards(&cands, comp, connector, &scope);
        self.memo.insert(key, result.clone());
        result
    }

    /// Enumerate guard sets by increasing size (smaller guards ⇒ tighter
    /// bags), lexicographically in candidate order within a size.
    fn try_guards(
        &mut self,
        cands: &[usize],
        comp: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
        scope: &BTreeSet<usize>,
    ) -> Option<Fragment> {
        for size in 1..=self.k.min(cands.len()) {
            let mut picked = Vec::with_capacity(size);
            if let Some(frag) = self.combine(cands, 0, size, &mut picked, comp, connector, scope) {
                return Some(frag);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn combine(
        &mut self,
        cands: &[usize],
        from: usize,
        size: usize,
        picked: &mut Vec<usize>,
        comp: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
        scope: &BTreeSet<usize>,
    ) -> Option<Fragment> {
        if picked.len() == size {
            return self.try_lambda(picked, comp, connector, scope);
        }
        for i in from..cands.len() {
            picked.push(cands[i]);
            let hit = self.combine(cands, i + 1, size, picked, comp, connector, scope);
            picked.pop();
            if hit.is_some() {
                return hit;
            }
        }
        None
    }

    fn try_lambda(
        &mut self,
        lambda: &[usize],
        comp: &BTreeSet<usize>,
        connector: &BTreeSet<usize>,
        scope: &BTreeSet<usize>,
    ) -> Option<Fragment> {
        // Normal form: the guard must take at least one component edge, so
        // at least one edge is covered and the recursion shrinks.
        if !lambda.iter().any(|e| comp.contains(e)) {
            return None;
        }
        let v_lambda: BTreeSet<usize> = lambda
            .iter()
            .flat_map(|&e| self.hg.edge(e).iter().copied())
            .collect();
        if !connector.is_subset(&v_lambda) {
            return None;
        }
        let chi: BTreeSet<usize> = v_lambda.intersection(scope).copied().collect();
        let covered: BTreeSet<usize> = comp
            .iter()
            .copied()
            .filter(|&e| self.hg.edge(e).is_subset(&chi))
            .collect();
        debug_assert!(!covered.is_empty());
        let rest: BTreeSet<usize> = comp.difference(&covered).copied().collect();

        let mut frag: Fragment = vec![FragNode {
            bag: chi.clone(),
            cover: lambda.iter().copied().collect(),
            parent: 0,
        }];
        for sub in components(self.hg, &rest, &chi) {
            let sub_verts: BTreeSet<usize> = sub
                .iter()
                .flat_map(|&e| self.hg.edge(e).iter().copied())
                .collect();
            let sub_connector: BTreeSet<usize> = sub_verts.intersection(&chi).copied().collect();
            let child = self.decompose_component(&sub, &sub_connector)?;
            let off = frag.len();
            for (i, mut fnode) in child.into_iter().enumerate() {
                fnode.parent = if i == 0 { 0 } else { off + fnode.parent };
                frag.push(fnode);
            }
        }
        Some(frag)
    }
}

// -------------------------------------------------------------- heuristic --

/// Greedy vertex-elimination heuristic: min-fill (ties: min-degree, then
/// index) ordering on the primal graph yields a tree decomposition whose bags
/// are then covered greedily by hyperedges — a valid decomposition whose
/// width certifies an upper bound on the hypertree width.
fn greedy_elimination(hg: &Hypergraph) -> HypertreeDecomposition {
    let n = hg.num_vertices();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (a, b) in hg.primal_edges() {
        adj[a].insert(b);
        adj[b].insert(a);
    }
    let mut active: BTreeSet<usize> = (0..n)
        .filter(|&v| hg.edges().iter().any(|e| e.contains(&v)))
        .collect();

    let mut order: Vec<usize> = Vec::new();
    let mut pos: Vec<usize> = vec![usize::MAX; n];
    let mut bags: Vec<BTreeSet<usize>> = Vec::new();
    while !active.is_empty() {
        // Pick the active vertex needing fewest fill edges.
        let mut best: Option<(usize, usize, usize)> = None; // (fill, degree, v)
        for &v in &active {
            let nbrs: Vec<usize> = adj[v].iter().copied().collect();
            let mut fill = 0;
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if !adj[nbrs[i]].contains(&nbrs[j]) {
                        fill += 1;
                    }
                }
            }
            let cand = (fill, nbrs.len(), v);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let v = best.expect("active nonempty").2;

        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        let mut bag: BTreeSet<usize> = nbrs.iter().copied().collect();
        bag.insert(v);
        for i in 0..nbrs.len() {
            for j in i + 1..nbrs.len() {
                adj[nbrs[i]].insert(nbrs[j]);
                adj[nbrs[j]].insert(nbrs[i]);
            }
        }
        for &u in &nbrs {
            adj[u].remove(&v);
        }
        adj[v].clear();
        active.remove(&v);
        pos[v] = order.len();
        order.push(v);
        bags.push(bag);
    }

    // Tree: parent of bag i is the bag of the earliest-eliminated vertex
    // among bag_i \ {v_i} (all eliminated after v_i); parentless bags are
    // component roots, attached under the last bag.
    let m = bags.len();
    let mut parent: Vec<Option<usize>> = vec![None; m];
    for i in 0..m {
        parent[i] = bags[i]
            .iter()
            .filter(|&&u| u != order[i])
            .map(|&u| pos[u])
            .min();
    }
    let root = m - 1;
    for (i, p) in parent.iter_mut().enumerate() {
        if p.is_none() && i != root {
            *p = Some(root);
        }
    }

    // Greedy set cover of each bag by hyperedges (most new vertices first,
    // ties by edge index). Every bag vertex occurs in some hyperedge, so
    // this terminates with a full cover.
    let nodes: Vec<HypertreeNode> = bags
        .into_iter()
        .map(|bag| {
            let mut uncovered = bag.clone();
            let mut cover = BTreeSet::new();
            while !uncovered.is_empty() {
                let e = (0..hg.num_edges())
                    .max_by_key(|&e| {
                        let gain = hg.edge(e).intersection(&uncovered).count();
                        (gain, std::cmp::Reverse(e))
                    })
                    .expect("hypergraph has edges");
                let gain = hg.edge(e).intersection(&uncovered).count();
                assert!(gain > 0, "bag vertex not covered by any edge");
                for v in hg.edge(e) {
                    uncovered.remove(v);
                }
                cover.insert(e);
            }
            HypertreeNode { bag, cover }
        })
        .collect();

    HypertreeDecomposition::assemble(nodes, parent, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(len: usize) -> Hypergraph {
        let mut hg = Hypergraph::new();
        for i in 0..len {
            hg.add_edge([format!("x{i}"), format!("x{}", (i + 1) % len)]);
        }
        hg
    }

    fn clique(n: usize) -> Hypergraph {
        let mut hg = Hypergraph::new();
        for i in 0..n {
            for j in i + 1..n {
                hg.add_edge([format!("x{i}"), format!("x{j}")]);
            }
        }
        hg
    }

    #[test]
    fn acyclic_chain_has_width_one() {
        let hg = Hypergraph::from_edges([vec!["a", "b"], vec!["b", "c"], vec!["c", "d"]]);
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 1);
        assert!(d.is_exact());
        assert_eq!(d.num_nodes(), 3);
        assert!(d.verify(&hg));
    }

    #[test]
    fn triangle_has_width_two() {
        let d = decompose(&cycle(3), DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 2);
        assert!(d.is_exact());
        assert!(d.verify(&cycle(3)));
        assert_eq!(
            d.shape(),
            format!("bags={} depth={} width=2", d.num_nodes(), d.depth())
        );
    }

    #[test]
    fn long_cycles_have_width_two() {
        for len in [4usize, 5, 6, 8] {
            let hg = cycle(len);
            let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
            assert_eq!(d.width(), 2, "cycle of length {len}");
            assert!(d.is_exact());
            assert!(d.verify(&hg));
        }
    }

    #[test]
    fn grid_2x3_has_width_two() {
        // 2×3 grid graph as binary edges: cyclic, hypertree width 2.
        let hg = Hypergraph::from_edges([
            vec!["a", "b"],
            vec!["b", "c"],
            vec!["d", "e"],
            vec!["e", "f"],
            vec!["a", "d"],
            vec!["b", "e"],
            vec!["c", "f"],
        ]);
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 2);
        assert!(d.is_exact());
        assert!(d.verify(&hg));
    }

    #[test]
    fn k5_needs_width_three_exactly() {
        // htw(K_n over binary edges) = ⌈n/2⌉; K5 → 3, and the k = 2 search
        // must fail (the normal-form progress condition prunes the covers
        // that never touch the open component).
        let hg = clique(5);
        assert!(exact_search(&hg, 2, &[]).is_none());
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 3);
        assert!(d.is_exact());
        assert!(d.verify(&hg));
    }

    #[test]
    fn k7_exceeds_the_exact_gate_and_gets_a_heuristic_certificate() {
        let hg = clique(7); // 21 edges > EXACT_EDGE_LIMIT
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert!(!d.is_exact());
        assert_eq!(d.width(), 4); // one bag of all 7 vertices, ⌈7/2⌉ cover
        assert!(d.verify(&hg));
    }

    #[test]
    fn width_limit_gates_the_exact_search() {
        // With the limit below the true width, only the heuristic answers.
        let d = decompose(&cycle(3), 1).expect("has edges");
        assert!(!d.is_exact());
        assert!(d.width() >= 2);
        assert!(d.verify(&cycle(3)));
    }

    #[test]
    fn disconnected_components_share_one_tree() {
        let mut hg = cycle(3);
        hg.add_edge(["p", "q"]);
        hg.add_edge(["q", "r"]);
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 2);
        assert!(d.is_exact());
        assert!(d.verify(&hg));
    }

    #[test]
    fn no_nonempty_edges_means_no_decomposition() {
        assert!(decompose(&Hypergraph::new(), DEFAULT_WIDTH_LIMIT).is_none());
        let mut hg = Hypergraph::new();
        hg.add_edge(Vec::<String>::new());
        assert!(decompose(&hg, DEFAULT_WIDTH_LIMIT).is_none());
    }

    #[test]
    fn empty_edges_ride_along_with_real_structure() {
        let mut hg = cycle(3);
        hg.add_edge(Vec::<String>::new()); // a constant-only atom
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(d.width(), 2);
        assert!(d.verify(&hg));
    }

    #[test]
    fn decomposition_is_deterministic() {
        let a = decompose(&cycle(5), DEFAULT_WIDTH_LIMIT).expect("has edges");
        let b = decompose(&cycle(5), DEFAULT_WIDTH_LIMIT).expect("has edges");
        assert_eq!(a, b);
    }

    #[test]
    fn bag_tree_is_a_valid_join_tree_over_bags() {
        let hg = cycle(4);
        let d = decompose(&hg, DEFAULT_WIDTH_LIMIT).expect("has edges");
        let mut bag_hg = Hypergraph::new();
        for v in 0..hg.num_vertices() {
            bag_hg.add_vertex(hg.label(v).to_string());
        }
        for i in 0..d.num_nodes() {
            bag_hg.add_edge(d.node(i).bag.iter().map(|&v| hg.label(v).to_string()));
        }
        assert!(d.to_join_tree().verify(&bag_hg));
    }
}
