//! Hypergraphs over named vertices.
//!
//! Section 5 of the paper associates with every conjunctive query `Q` a
//! hypergraph `H`: one vertex per variable, one hyperedge per relational atom
//! containing the variables that occur in it. Distinct atoms with the same
//! variable set yield *distinct* hyperedges (the edge list is a `Vec`), so
//! join-tree nodes correspond one-to-one with query atoms.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A hypergraph with string-labelled vertices and an ordered list of edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    labels: Vec<String>,
    index: HashMap<String, usize>,
    edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// An empty hypergraph.
    pub fn new() -> Self {
        Hypergraph {
            labels: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
        }
    }

    /// Build from an iterator of edges, each an iterator of vertex labels.
    /// Vertices are created on first mention.
    pub fn from_edges<E, V, S>(edges: E) -> Self
    where
        E: IntoIterator<Item = V>,
        V: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut h = Hypergraph::new();
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// Intern a vertex label, returning its index.
    pub fn add_vertex(&mut self, label: impl Into<String>) -> usize {
        let label = label.into();
        if let Some(&i) = self.index.get(&label) {
            return i;
        }
        let i = self.labels.len();
        self.index.insert(label.clone(), i);
        self.labels.push(label);
        i
    }

    /// Append an edge (set of vertex labels); returns its index.
    pub fn add_edge<S: Into<String>>(&mut self, verts: impl IntoIterator<Item = S>) -> usize {
        let e: BTreeSet<usize> = verts.into_iter().map(|v| self.add_vertex(v)).collect();
        self.edges.push(e);
        self.edges.len() - 1
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex label at index `v`.
    pub fn label(&self, v: usize) -> &str {
        &self.labels[v]
    }

    /// Index of a vertex label, if interned.
    pub fn vertex(&self, label: &str) -> Option<usize> {
        self.index.get(label).copied()
    }

    /// The vertex set of edge `e`.
    pub fn edge(&self, e: usize) -> &BTreeSet<usize> {
        &self.edges[e]
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[BTreeSet<usize>] {
        &self.edges
    }

    /// The labels of edge `e`, sorted.
    pub fn edge_labels(&self, e: usize) -> Vec<&str> {
        self.edges[e].iter().map(|&v| self.label(v)).collect()
    }

    /// Indices of edges containing vertex `v`.
    pub fn edges_containing(&self, v: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&e| self.edges[e].contains(&v))
            .collect()
    }

    /// The *primal* (Gaifman) graph: vertex pairs co-occurring in an edge.
    pub fn primal_edges(&self) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for e in &self.edges {
            let vs: Vec<usize> = e.iter().copied().collect();
            for i in 0..vs.len() {
                for j in i + 1..vs.len() {
                    out.insert((vs[i], vs[j]));
                }
            }
        }
        out
    }

    /// Do `a` and `b` co-occur in some edge? (Used to split `≠` atoms into
    /// the paper's `I1`/`I2` classes.)
    pub fn co_occur(&self, a: usize, b: usize) -> bool {
        self.edges.iter().any(|e| e.contains(&a) && e.contains(&b))
    }
}

impl Default for Hypergraph {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            write!(f, "e{i} = {{")?;
            for (k, &v) in e.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.label(v))?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertices_are_interned_once() {
        let mut h = Hypergraph::new();
        let a = h.add_vertex("x");
        let b = h.add_vertex("x");
        assert_eq!(a, b);
        assert_eq!(h.num_vertices(), 1);
    }

    #[test]
    fn duplicate_edges_are_kept_distinct() {
        let h = Hypergraph::from_edges([["x", "y"], ["x", "y"]]);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge(0), h.edge(1));
    }

    #[test]
    fn edge_membership_queries() {
        let h = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["w"]]);
        let y = h.vertex("y").unwrap();
        assert_eq!(h.edges_containing(y), vec![0, 1]);
        let x = h.vertex("x").unwrap();
        let z = h.vertex("z").unwrap();
        assert!(h.co_occur(x, y));
        assert!(!h.co_occur(x, z));
    }

    #[test]
    fn primal_graph_of_triangle_edge() {
        let h = Hypergraph::from_edges([vec!["a", "b", "c"]]);
        assert_eq!(h.primal_edges().len(), 3);
    }
}
