//! `pq-hypergraph` — hypergraphs, GYO acyclicity, and join trees.
//!
//! Section 5 of Papadimitriou & Yannakakis associates a hypergraph with every
//! conjunctive query (vertices = variables, hyperedges = atoms) and calls the
//! query *acyclic* when that hypergraph is α-acyclic. This crate provides the
//! hypergraph type, the GYO reduction deciding acyclicity, and join-tree
//! construction — the combinatorial backbone of both the classical Yannakakis
//! algorithm and the Theorem 2 color-coding engine.

#![warn(missing_docs)]

pub mod decomposition;
pub mod gyo;
pub mod hypergraph;
pub mod jointree;

pub use decomposition::{
    decompose, HypertreeDecomposition, HypertreeNode, DEFAULT_WIDTH_LIMIT, EXACT_EDGE_LIMIT,
};
pub use gyo::{cyclic_core, gyo, is_acyclic, join_tree, GyoOutcome};
pub use hypergraph::Hypergraph;
pub use jointree::JoinTree;
