//! The GYO (Graham / Yu–Özsoyoğlu) reduction: acyclicity testing and join
//! tree construction.
//!
//! A hypergraph is *acyclic* (in the α-acyclic sense the paper uses, citing
//! Ullman \[15\]) iff the following reduction empties it:
//!
//! 1. delete any vertex that occurs in exactly one edge;
//! 2. delete any edge contained in another edge, recording the container as
//!    its *witness*.
//!
//! The witness links form a join forest; linking component roots arbitrarily
//! (the paper: "we assume without loss of generality that T is a tree")
//! yields a [`JoinTree`] whose validity we can independently check with
//! [`JoinTree::verify`].

use crate::hypergraph::Hypergraph;
use crate::jointree::JoinTree;

/// Outcome of the GYO reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GyoOutcome {
    /// The hypergraph is acyclic; a join tree was produced.
    Acyclic(JoinTree),
    /// The hypergraph is cyclic; the indices of the irreducible core edges
    /// are returned (useful for diagnostics).
    Cyclic(Vec<usize>),
}

/// Run the GYO reduction on `hg`.
///
/// Returns [`GyoOutcome::Acyclic`] with a join tree over the *original* edge
/// indices when `hg` is acyclic. A hypergraph with zero edges is trivially
/// cyclic-free but has no join tree; we treat it as acyclic with a
/// single-node tree only when it has at least one edge, and return
/// `Cyclic(vec![])` for the degenerate empty case (callers with empty query
/// bodies handle that separately).
pub fn gyo(hg: &Hypergraph) -> GyoOutcome {
    let n = hg.num_edges();
    if n == 0 {
        return GyoOutcome::Cyclic(Vec::new());
    }
    let mut work: Vec<std::collections::BTreeSet<usize>> = hg.edges().to_vec();
    let mut alive = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];

    loop {
        let mut changed = false;

        // Step 1: strip vertices occurring in exactly one alive edge.
        let mut occur = vec![0usize; hg.num_vertices()];
        for (e, vs) in work.iter().enumerate() {
            if alive[e] {
                for &v in vs {
                    occur[v] += 1;
                }
            }
        }
        for (e, vs) in work.iter_mut().enumerate() {
            if alive[e] {
                let before = vs.len();
                vs.retain(|&v| occur[v] > 1);
                changed |= vs.len() != before;
            }
        }

        // Step 2: absorb edges contained in others. Scan deterministically;
        // marking `e` dead immediately keeps equal-set pairs from absorbing
        // each other.
        for e in 0..n {
            if !alive[e] {
                continue;
            }
            let witness = (0..n).find(|&w| w != e && alive[w] && work[e].is_subset(&work[w]));
            if let Some(w) = witness {
                alive[e] = false;
                parent[e] = Some(w);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Contract: the cyclic witness is reported in sorted (ascending) edge
    // order. The scan above already produces it sorted; the explicit sort
    // pins the contract against refactors, because downstream consumers
    // depend on it — ANALYZE output names the witness atoms, and the
    // hypertree decomposition search seeds its guard ordering with the core,
    // so stability across runs and platforms matters.
    let mut survivors: Vec<usize> = (0..n).filter(|&e| alive[e]).collect();
    survivors.sort_unstable();
    match survivors.as_slice() {
        [_root] => GyoOutcome::Acyclic(JoinTree::from_parents(parent)),
        _ => GyoOutcome::Cyclic(survivors),
    }
}

/// Is `hg` an acyclic hypergraph (with at least one edge)?
///
/// ```
/// use pq_hypergraph::{is_acyclic, Hypergraph};
///
/// let chain = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"]]);
/// assert!(is_acyclic(&chain));
/// let triangle = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["z", "x"]]);
/// assert!(!is_acyclic(&triangle));
/// ```
pub fn is_acyclic(hg: &Hypergraph) -> bool {
    matches!(gyo(hg), GyoOutcome::Acyclic(_))
}

/// Build a join tree for `hg`, or `None` when cyclic.
pub fn join_tree(hg: &Hypergraph) -> Option<JoinTree> {
    match gyo(hg) {
        GyoOutcome::Acyclic(t) => Some(t),
        GyoOutcome::Cyclic(_) => None,
    }
}

/// The GYO-irreducible core of `hg`: `None` when acyclic, otherwise the
/// indices of the edges the reduction could not eliminate — a concrete
/// witness that no join tree exists (for a query hypergraph these are atom
/// indices, which is what diagnostics want to name). The witness is always
/// sorted ascending, so ANALYZE output and the decomposition search seeded
/// from it are deterministic across runs and platforms.
pub fn cyclic_core(hg: &Hypergraph) -> Option<Vec<usize>> {
    match gyo(hg) {
        GyoOutcome::Acyclic(_) => None,
        GyoOutcome::Cyclic(core) => Some(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_is_acyclic() {
        let hg = Hypergraph::from_edges([vec!["x", "y", "z"]]);
        let t = join_tree(&hg).expect("acyclic");
        assert_eq!(t.num_nodes(), 1);
        assert!(t.verify(&hg));
    }

    #[test]
    fn path_is_acyclic_with_valid_tree() {
        let hg = Hypergraph::from_edges([
            vec!["a", "b"],
            vec!["b", "c"],
            vec!["c", "d"],
            vec!["d", "e"],
        ]);
        let t = join_tree(&hg).expect("acyclic");
        assert!(t.verify(&hg));
    }

    #[test]
    fn triangle_is_cyclic() {
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["z", "x"]]);
        match gyo(&hg) {
            GyoOutcome::Cyclic(core) => assert_eq!(core.len(), 3),
            GyoOutcome::Acyclic(_) => panic!("triangle must be cyclic"),
        }
    }

    #[test]
    fn covered_triangle_is_acyclic() {
        // Adding the edge {x,y,z} makes the triangle α-acyclic.
        let hg = Hypergraph::from_edges([
            vec!["x", "y"],
            vec!["y", "z"],
            vec!["z", "x"],
            vec!["x", "y", "z"],
        ]);
        let t = join_tree(&hg).expect("acyclic");
        assert!(t.verify(&hg));
        assert_eq!(t.root(), 3); // the big edge absorbs the others
    }

    #[test]
    fn star_query_is_acyclic() {
        let hg = Hypergraph::from_edges([vec!["c", "a"], vec!["c", "b"], vec!["c", "d"]]);
        let t = join_tree(&hg).expect("acyclic");
        assert!(t.verify(&hg));
    }

    #[test]
    fn duplicate_edges_absorb() {
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["x", "y"], vec!["y", "z"]]);
        let t = join_tree(&hg).expect("acyclic");
        assert!(t.verify(&hg));
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn disconnected_components_link_into_one_tree() {
        let hg = Hypergraph::from_edges([vec!["a", "b"], vec!["c", "d"]]);
        let t = join_tree(&hg).expect("acyclic");
        assert!(t.verify(&hg));
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn cyclic_witness_is_sorted() {
        // A triangle behind an acyclic tail: the irreducible core must come
        // out in ascending edge order regardless of reduction order.
        let hg = Hypergraph::from_edges([
            vec!["t", "x"],
            vec!["z", "x"],
            vec!["x", "y"],
            vec!["y", "z"],
        ]);
        match gyo(&hg) {
            GyoOutcome::Cyclic(core) => {
                let mut sorted = core.clone();
                sorted.sort_unstable();
                assert_eq!(core, sorted);
                assert_eq!(core, vec![1, 2, 3]);
            }
            GyoOutcome::Acyclic(_) => panic!("triangle with a tail must be cyclic"),
        }
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let hg = Hypergraph::from_edges([
            vec!["a", "b"],
            vec!["b", "c"],
            vec!["c", "d"],
            vec!["d", "a"],
        ]);
        assert!(!is_acyclic(&hg));
    }

    #[test]
    fn empty_hypergraph_has_no_tree() {
        let hg = Hypergraph::new();
        assert!(join_tree(&hg).is_none());
    }

    #[test]
    fn hamiltonian_chain_query_is_acyclic_without_inequalities() {
        // The Section 5 Hamiltonian-path reduction's *relational* part:
        // E(x1,x2), E(x2,x3), ..., acyclic as a hypergraph.
        let mut hg = Hypergraph::new();
        for i in 0..6 {
            hg.add_edge([format!("x{i}"), format!("x{}", i + 1)]);
        }
        let t = join_tree(&hg).expect("chain is acyclic");
        assert!(t.verify(&hg));
    }
}
