//! Join trees.
//!
//! A *join tree* `T` for a hypergraph `H` (Section 5) has the hyperedges as
//! its nodes, and for every vertex `x`, the set of nodes whose edges contain
//! `x` induces a connected subtree `T_x`. The Theorem 2 algorithms do one
//! bottom-up and one top-down pass over such a tree.

use std::collections::BTreeSet;

use crate::hypergraph::Hypergraph;

/// A rooted join tree over the edges `0..n` of a hypergraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: usize,
}

impl JoinTree {
    /// Assemble a tree from parent pointers; exactly one node must have no
    /// parent (the root), and the parent relation must be acyclic and span
    /// all nodes.
    ///
    /// # Panics
    /// Panics when the parent vector does not describe a rooted tree; callers
    /// construct it from a GYO reduction, which guarantees this shape.
    pub fn from_parents(parent: Vec<Option<usize>>) -> Self {
        let n = parent.len();
        assert!(n > 0, "join tree needs at least one node");
        let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
        assert_eq!(roots.len(), 1, "exactly one root expected, got {roots:?}");
        let root = roots[0];
        let mut children = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        let t = JoinTree {
            parent,
            children,
            root,
        };
        // Reachability check: the parent pointers must form one tree.
        assert_eq!(t.bottom_up().len(), n, "parent pointers contain a cycle");
        t
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes (= hyperedges of the underlying hypergraph).
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `n`, or `None` for the root.
    pub fn parent(&self, n: usize) -> Option<usize> {
        self.parent[n]
    }

    /// Children of `n`.
    pub fn children(&self, n: usize) -> &[usize] {
        &self.children[n]
    }

    /// All nodes in *bottom-up* order: every node appears after all of its
    /// children (the root is last). This is the processing order of
    /// Algorithm 1 and of Step 2 of Algorithm 2.
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order = self.top_down();
        order.reverse();
        order
    }

    /// All nodes in *top-down* (preorder) order: every node appears before
    /// its children (the root is first). This is the processing order of
    /// Step 1 of Algorithm 2.
    pub fn top_down(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.parent.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in &self.children[n] {
                stack.push(c);
            }
        }
        order
    }

    /// The nodes of the subtree `T[n]` rooted at `n` (including `n`).
    pub fn subtree_nodes(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            out.push(m);
            stack.extend_from_slice(&self.children[m]);
        }
        out
    }

    /// `at(T[n])`: the set of hypergraph vertices appearing at nodes of the
    /// subtree rooted at `n` (the paper's attribute set of `T[j]`).
    pub fn subtree_vertices(&self, hg: &Hypergraph, n: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for m in self.subtree_nodes(n) {
            out.extend(hg.edge(m).iter().copied());
        }
        out
    }

    /// Check the join-tree property against `hg`: for every vertex, the nodes
    /// whose edges contain it form a connected subtree.
    pub fn verify(&self, hg: &Hypergraph) -> bool {
        if hg.num_edges() != self.num_nodes() {
            return false;
        }
        for v in 0..hg.num_vertices() {
            let holders: BTreeSet<usize> = hg
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.contains(&v))
                .map(|(i, _)| i)
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // Connectivity within `holders` under the tree adjacency.
            let start = *holders.iter().next().expect("nonempty");
            let mut seen = BTreeSet::from([start]);
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                let mut nbrs: Vec<usize> = self.children[n].clone();
                if let Some(p) = self.parent[n] {
                    nbrs.push(p);
                }
                for m in nbrs {
                    if holders.contains(&m) && seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
            if seen != holders {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_tree() -> JoinTree {
        // 0 -> 1 -> 2 (root 2)
        JoinTree::from_parents(vec![Some(1), Some(2), None])
    }

    #[test]
    fn orders_respect_parenthood() {
        let t = path_tree();
        assert_eq!(t.root(), 2);
        assert_eq!(t.top_down(), vec![2, 1, 0]);
        assert_eq!(t.bottom_up(), vec![0, 1, 2]);
    }

    #[test]
    fn subtree_queries() {
        let t = JoinTree::from_parents(vec![None, Some(0), Some(0), Some(1)]);
        let mut s = t.subtree_nodes(1);
        s.sort();
        assert_eq!(s, vec![1, 3]);
        assert_eq!(t.children(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn two_roots_rejected() {
        let _ = JoinTree::from_parents(vec![None, None]);
    }

    #[test]
    fn verify_accepts_path_join_tree() {
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["z", "w"]]);
        let t = path_tree();
        assert!(t.verify(&hg));
    }

    #[test]
    fn verify_rejects_disconnected_occurrence() {
        // vertex y occurs in nodes 0 and 2 but not 1 — not a join tree when
        // the tree is the path 0-1-2.
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["x", "z"], vec!["y", "z"]]);
        let t = path_tree();
        assert!(!t.verify(&hg));
    }

    #[test]
    fn subtree_vertices_accumulate() {
        let hg = Hypergraph::from_edges([vec!["x", "y"], vec!["y", "z"], vec!["z", "w"]]);
        let t = path_tree();
        let at = t.subtree_vertices(&hg, 1);
        let labels: Vec<&str> = at.iter().map(|&v| hg.label(v)).collect();
        assert_eq!(labels, vec!["x", "y", "z"]);
    }
}
