//! Service metrics: lock-free counters plus a log-scale latency histogram,
//! snapshotable as a plain struct and dumpable over the wire (`STATS`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts queries whose
/// latency in microseconds satisfies `2^i ≤ µs+1 < 2^(i+1)` (bucket 0 is
/// sub-microsecond). 40 buckets cover ~13 days.
const BUCKETS: usize = 40;

/// Number of hypertree-width buckets: bucket `i` counts queries evaluated
/// by the hypertree engine with decomposition width `i + 1`; the last bucket
/// collects widths ≥ [`WIDTH_BUCKETS`].
pub const WIDTH_BUCKETS: usize = 8;

/// A histogram of query latencies with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(latency: Duration) -> usize {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        ((64 - (micros + 1).leading_zeros() - 1) as usize).min(BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        self.buckets[Self::bucket_for(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the bucket counts.
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The upper bound (in µs) of bucket `i`, used to report percentiles.
fn bucket_upper_micros(i: usize) -> u64 {
    (1u64 << (i + 1)).saturating_sub(1)
}

/// Percentile from a bucket snapshot: the upper bound of the bucket holding
/// the `p`-quantile observation (0 when empty). Coarse by design — within a
/// factor of 2, which is what a power-of-two histogram can promise.
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
fn percentile(buckets: &[u64; BUCKETS], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * p).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper_micros(i);
        }
    }
    bucket_upper_micros(BUCKETS - 1)
}

/// Live counters for one service (all relaxed atomics; approximate
/// cross-counter consistency is fine for monitoring).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Queries answered successfully (from any cache level or evaluation).
    pub queries_served: AtomicU64,
    /// Jobs admitted to the worker queue.
    pub jobs_admitted: AtomicU64,
    /// Requests rejected by admission control (`Overloaded`).
    pub rejected_overload: AtomicU64,
    /// Evaluations that tripped a per-request resource limit.
    pub resource_exhausted: AtomicU64,
    /// Other evaluation/parse failures.
    pub errors: AtomicU64,
    /// Plan-cache hits / misses.
    pub plan_hits: AtomicU64,
    /// Plan-cache misses.
    pub plan_misses: AtomicU64,
    /// Result-cache hits.
    pub result_hits: AtomicU64,
    /// Result-cache misses.
    pub result_misses: AtomicU64,
    /// Databases loaded or reloaded.
    pub loads: AtomicU64,
    /// In-place database mutations.
    pub mutations: AtomicU64,
    /// Databases dropped from the catalog (`DROP`).
    pub drops: AtomicU64,
    /// Evaluations that took the intra-query parallel path.
    pub parallel_queries: AtomicU64,
    /// `@count` / `@count_by` requests answered successfully (also counted
    /// in [`ServiceMetrics::queries_served`]).
    pub count_queries: AtomicU64,
    /// Evaluations routed to the hypertree engine (cyclic queries of
    /// bounded width).
    pub hypertree_queries: AtomicU64,
    /// Per-width counts of hypertree evaluations: bucket `i` is width
    /// `i + 1`, last bucket is widths ≥ [`WIDTH_BUCKETS`].
    pub hypertree_width_counts: [AtomicU64; WIDTH_BUCKETS],
    /// Materialized views currently registered (a gauge: registration
    /// increments, deregistration/drop decrements).
    pub views_registered: AtomicU64,
    /// Live `SUBSCRIBE` streams (a gauge).
    pub subscriptions_active: AtomicU64,
    /// Delta frames pushed to subscribers (service lifetime).
    pub deltas_pushed: AtomicU64,
    /// Maintenance passes where a view's delta plan exhausted its budget
    /// (or otherwise failed) and fell back to a full recompute.
    pub ivm_maintain_fallbacks: AtomicU64,
    /// Queries answered by scanning/projecting a registered view's
    /// maintained relation instead of evaluating (`PQA801`/`PQA802`
    /// matches at query time).
    pub view_answered_queries: AtomicU64,
    /// Result-cache hits served under a semantic (equivalence-class core)
    /// key that differs from the query's literal canonical form — sharing
    /// only the `PQA803` re-keying makes possible.
    pub semantic_cache_hits: AtomicU64,
    /// End-to-end query latencies (successful queries only).
    pub latency: LatencyHistogram,
    /// End-to-end `@count` request latencies (successful only; these
    /// observations also land in [`ServiceMetrics::latency`]).
    pub count_latency: LatencyHistogram,
    /// Incremental-maintenance pass latencies (one observation per mutation
    /// batch that touched at least one view).
    pub ivm_maintain: LatencyHistogram,
}

impl ServiceMetrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement a gauge, saturating at zero (a mispaired decrement must
    /// not wrap a monitoring counter to 2^64).
    pub(crate) fn dec(counter: &AtomicU64) {
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Record one hypertree-engine evaluation of the given decomposition
    /// width (widths start at 1; 0 is clamped into the first bucket).
    pub(crate) fn record_hypertree_width(&self, width: usize) {
        Self::bump(&self.hypertree_queries);
        let i = width.clamp(1, WIDTH_BUCKETS) - 1;
        self.hypertree_width_counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Take a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets = self.latency.snapshot();
        let count_buckets = self.count_latency.snapshot();
        let ivm_buckets = self.ivm_maintain.snapshot();
        MetricsSnapshot {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            jobs_admitted: self.jobs_admitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            resource_exhausted: self.resource_exhausted.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            parallel_queries: self.parallel_queries.load(Ordering::Relaxed),
            count_queries: self.count_queries.load(Ordering::Relaxed),
            hypertree_queries: self.hypertree_queries.load(Ordering::Relaxed),
            hypertree_width_counts: std::array::from_fn(|i| {
                self.hypertree_width_counts[i].load(Ordering::Relaxed)
            }),
            views_registered: self.views_registered.load(Ordering::Relaxed),
            subscriptions_active: self.subscriptions_active.load(Ordering::Relaxed),
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            ivm_maintain_fallbacks: self.ivm_maintain_fallbacks.load(Ordering::Relaxed),
            view_answered_queries: self.view_answered_queries.load(Ordering::Relaxed),
            semantic_cache_hits: self.semantic_cache_hits.load(Ordering::Relaxed),
            exec_threads: 0,
            exec_tasks_run: 0,
            exec_peak_active: 0,
            wal_appends: 0,
            wal_bytes: 0,
            snapshots_taken: 0,
            recovery_replayed_records: 0,
            last_recovery_ms: 0,
            latency_p50_micros: percentile(&buckets, 0.50),
            latency_p99_micros: percentile(&buckets, 0.99),
            count_latency_p50_micros: percentile(&count_buckets, 0.50),
            count_latency_p99_micros: percentile(&count_buckets, 0.99),
            ivm_maintain_p50_micros: percentile(&ivm_buckets, 0.50),
            ivm_maintain_p99_micros: percentile(&ivm_buckets, 0.99),
        }
    }
}

/// A plain-struct snapshot of [`ServiceMetrics`] — what `STATS` dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Queries answered successfully.
    pub queries_served: u64,
    /// Jobs admitted to the worker queue.
    pub jobs_admitted: u64,
    /// Requests rejected by admission control.
    pub rejected_overload: u64,
    /// Evaluations that tripped a per-request resource limit.
    pub resource_exhausted: u64,
    /// Other evaluation/parse failures.
    pub errors: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Databases loaded or reloaded.
    pub loads: u64,
    /// In-place database mutations.
    pub mutations: u64,
    /// Databases dropped from the catalog.
    pub drops: u64,
    /// Evaluations that took the intra-query parallel path.
    pub parallel_queries: u64,
    /// `@count` / `@count_by` requests answered successfully.
    pub count_queries: u64,
    /// Evaluations routed to the hypertree engine.
    pub hypertree_queries: u64,
    /// Hypertree evaluations per decomposition width (bucket `i` is width
    /// `i + 1`; last bucket collects widths ≥ [`WIDTH_BUCKETS`]).
    pub hypertree_width_counts: [u64; WIDTH_BUCKETS],
    /// Materialized views currently registered.
    pub views_registered: u64,
    /// Live `SUBSCRIBE` streams.
    pub subscriptions_active: u64,
    /// Delta frames pushed to subscribers.
    pub deltas_pushed: u64,
    /// Maintenance passes that fell back to a full recompute.
    pub ivm_maintain_fallbacks: u64,
    /// Queries answered from a registered view's maintained relation.
    pub view_answered_queries: u64,
    /// Result-cache hits that only the semantic (equivalence-class core)
    /// re-keying made possible.
    pub semantic_cache_hits: u64,
    /// Intra-query exec-pool size (the `intra_query_threads` knob; filled
    /// in by [`crate::QueryService::stats`], 0 in a bare
    /// [`ServiceMetrics::snapshot`]).
    pub exec_threads: u64,
    /// Morsel/partition tasks the exec pool has run (service lifetime).
    pub exec_tasks_run: u64,
    /// Peak concurrently-active exec-pool workers observed.
    pub exec_peak_active: u64,
    /// WAL records appended (service lifetime; filled in by
    /// [`crate::QueryService::stats`] when durability is on, 0 otherwise).
    pub wal_appends: u64,
    /// Bytes appended to the WAL (service lifetime).
    pub wal_bytes: u64,
    /// Snapshots written (cadence-driven, `PERSIST`, and drain).
    pub snapshots_taken: u64,
    /// WAL records replayed by startup recovery.
    pub recovery_replayed_records: u64,
    /// Wall-clock time startup recovery took, in milliseconds.
    pub last_recovery_ms: u64,
    /// Median successful-query latency (µs, upper bucket bound).
    pub latency_p50_micros: u64,
    /// 99th-percentile successful-query latency (µs, upper bucket bound).
    pub latency_p99_micros: u64,
    /// Median successful `@count` request latency (µs, upper bucket bound).
    pub count_latency_p50_micros: u64,
    /// 99th-percentile successful `@count` request latency (µs).
    pub count_latency_p99_micros: u64,
    /// Median view-maintenance pass latency (µs, upper bucket bound).
    pub ivm_maintain_p50_micros: u64,
    /// 99th-percentile view-maintenance pass latency (µs).
    pub ivm_maintain_p99_micros: u64,
}

impl MetricsSnapshot {
    /// `key value` lines in a stable order (the wire `STATS` body).
    pub fn lines(&self) -> Vec<String> {
        vec![
            format!("queries_served {}", self.queries_served),
            format!("jobs_admitted {}", self.jobs_admitted),
            format!("rejected_overload {}", self.rejected_overload),
            format!("resource_exhausted {}", self.resource_exhausted),
            format!("errors {}", self.errors),
            format!("plan_hits {}", self.plan_hits),
            format!("plan_misses {}", self.plan_misses),
            format!("result_hits {}", self.result_hits),
            format!("result_misses {}", self.result_misses),
            format!("loads {}", self.loads),
            format!("mutations {}", self.mutations),
            format!("drops {}", self.drops),
            format!("parallel_queries {}", self.parallel_queries),
            format!("count_queries {}", self.count_queries),
            format!("hypertree_queries {}", self.hypertree_queries),
            format!(
                "hypertree_width_hist {}",
                self.hypertree_width_counts
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
            format!("views_registered {}", self.views_registered),
            format!("subscriptions_active {}", self.subscriptions_active),
            format!("deltas_pushed {}", self.deltas_pushed),
            format!("ivm_maintain_fallbacks {}", self.ivm_maintain_fallbacks),
            format!("view_answered_queries {}", self.view_answered_queries),
            format!("semantic_cache_hits {}", self.semantic_cache_hits),
            format!("exec_threads {}", self.exec_threads),
            format!("exec_tasks_run {}", self.exec_tasks_run),
            format!("exec_peak_active {}", self.exec_peak_active),
            format!("wal_appends {}", self.wal_appends),
            format!("wal_bytes {}", self.wal_bytes),
            format!("snapshots_taken {}", self.snapshots_taken),
            format!(
                "recovery_replayed_records {}",
                self.recovery_replayed_records
            ),
            format!("last_recovery_ms {}", self.last_recovery_ms),
            format!("latency_p50_micros {}", self.latency_p50_micros),
            format!("latency_p99_micros {}", self.latency_p99_micros),
            format!("count_latency_p50_micros {}", self.count_latency_p50_micros),
            format!("count_latency_p99_micros {}", self.count_latency_p99_micros),
            format!("ivm_maintain_p50_micros {}", self.ivm_maintain_p50_micros),
            format!("ivm_maintain_p99_micros {}", self.ivm_maintain_p99_micros),
        ]
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in self.lines() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_micros() {
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(0)), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(1)), 1);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(3)), 2);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(1022)), 9);
        assert_eq!(
            LatencyHistogram::bucket_for(Duration::from_micros(1023)),
            10
        );
        assert_eq!(
            LatencyHistogram::bucket_for(Duration::from_secs(1_000_000)),
            BUCKETS - 1
        );
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let h = LatencyHistogram::default();
        // 99 fast observations, one slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(100));
        let b = h.snapshot();
        let p50 = percentile(&b, 0.50);
        let p99 = percentile(&b, 0.99);
        assert!(p50 <= 15, "p50 {p50} should be in the fast bucket");
        assert!(p50 >= 10, "upper bucket bound is at least the observation");
        assert!(p99 <= 15, "99/100 observations are fast");
        assert!(percentile(&b, 1.0) >= 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(percentile(&h.snapshot(), 0.5), 0);
    }

    #[test]
    fn gauges_saturate_at_zero() {
        let m = ServiceMetrics::default();
        ServiceMetrics::bump(&m.subscriptions_active);
        ServiceMetrics::dec(&m.subscriptions_active);
        ServiceMetrics::dec(&m.subscriptions_active);
        assert_eq!(m.snapshot().subscriptions_active, 0);
    }

    #[test]
    fn maintenance_histogram_is_independent_of_query_latency() {
        let m = ServiceMetrics::default();
        m.latency.record(Duration::from_micros(10));
        m.ivm_maintain.record(Duration::from_millis(100));
        let s = m.snapshot();
        assert!(s.latency_p99_micros <= 15);
        assert!(s.ivm_maintain_p50_micros >= 100_000);
    }

    #[test]
    fn width_histogram_buckets_by_width() {
        let m = ServiceMetrics::default();
        m.record_hypertree_width(1);
        m.record_hypertree_width(2);
        m.record_hypertree_width(2);
        m.record_hypertree_width(3);
        m.record_hypertree_width(99); // clamps into the last bucket
        let s = m.snapshot();
        assert_eq!(s.hypertree_queries, 5);
        assert_eq!(s.hypertree_width_counts, [1, 2, 1, 0, 0, 0, 0, 1]);
        let text = s.to_string();
        assert!(text.contains("hypertree_queries 5"));
        assert!(text.contains("hypertree_width_hist 1 2 1 0 0 0 0 1"));
    }

    #[test]
    fn snapshot_is_plain_and_printable() {
        let m = ServiceMetrics::default();
        ServiceMetrics::bump(&m.queries_served);
        m.latency.record(Duration::from_micros(5));
        let s = m.snapshot();
        assert_eq!(s.queries_served, 1);
        let text = s.to_string();
        assert!(text.contains("queries_served 1"));
        assert_eq!(s.lines().len(), text.lines().count());
    }
}
