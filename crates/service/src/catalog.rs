//! The catalog: named databases behind a `RwLock`, with snapshot semantics.
//!
//! Databases are stored as `Arc<Database>`. A query takes a **snapshot** —
//! an `Arc` clone plus the identity pair `(generation, epoch)` — and then
//! evaluates entirely outside the catalog lock, so a long-running query
//! never blocks loads or mutations. Mutations go through
//! [`Catalog::update`], which clones-on-write (`Arc::make_mut`) only when a
//! snapshot is still alive.
//!
//! Cache identity is the pair of counters:
//!
//! * the **generation** is catalog-global and monotone, assigned anew on
//!   every load *and* every in-place update — it distinguishes two different
//!   databases loaded under the same name (whose own epochs could
//!   coincide);
//! * the **epoch** is the database's own mutation counter
//!   ([`pq_data::Database::epoch`]) — it distinguishes in-place states.
//!
//! A result cached under `(fingerprint, name, generation, epoch)` can
//! therefore never be served for different data.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use pq_data::Database;

use crate::durable::{Durability, SnapshotSummary};
use crate::error::{Result, ServiceError};
use crate::wal::WalOp;

/// An immutable snapshot of one catalog entry (see the module docs).
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    /// The database name the snapshot was taken under.
    pub name: String,
    /// Shared, immutable view of the data.
    pub db: Arc<Database>,
    /// Catalog-global load/update counter at snapshot time.
    pub generation: u64,
    /// The database's own mutation epoch at snapshot time.
    pub epoch: u64,
}

struct Entry {
    db: Arc<Database>,
    generation: u64,
}

/// A thread-safe catalog of named databases (see the module docs).
///
/// When a journal is attached ([`Catalog::attach_journal`]), every mutation
/// appends a WAL record **while still holding the write lock that assigned
/// its generation** — so the log order provably matches the catalog order;
/// there is no window for two mutations to commit one way and log the
/// other. When the journal's snapshot cadence comes due, the snapshot is
/// also taken under that same lock (the catalog is quiescent by
/// construction).
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<BTreeMap<String, Entry>>,
    generations: AtomicU64,
    journal: OnceLock<Arc<Durability>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Attach the durability journal. Call once, *after* recovered
    /// databases have been installed (recovery inserts must not re-log
    /// themselves) and before the catalog serves mutations.
    pub fn attach_journal(&self, journal: Arc<Durability>) {
        self.journal
            .set(journal)
            .expect("journal attached more than once");
    }

    /// Append `op` to the journal (when attached) and snapshot if the
    /// cadence is due. Called with the entries map borrowed — i.e. under
    /// the write lock — which is what pins log order to catalog order.
    fn journal_append(&self, entries: &BTreeMap<String, Entry>, op: &WalOp<'_>) -> Result<()> {
        let Some(journal) = self.journal.get() else {
            return Ok(());
        };
        let due = journal.append(op).map_err(ServiceError::Durability)?;
        if due {
            Self::snapshot_entries(journal, entries)?;
        }
        Ok(())
    }

    fn snapshot_entries(
        journal: &Durability,
        entries: &BTreeMap<String, Entry>,
    ) -> Result<SnapshotSummary> {
        let state: Vec<(&str, &Database)> =
            entries.iter().map(|(n, e)| (n.as_str(), &*e.db)).collect();
        journal.snapshot(&state).map_err(ServiceError::Durability)
    }

    fn next_generation(&self) -> u64 {
        self.generations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Insert or replace the database under `name`. Returns the new
    /// generation.
    ///
    /// # Errors
    /// [`ServiceError::Durability`] when the journal append fails (the
    /// in-memory insert has still happened).
    pub fn insert(&self, name: impl Into<String>, db: Database) -> Result<u64> {
        let name = name.into();
        let mut entries = self.entries.write().expect("catalog poisoned");
        // Allocate the generation under the write lock (as `update` does):
        // racing inserts would otherwise be able to install them out of
        // order, breaking per-name generation monotonicity.
        let generation = self.next_generation();
        let db = Arc::new(db);
        entries.insert(
            name.clone(),
            Entry {
                db: Arc::clone(&db),
                generation,
            },
        );
        self.journal_append(
            &entries,
            &WalOp::Install {
                name: &name,
                db: &db,
            },
        )?;
        Ok(generation)
    }

    /// Remove the database under `name`; true when it existed. Journals a
    /// tombstone so recovery does not resurrect the database.
    ///
    /// # Errors
    /// [`ServiceError::Durability`] when the journal append fails (the
    /// in-memory removal has still happened).
    pub fn remove(&self, name: &str) -> Result<bool> {
        let mut entries = self.entries.write().expect("catalog poisoned");
        let existed = entries.remove(name).is_some();
        if existed {
            self.journal_append(&entries, &WalOp::Remove { name })?;
        }
        Ok(existed)
    }

    /// Snapshot the whole catalog to stable storage now and rotate the WAL
    /// (the wire `PERSIST` verb, also called on graceful drain).
    ///
    /// # Errors
    /// [`ServiceError::Durability`] when no journal is attached or the
    /// snapshot I/O fails.
    pub fn persist(&self) -> Result<SnapshotSummary> {
        let Some(journal) = self.journal.get() else {
            return Err(ServiceError::Durability(
                "no durability layer configured (start the service with a \
                 DurabilityConfig to enable PERSIST)"
                    .into(),
            ));
        };
        // The read lock excludes writers: no record can land between the
        // state capture and the WAL rotation inside `snapshot`.
        let entries = self.entries.read().expect("catalog poisoned");
        Self::snapshot_entries(journal, &entries)
    }

    /// Take a snapshot of `name` for lock-free evaluation.
    ///
    /// # Errors
    /// [`ServiceError::UnknownDatabase`] when absent.
    pub fn snapshot(&self, name: &str) -> Result<DbSnapshot> {
        let entries = self.entries.read().expect("catalog poisoned");
        let entry = entries
            .get(name)
            .ok_or_else(|| ServiceError::UnknownDatabase(name.to_string()))?;
        Ok(DbSnapshot {
            name: name.to_string(),
            db: Arc::clone(&entry.db),
            generation: entry.generation,
            epoch: entry.db.epoch(),
        })
    }

    /// Mutate the database under `name` in place, under the write lock.
    /// Copies-on-write when snapshots are still alive, so readers keep their
    /// consistent view.
    ///
    /// The **generation is kept** when the per-relation epoch vector moved
    /// monotonically — every counter component-wise ≥ its pre-update value
    /// and the global epoch strictly greater. Within one generation the
    /// epoch vector then never repeats (each update strictly grows its sum),
    /// so cache keys that fingerprint the mentioned relations' epochs stay
    /// sound *and* entries for untouched relations stay valid across the
    /// mutation. A closure that did not advance the epochs — a wholesale
    /// `*db = other` replacement (counters reset) or a content no-op — gets
    /// a fresh generation instead, which is always sound and only costs
    /// cache misses.
    ///
    /// # Errors
    /// [`ServiceError::UnknownDatabase`] when absent;
    /// [`ServiceError::Durability`] when the journal append fails (the
    /// in-memory mutation has still happened).
    pub fn update<R>(&self, name: &str, f: impl FnOnce(&mut Database) -> R) -> Result<R> {
        let mut entries = self.entries.write().expect("catalog poisoned");
        let (out, db) = {
            let entry = entries
                .get_mut(name)
                .ok_or_else(|| ServiceError::UnknownDatabase(name.to_string()))?;
            let before = entry.db.relation_epochs().clone();
            let before_epoch = entry.db.epoch();
            let out = f(Arc::make_mut(&mut entry.db));
            let monotone = entry.db.epoch() > before_epoch
                && before
                    .iter()
                    .all(|(rel, &e)| entry.db.relation_epoch(rel) >= e);
            if !monotone {
                entry.generation = self.next_generation();
            }
            (out, Arc::clone(&entry.db))
        };
        // The record carries the post-state, not the closure: replay never
        // needs user code, and re-applying a record is idempotent.
        self.journal_append(&entries, &WalOp::Update { name, db: &db })?;
        Ok(out)
    }

    /// Names currently in the catalog, sorted.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.read().expect("catalog poisoned");
        entries.keys().cloned().collect()
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog poisoned").len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;

    fn small_db(n: i64) -> Database {
        let mut db = Database::new();
        db.add_table("R", ["a"], (0..n).map(|i| tuple![i])).unwrap();
        db
    }

    #[test]
    fn snapshots_are_stable_across_updates() {
        let cat = Catalog::new();
        cat.insert("d", small_db(3)).unwrap();
        let before = cat.snapshot("d").unwrap();
        cat.update("d", |db| {
            db.relation_mut("R").unwrap().insert(tuple![99]).unwrap();
        })
        .unwrap();
        let after = cat.snapshot("d").unwrap();
        // The old snapshot still sees the old data (copy-on-write).
        assert_eq!(before.db.relation("R").unwrap().len(), 3);
        assert_eq!(after.db.relation("R").unwrap().len(), 4);
        // An in-place mutation advances the epochs monotonically, so the
        // generation is kept — per-relation epoch fingerprints alone
        // distinguish the states.
        assert_eq!(after.generation, before.generation);
        assert!(after.epoch > before.epoch);
    }

    #[test]
    fn non_monotone_updates_get_a_fresh_generation() {
        let cat = Catalog::new();
        cat.insert("d", small_db(3)).unwrap();
        let before = cat.snapshot("d").unwrap();
        // A wholesale replacement resets the epoch counters: the fresh
        // database's vector coincides with the old one, so only a new
        // generation can keep cache keys from colliding.
        cat.update("d", |db| *db = small_db(1)).unwrap();
        let replaced = cat.snapshot("d").unwrap();
        assert_eq!(replaced.epoch, before.epoch, "vectors coincide");
        assert!(replaced.generation > before.generation);
        // A content no-op (epoch unchanged) also bumps — conservative but
        // sound.
        cat.update("d", |_| ()).unwrap();
        let noop = cat.snapshot("d").unwrap();
        assert!(noop.generation > replaced.generation);
    }

    #[test]
    fn reload_under_the_same_name_changes_the_generation() {
        let cat = Catalog::new();
        cat.insert("d", small_db(3)).unwrap();
        let a = cat.snapshot("d").unwrap();
        // A different database whose own epoch happens to match.
        cat.insert("d", small_db(5)).unwrap();
        let b = cat.snapshot("d").unwrap();
        assert_eq!(a.epoch, b.epoch, "epochs alone cannot distinguish these");
        assert_ne!(a.generation, b.generation, "generations must");
    }

    #[test]
    fn racing_inserts_keep_per_name_generations_monotone() {
        // The installed entry must carry the *latest* generation handed out
        // for its name — i.e. generation order matches installation order.
        let cat = Arc::new(Catalog::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| cat.insert("d", small_db(1)).unwrap())
                        .max()
                        .unwrap()
                })
            })
            .collect();
        let max_issued = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .max()
            .unwrap();
        assert_eq!(cat.snapshot("d").unwrap().generation, max_issued);
    }

    #[test]
    fn unknown_names_error() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.snapshot("nope"),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            cat.update("nope", |_| ()),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(!cat.remove("nope").unwrap());
    }

    #[test]
    fn names_and_len() {
        let cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert("b", small_db(1)).unwrap();
        cat.insert("a", small_db(1)).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cat.len(), 2);
        assert!(cat.remove("a").unwrap());
        assert_eq!(cat.len(), 1);
    }
}
