//! The write-ahead log: a length-prefixed, CRC-checksummed, append-only
//! record stream of catalog mutations.
//!
//! # File layout
//!
//! ```text
//! [8-byte magic "PQWAL\0\0\1"]
//! [record]*
//!
//! record := [len: u32 LE] [crc32: u32 LE over payload] [payload: len bytes]
//! payload := [kind: u8] [seq: u64 LE] [body]
//! kind 1 (install) | 2 (update) := [name: str] [database blob]
//! kind 3 (remove)               := [name: str]
//! str  := [len: u32 LE] [UTF-8 bytes]
//! ```
//!
//! The database blob is a self-contained binary encoding (relation headers,
//! attribute names, typed values) — **not** the loader text format, which
//! cannot round-trip strings containing commas. Mutations are logged as
//! *post-states* (the full database after the mutation), so replay is
//! convergent: replaying any suffix of the log on top of any earlier state
//! ends in the same final catalog. That makes the snapshot/rotation crash
//! window safe without two-phase bookkeeping — see [`crate::durable`].
//!
//! # Recovery semantics
//!
//! [`replay_wal`] accepts exactly the damage a crash mid-append can cause
//! and nothing more:
//!
//! * a **truncated final record** (short header or short payload at EOF) is
//!   tolerated — its bytes are reported as `torn_tail_bytes` and discarded;
//! * a **corrupt interior record** (complete length but failing CRC, or an
//!   undecodable payload) is rejected with a typed
//!   [`RecoveryError::CorruptRecord`] carrying the file offset — silent
//!   skipping could resurrect dropped data or hide bit rot.
//!
//! # Crash-fault injection
//!
//! With the `crash-injection` feature (test-only, in the spirit of the
//! PR 1 governor's fault points), `Wal::kill_at_offset` arms a byte
//! offset at which the writer dies mid-write: bytes up to the offset are
//! written, the rest are dropped on the floor, and every later append
//! fails. Recovery can therefore be exercised against every torn-write
//! position of a real append sequence.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use pq_data::{Database, Relation, Tuple, Value};

/// Magic bytes opening every WAL file (version 1).
pub const WAL_MAGIC: &[u8; 8] = b"PQWAL\x00\x00\x01";

/// Record kind tags (the first payload byte).
const KIND_INSTALL: u8 = 1;
const KIND_UPDATE: u8 = 2;
const KIND_REMOVE: u8 = 3;

/// Upper bound on a single record payload, enforced on **both** sides of
/// the log: replay treats a length prefix beyond this as corruption rather
/// than attempting the allocation, and [`Wal::append`] rejects an
/// oversized payload up front — otherwise the service could acknowledge a
/// mutation it can never recover from (every restart would fail with
/// `CorruptRecord`).
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// Append-side half of the `MAX_RECORD` bound: reject a payload the replay
/// side would refuse, before anything touches the file. Also covers the
/// 4 GiB length-prefix overflow (`u32`) without panicking.
fn check_payload_len(len: usize) -> io::Result<()> {
    if u64::try_from(len).unwrap_or(u64::MAX) > u64::from(MAX_RECORD) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "WAL record payload is {len} bytes, above the {MAX_RECORD}-byte limit; \
                 refusing to write a record recovery would reject as corrupt"
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------- crc32 --

/// IEEE CRC-32 lookup table, built at compile time (std-only; no crc crate).
static CRC_TABLE: [u32; 256] = crc32_table();

#[allow(clippy::cast_possible_truncation)] // i < 256 fits any integer type
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ------------------------------------------------------ fsync policy ----

/// When the WAL writer calls `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: a mutation acknowledged to the client is
    /// on stable storage. Strongest guarantee, slowest writes.
    Always,
    /// `fsync` at most once per interval: a crash loses at most the last
    /// interval's worth of acknowledged mutations.
    Interval(Duration),
    /// Never `fsync` on the append path (the OS flushes when it pleases);
    /// snapshots and rotations still sync. A kernel panic or power cut can
    /// lose recent acknowledged mutations — a plain process `kill -9`
    /// cannot, because the bytes are already in the page cache.
    Never,
}

impl FsyncPolicy {
    /// Parse the operator spelling used by `examples/serve.rs` and CI:
    /// `always`, `never`, or `interval:<millis>`.
    ///
    /// # Errors
    /// A human-readable message for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval `{ms}` (want millis)")),
                None => Err(format!(
                    "unknown fsync policy `{other}` (want always | never | interval:<ms>)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

// ------------------------------------------------------- record types ---

/// A catalog mutation to append, borrowing the caller's data.
#[derive(Debug, Clone, Copy)]
pub enum WalOp<'a> {
    /// A database was installed (loaded or replaced) under `name`.
    Install {
        /// Catalog name.
        name: &'a str,
        /// The installed database (logged whole).
        db: &'a Database,
    },
    /// The database under `name` was mutated in place; `db` is the
    /// **post-state** (state logging, not operation logging — replay never
    /// needs the mutation closure).
    Update {
        /// Catalog name.
        name: &'a str,
        /// The database after the mutation.
        db: &'a Database,
    },
    /// The database under `name` was dropped (a tombstone: recovery must
    /// not resurrect it).
    Remove {
        /// Catalog name.
        name: &'a str,
    },
}

/// An owned, decoded WAL record, in replay form.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayOp {
    /// Install (or replace) `db` under `name`.
    Install {
        /// Catalog name.
        name: String,
        /// The logged database state.
        db: Database,
    },
    /// In-place mutation post-state: install `db` under `name`.
    Update {
        /// Catalog name.
        name: String,
        /// The logged post-state.
        db: Database,
    },
    /// Tombstone: remove `name`.
    Remove {
        /// Catalog name.
        name: String,
    },
}

/// What [`replay_wal`] found in a log file.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Decoded records in file order, each with its sequence number.
    pub ops: Vec<(u64, ReplayOp)>,
    /// Bytes of a truncated final record (crash mid-append) that were
    /// tolerated and discarded; 0 for a cleanly closed log.
    pub torn_tail_bytes: u64,
}

/// Typed recovery failures. Torn final records are *not* errors (see the
/// module docs); everything here means the on-disk state cannot be trusted
/// and the operator must intervene.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// An I/O failure reading a durability file.
    Io {
        /// The file involved.
        path: String,
        /// The rendered `io::Error`.
        detail: String,
    },
    /// A durability file does not start with its magic bytes — it is not
    /// ours, or belongs to an incompatible version.
    BadMagic {
        /// The file involved.
        path: String,
    },
    /// The snapshot file is present but fails its checksum or decode.
    CorruptSnapshot {
        /// What failed.
        detail: String,
    },
    /// A complete interior WAL record fails its CRC or cannot be decoded.
    CorruptRecord {
        /// Byte offset of the record's length prefix in the file.
        offset: u64,
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io { path, detail } => write!(f, "recovery I/O on `{path}`: {detail}"),
            RecoveryError::BadMagic { path } => {
                write!(f, "`{path}` is not a pq durability file (bad magic)")
            }
            RecoveryError::CorruptSnapshot { detail } => write!(f, "corrupt snapshot: {detail}"),
            RecoveryError::CorruptRecord { offset, detail } => {
                write!(f, "corrupt WAL record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

pub(crate) fn io_err(path: &Path, e: &io::Error) -> RecoveryError {
    RecoveryError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

// ------------------------------------------------- binary (de)coding ----

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string length fits u32"));
    buf.extend_from_slice(s.as_bytes());
}

/// Append the self-contained binary encoding of `db` to `buf`.
pub(crate) fn encode_database(buf: &mut Vec<u8>, db: &Database) {
    put_u32(
        buf,
        u32::try_from(db.num_relations()).expect("relation count fits u32"),
    );
    for (name, rel) in db.iter() {
        put_str(buf, name);
        put_u32(buf, u32::try_from(rel.arity()).expect("arity fits u32"));
        for attr in rel.attrs() {
            put_str(buf, attr);
        }
        put_u64(buf, rel.len() as u64);
        for t in rel {
            for v in t {
                match v {
                    Value::Int(i) => {
                        buf.push(0);
                        buf.extend_from_slice(&i.to_le_bytes());
                    }
                    Value::Str(s) => {
                        buf.push(1);
                        put_str(buf, s);
                    }
                }
            }
        }
    }
}

/// A bounds-checked reader over a byte slice; every decode failure is a
/// plain message the caller wraps in a typed [`RecoveryError`].
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("unexpected end of payload (wanted {n} more bytes)"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn take_str(&mut self) -> Result<&'a str, String> {
        let len = self.take_u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }
}

/// Decode one database blob.
pub(crate) fn decode_database(cur: &mut Cursor<'_>) -> Result<Database, String> {
    let mut db = Database::new();
    let relations = cur.take_u32()?;
    for _ in 0..relations {
        let name = cur.take_str()?.to_string();
        let arity = cur.take_u32()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(cur.take_str()?.to_string());
        }
        let mut rel = Relation::new(attrs).map_err(|e| format!("bad relation header: {e}"))?;
        let tuples = cur.take_u64()?;
        for _ in 0..tuples {
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(match cur.take_u8()? {
                    0 => Value::Int(cur.take_i64()?),
                    1 => Value::str(cur.take_str()?),
                    other => return Err(format!("unknown value tag {other}")),
                });
            }
            rel.insert(Tuple::new(values))
                .map_err(|e| format!("bad tuple: {e}"))?;
        }
        db.add_relation(name, rel)
            .map_err(|e| format!("duplicate relation: {e}"))?;
    }
    Ok(db)
}

fn encode_payload(seq: u64, op: &WalOp<'_>) -> Vec<u8> {
    let mut buf = Vec::new();
    let (kind, name) = match op {
        WalOp::Install { name, .. } => (KIND_INSTALL, *name),
        WalOp::Update { name, .. } => (KIND_UPDATE, *name),
        WalOp::Remove { name } => (KIND_REMOVE, *name),
    };
    buf.push(kind);
    put_u64(&mut buf, seq);
    put_str(&mut buf, name);
    match op {
        WalOp::Install { db, .. } | WalOp::Update { db, .. } => encode_database(&mut buf, db),
        WalOp::Remove { .. } => {}
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Result<(u64, ReplayOp), String> {
    let mut cur = Cursor::new(payload);
    let kind = cur.take_u8()?;
    let seq = cur.take_u64()?;
    let name = cur.take_str()?.to_string();
    let op = match kind {
        KIND_INSTALL => ReplayOp::Install {
            name,
            db: decode_database(&mut cur)?,
        },
        KIND_UPDATE => ReplayOp::Update {
            name,
            db: decode_database(&mut cur)?,
        },
        KIND_REMOVE => ReplayOp::Remove { name },
        other => return Err(format!("unknown record kind {other}")),
    };
    if !cur.is_empty() {
        return Err("trailing bytes after record body".to_string());
    }
    Ok((seq, op))
}

// ------------------------------------------------------------ writer ----

/// The append-side of the log: a single-writer handle (callers serialize
/// behind the catalog write lock, so log order provably matches catalog
/// order — see [`crate::catalog`]).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    last_sync: Instant,
    /// Current file length (= offset of the next byte written).
    written: u64,
    /// Set once an injected crash (or a real I/O failure) has torn the log;
    /// every later append fails fast instead of writing after a hole.
    dead: bool,
    #[cfg(feature = "crash-injection")]
    kill_at: Option<u64>,
}

impl Wal {
    /// Create (truncating) the log at `path` and write the magic header.
    ///
    /// # Errors
    /// Propagates file-creation and write failures.
    pub fn create(path: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path,
            fsync,
            last_sync: Instant::now(),
            written: WAL_MAGIC.len() as u64,
            dead: false,
            #[cfg(feature = "crash-injection")]
            kill_at: None,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.written
    }

    /// Arm an injected crash: the writer will die after the file reaches
    /// `offset` bytes, leaving a torn record behind (test-only; see the
    /// module docs).
    #[cfg(feature = "crash-injection")]
    pub fn kill_at_offset(&mut self, offset: u64) {
        self.kill_at = Some(offset);
    }

    /// Write `buf`, honoring an armed injected crash: bytes up to the kill
    /// offset land in the file, the rest never do, and the writer is dead
    /// afterwards.
    fn write_torn_aware(&mut self, buf: &[u8]) -> io::Result<()> {
        #[cfg(feature = "crash-injection")]
        if let Some(kill) = self.kill_at {
            let end = self.written + buf.len() as u64;
            if end > kill {
                let keep = usize::try_from(kill.saturating_sub(self.written)).unwrap_or(0);
                self.file.write_all(&buf[..keep])?;
                let _ = self.file.sync_data();
                self.written += keep as u64;
                self.dead = true;
                return Err(io::Error::other("injected WAL crash"));
            }
        }
        self.file.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(())
    }

    /// Append one record and apply the fsync policy. Returns the bytes
    /// appended (header + payload).
    ///
    /// # Errors
    /// A payload larger than `MAX_RECORD` (256 MiB) fails with
    /// `InvalidInput` *before* anything reaches the file — the writer stays
    /// alive and later appends still work. Write **and sync** failures
    /// (including an injected crash) kill the writer: bytes the caller is
    /// being told failed may already be in the log, so every later append
    /// fails fast instead of extending an untrusted tail.
    pub fn append(&mut self, seq: u64, op: &WalOp<'_>) -> io::Result<u64> {
        if self.dead {
            return Err(io::Error::other("WAL writer is dead (earlier torn write)"));
        }
        let payload = encode_payload(seq, op);
        check_payload_len(payload.len())?;
        let mut record = Vec::with_capacity(payload.len() + 8);
        put_u32(
            &mut record,
            u32::try_from(payload.len()).expect("checked against MAX_RECORD"),
        );
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        let res = self.write_torn_aware(&record);
        if res.is_err() {
            self.dead = true;
        }
        res?;
        let synced = match self.fsync {
            FsyncPolicy::Always => self.file.sync_data(),
            FsyncPolicy::Interval(d) => {
                if self.last_sync.elapsed() >= d {
                    let r = self.file.sync_data();
                    if r.is_ok() {
                        self.last_sync = Instant::now();
                    }
                    r
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        };
        if let Err(e) = synced {
            // The record bytes are already in the file, so a mutation the
            // caller will report as a durability failure could still be
            // resurrected by recovery. Dying here keeps the log
            // prefix-consistent with what clients were told.
            self.dead = true;
            return Err(e);
        }
        Ok(record.len() as u64)
    }

    /// Force an `fsync` now (used on snapshot boundaries and drain).
    ///
    /// # Errors
    /// Propagates the sync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

// ------------------------------------------------------------ replay ----

/// Read and decode the log at `path` (see the module docs for exactly what
/// damage is tolerated vs. rejected). A missing file replays as empty.
///
/// # Errors
/// [`RecoveryError::Io`] on read failures, [`RecoveryError::BadMagic`] when
/// the header is wrong, [`RecoveryError::CorruptRecord`] for interior
/// corruption.
pub fn replay_wal(path: &Path) -> Result<Replay, RecoveryError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| io_err(path, &e))?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(io_err(path, &e)),
    }
    if bytes.len() < WAL_MAGIC.len() {
        // Crash during log creation: the magic itself is torn.
        return Ok(Replay {
            ops: Vec::new(),
            torn_tail_bytes: bytes.len() as u64,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(RecoveryError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let mut ops = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // Torn header at EOF.
            return Ok(Replay {
                ops,
                torn_tail_bytes: remaining as u64,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            return Err(RecoveryError::CorruptRecord {
                offset: pos as u64,
                detail: format!("implausible record length {len}"),
            });
        }
        let len = len as usize;
        if remaining - 8 < len {
            // Torn payload at EOF.
            return Ok(Replay {
                ops,
                torn_tail_bytes: remaining as u64,
            });
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return Err(RecoveryError::CorruptRecord {
                offset: pos as u64,
                detail: "CRC mismatch".to_string(),
            });
        }
        let (seq, op) = decode_payload(payload).map_err(|detail| RecoveryError::CorruptRecord {
            offset: pos as u64,
            detail,
        })?;
        ops.push((seq, op));
        pos += 8 + len;
    }
    Ok(Replay {
        ops,
        torn_tail_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            "R",
            ["a", "b"],
            [tuple![1, "x"], tuple![2, "has, comma"], tuple![3, ""]],
        )
        .unwrap();
        db.add_table("S", ["v"], [tuple!["99"], tuple![-7]])
            .unwrap();
        db
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn database_codec_round_trips_losslessly() {
        let db = sample_db();
        let mut buf = Vec::new();
        encode_database(&mut buf, &db);
        let decoded = decode_database(&mut Cursor::new(&buf)).unwrap();
        // Semantic equality (epoch excluded) plus exact header order.
        assert_eq!(db, decoded);
        for (name, rel) in db.iter() {
            let d = decoded.relation(name).unwrap();
            assert_eq!(rel.attrs(), d.attrs());
            assert_eq!(rel.tuples(), d.tuples(), "insertion order preserved");
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("pq_wal_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.wal");
        let db = sample_db();
        let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(1, &WalOp::Install { name: "d", db: &db })
            .unwrap();
        wal.append(2, &WalOp::Update { name: "d", db: &db })
            .unwrap();
        wal.append(3, &WalOp::Remove { name: "d" }).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.torn_tail_bytes, 0);
        let seqs: Vec<u64> = replay.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, [1, 2, 3]);
        assert!(
            matches!(&replay.ops[0].1, ReplayOp::Install { name, db: d } if name == "d" && *d == db)
        );
        assert!(matches!(&replay.ops[2].1, ReplayOp::Remove { name } if name == "d"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_offset_is_a_tolerated_torn_tail() {
        let dir = std::env::temp_dir().join(format!("pq_wal_trunc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let db = sample_db();
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        wal.append(1, &WalOp::Install { name: "d", db: &db })
            .unwrap();
        let keep = wal.len_bytes();
        wal.append(2, &WalOp::Remove { name: "d" }).unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(wal);
        // Cut the file everywhere inside the final record: recovery must
        // keep record 1 and report the tail as torn — never error, never
        // resurrect record 2.
        for cut in keep..full.len() as u64 {
            std::fs::write(&path, &full[..usize::try_from(cut).unwrap()]).unwrap();
            let replay = replay_wal(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(replay.ops.len(), 1, "cut at {cut}");
            assert_eq!(replay.torn_tail_bytes, cut - keep, "cut at {cut}");
        }
        // Cutting inside the *first* record leaves an empty, torn log.
        for cut in WAL_MAGIC.len() as u64..keep {
            std::fs::write(&path, &full[..usize::try_from(cut).unwrap()]).unwrap();
            let replay = replay_wal(&path).unwrap();
            assert!(replay.ops.is_empty(), "cut at {cut}");
        }
        // Cutting inside the magic is a torn creation.
        std::fs::write(&path, &full[..3]).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert!(replay.ops.is_empty());
        assert_eq!(replay.torn_tail_bytes, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_payloads_are_rejected_at_append_time() {
        // Guard boundaries: the limit itself is fine, one byte over is not,
        // and a payload beyond the u32 length prefix errors instead of
        // panicking.
        assert!(check_payload_len(MAX_RECORD as usize).is_ok());
        assert_eq!(
            check_payload_len(MAX_RECORD as usize + 1)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(check_payload_len(u32::MAX as usize + 1).is_err());

        // The real append path: a database whose encoding exceeds the limit
        // is refused before anything touches the file, the writer stays
        // alive, and the log replays cleanly without the oversized record.
        let dir = std::env::temp_dir().join(format!("pq_wal_big_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.wal");
        let huge = "x".repeat(MAX_RECORD as usize + 1);
        let mut big = Database::new();
        let mut rel = Relation::new(vec!["a".to_string()]).unwrap();
        rel.insert(Tuple::new(vec![Value::str(huge.as_str())]))
            .unwrap();
        drop(huge);
        big.add_relation("R".to_string(), rel).unwrap();
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        let before = wal.len_bytes();
        let err = wal
            .append(
                1,
                &WalOp::Install {
                    name: "big",
                    db: &big,
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(wal.len_bytes(), before, "nothing reached the file");
        drop(big);
        let small = sample_db();
        wal.append(
            2,
            &WalOp::Install {
                name: "small",
                db: &small,
            },
        )
        .unwrap();
        drop(wal);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.torn_tail_bytes, 0);
        assert_eq!(replay.ops.len(), 1, "only the in-bounds record survives");
        assert_eq!(replay.ops[0].0, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("pq_wal_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.wal");
        let db = sample_db();
        let mut wal = Wal::create(&path, FsyncPolicy::Never).unwrap();
        wal.append(1, &WalOp::Install { name: "d", db: &db })
            .unwrap();
        wal.append(2, &WalOp::Remove { name: "d" }).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the *first* record.
        let victim = WAL_MAGIC.len() + 8 + 2;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match replay_wal(&path) {
            Err(RecoveryError::CorruptRecord { offset, detail }) => {
                assert_eq!(offset, WAL_MAGIC.len() as u64);
                assert!(detail.contains("CRC"), "{detail}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_rejected_by_magic() {
        let dir = std::env::temp_dir().join(format!("pq_wal_magic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.wal");
        std::fs::write(&path, b"definitely not a WAL file").unwrap();
        assert!(matches!(
            replay_wal(&path),
            Err(RecoveryError::BadMagic { .. })
        ));
        // A missing file replays as empty (fresh deployment).
        assert!(replay_wal(&dir.join("missing.wal")).unwrap().ops.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_the_operator_spellings() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(250)).to_string(),
            "interval:250"
        );
    }
}
