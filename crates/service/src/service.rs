//! The embeddable, thread-safe query service.
//!
//! One [`QueryService`] owns a [`Catalog`] of named databases, a two-level
//! cache, and a fixed pool of worker threads behind a **bounded** job queue:
//!
//! * **Plan cache** (level 1): canonical query form
//!   ([`pq_query::canonical_form`], computed from the parsed AST — so it is
//!   whitespace-safe even inside string literals and alpha-renaming-safe) →
//!   classification + committed [`Plan`]. Parsing runs per request, but all
//!   the paper's expensive query-only preprocessing — classification per
//!   Theorem 1/Fig. 1, GYO/join-tree work, color-coding hash-family choice
//!   (Theorem 2) — is paid once per distinct query, not once per request.
//!   This is exactly the preprocessing/evaluation cost split the hypertree
//!   literature treats as decisive.
//! * **Result cache** (level 2): `(canonical query form, database name,
//!   generation, mentioned-relations epoch fingerprint)` → answer relation.
//!   The key embeds the full canonical form (not just its 64-bit
//!   fingerprint, so a hash collision can never cross-serve answers), the
//!   catalog generation (see [`crate::catalog`]), and an FNV-1a fingerprint
//!   of the per-relation epochs of exactly the base relations the plan
//!   reads ([`Plan::mentioned_relations`]). A mutation can therefore never
//!   serve a stale answer — and a mutation to a relation the query never
//!   touches does not invalidate its entry at all.
//!
//! **Incremental views** ([`pq_ivm`]): [`QueryService::subscribe`]
//! registers a materialized view and returns a live delta stream. The
//! row-level mutation verbs ([`QueryService::insert_rows`] /
//! [`QueryService::delete_rows`]) run every affected view's maintenance
//! plan under the service's governor limits (falling back to a full
//! recompute on budget exhaustion), push signed answer deltas to
//! subscribers, and **patch the result cache in place** — the maintained
//! answer is installed under the post-mutation key, so the next `QUERY`
//! for a subscribed query is a result-cache hit without re-evaluating.
//!
//! **Admission control**: evaluation jobs go through a bounded queue to a
//! fixed worker pool. When the queue is full the request is rejected
//! *immediately* with [`ServiceError::Overloaded`] — structured
//! backpressure instead of unbounded queueing. Result-cache hits are served
//! on the caller's thread and bypass admission entirely (a lookup needs no
//! worker). Every admitted job runs under an [`ExecutionContext`] whose
//! deadline/budget come from per-request [`RequestLimits`] (falling back to
//! service defaults) and whose cancellation token trips on
//! [`QueryService::shutdown`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pq_core::hypergraph::HypertreeDecomposition;
use pq_core::{
    count_relation, plan, plan_count, view_scan, CountChoice, CountPlan, EngineChoice, Plan,
    PlannerOptions,
};
use pq_count::QueryCount;
use pq_data::{loader, DataError, Database, Relation, Tuple};
use pq_engine::governor::{CancellationToken, ExecutionContext};
use pq_exec::Pool;
use pq_ivm::{MaintainOutcome, RelationDelta, ViewQuery, ViewRegistry};
use pq_query::{canonical_form, parse_cq, ConjunctiveQuery};

use crate::cache::ShardedCache;
use crate::catalog::{Catalog, DbSnapshot};
use crate::durable::{Durability, DurabilityConfig, RecoveryStats, SnapshotSummary};
use crate::error::{Result, ServiceError};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};

/// Per-request resource limits. `None` fields fall back to the service's
/// [`ServiceConfig::default_limits`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLimits {
    /// Wall-clock budget, measured from admission (so queue time counts).
    pub deadline: Option<Duration>,
    /// Intermediate-tuple budget.
    pub tuple_budget: Option<u64>,
    /// Recursion-depth limit.
    pub max_depth: Option<usize>,
}

impl RequestLimits {
    fn or(self, default: RequestLimits) -> RequestLimits {
        RequestLimits {
            deadline: self.deadline.or(default.deadline),
            tuple_budget: self.tuple_budget.or(default.tuple_budget),
            max_depth: self.max_depth.or(default.max_depth),
        }
    }
}

/// Upper bound on `workers × intra_query_threads`: the worst-case number of
/// threads simultaneously evaluating queries (each of the `workers` job
/// threads may fan an evaluation out over `intra_query_threads` scoped
/// threads). Configurations that oversubscribe this cap are rejected by
/// [`QueryService::try_new`] — an oversubscribed service does not fail, it
/// just context-switches its own parallelism away, which is exactly the
/// silent degradation a validation error is cheaper than.
pub const MAX_TOTAL_THREADS: usize = 64;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads evaluating admitted jobs (inter-query parallelism).
    pub workers: usize,
    /// Intra-query parallelism degree: the size of the [`Pool`] each worker
    /// hands to the engines' parallel paths. `1` keeps evaluation fully
    /// serial (the pre-parallel behavior). Independent of [`workers`]:
    /// `workers` bounds how many queries run at once, this bounds how many
    /// threads each of them may use. Their product is capped by
    /// [`MAX_TOTAL_THREADS`].
    ///
    /// [`workers`]: ServiceConfig::workers
    pub intra_query_threads: usize,
    /// Bounded job-queue depth; a full queue rejects with
    /// [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Plan-cache capacity in entries (0 disables).
    pub plan_cache_capacity: usize,
    /// Result-cache capacity in entries (0 disables).
    pub result_cache_capacity: usize,
    /// Shards per cache level (lock-contention bound).
    pub cache_shards: usize,
    /// Limits applied when a request leaves a field unset.
    pub default_limits: RequestLimits,
    /// Planner options used when building plans.
    pub planner: PlannerOptions,
    /// Durability layer: `Some` makes the catalog survive restarts —
    /// startup recovers from the data directory (snapshot + WAL replay),
    /// every mutation is write-ahead logged, and snapshots are taken on the
    /// configured cadence, on `PERSIST`, and on [`QueryService::drain`].
    /// `None` (the default) keeps the catalog purely in memory.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            intra_query_threads: pq_exec::default_threads().min(MAX_TOTAL_THREADS / 4),
            queue_depth: 64,
            plan_cache_capacity: 256,
            result_cache_capacity: 1024,
            cache_shards: 8,
            default_limits: RequestLimits::default(),
            planner: PlannerOptions::default(),
            durability: None,
        }
    }
}

impl ServiceConfig {
    /// Reject configurations whose worst-case thread count
    /// (`workers × intra_query_threads`) exceeds [`MAX_TOTAL_THREADS`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the product oversubscribes the
    /// cap (both knobs are clamped to at least 1 first).
    pub fn validate(&self) -> Result<()> {
        let workers = self.workers.max(1);
        let intra = self.intra_query_threads.max(1);
        let total = workers.saturating_mul(intra);
        if total > MAX_TOTAL_THREADS {
            return Err(ServiceError::InvalidConfig(format!(
                "{workers} workers × {intra} intra-query threads = {total} \
                 threads oversubscribes the cap of {MAX_TOTAL_THREADS}"
            )));
        }
        Ok(())
    }
}

/// Which cache level (if any) answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Neither level hit: full parse + classify + plan + evaluate.
    Miss,
    /// The plan was cached; evaluation still ran.
    PlanHit,
    /// The full answer was cached; nothing ran.
    ResultHit,
}

/// A successful query answer plus its provenance.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The answer relation (shared with the result cache).
    pub rows: Arc<Relation>,
    /// Human-readable engine name from the plan.
    pub engine: &'static str,
    /// Which cache level answered.
    pub cache: CacheOutcome,
    /// Catalog generation the answer was computed against.
    pub generation: u64,
    /// Database epoch the answer was computed against.
    pub epoch: u64,
    /// End-to-end latency observed by the service.
    pub latency: Duration,
}

/// Summary returned by [`QueryService::load_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSummary {
    /// The catalog name loaded under.
    pub name: String,
    /// Relations in the loaded database.
    pub relations: usize,
    /// Total tuples.
    pub tuples: usize,
    /// Catalog generation assigned to the load.
    pub generation: u64,
    /// The database's own epoch after loading.
    pub epoch: u64,
}

/// What [`QueryService::explain`] reports (the wire `EXPLAIN` body).
#[derive(Debug, Clone)]
#[allow(clippy::struct_excessive_bools)] // wire fields, not a state machine
pub struct Explanation {
    /// Structural fingerprint of the query.
    pub fingerprint: u64,
    /// Engine the plan commits to.
    pub engine: &'static str,
    /// Classification one-liner.
    pub summary: &'static str,
    /// Query-size parameter `q`.
    pub q: usize,
    /// Variable-count parameter `v`.
    pub v: usize,
    /// Color parameter `k` when `≠` atoms exist.
    pub color_parameter: Option<usize>,
    /// Hypertree width of the (effective) query: `Some(1)` for acyclic
    /// queries, the decomposition width for cyclic ones, `None` when no
    /// width was established.
    pub hypertree_width: Option<usize>,
    /// Is the reported width exact (vs. a heuristic upper bound)?
    pub width_exact: bool,
    /// Decomposition shape (`bags=… depth=… width=…`) when the analyzer
    /// attached one — what the hypertree engine would sweep.
    pub decomposition: Option<String>,
    /// Was the plan already cached before this call?
    pub plan_was_cached: bool,
    /// Is the answer against the named database currently cached?
    pub result_is_cached: bool,
    /// Where an execution right now would get its answer from:
    /// `"result-cache"` (nothing runs), `"view-scan"` (a registered view's
    /// maintained relation is scanned/projected), `"plan-cache"`
    /// (evaluation runs on the cached plan), or `"cold"` (full parse +
    /// analyze + plan + evaluate). This is what tells an operator *why* a
    /// query was fast.
    pub answer_source: &'static str,
    /// The registered view that answers this query by scan or projection
    /// (`PQA801`/`PQA802` against the named database's live view
    /// registry), when one matches.
    pub answered_from_view: Option<String>,
    /// Fingerprint of the equivalence-class canonical core — the `PQA803`
    /// semantic cache key under which this query's results are stored,
    /// shared by every query with the same minimized core.
    pub equivalence_class: u64,
    /// Is the query provably empty on every database (evaluation skipped)?
    pub provably_empty: bool,
    /// Display form of the minimized core when minimization shrank the
    /// query (execution runs this query, not the submitted one).
    pub minimized: Option<String>,
    /// Analyzer diagnostics, rendered (`PQAnnn [sev] at span: message`) —
    /// the query-only passes plus the schema pass against the named
    /// database.
    pub diagnostics: Vec<String>,
    /// Current catalog generation of the database.
    pub generation: u64,
    /// Current epoch of the database.
    pub epoch: u64,
}

/// What [`QueryService::analyze`] reports (the wire `ANALYZE` body): the
/// full static analysis of a query, including the Fig. 1 parameter report
/// and the schema pass against the named database. Computed once at
/// plan-cache-fill time for valid queries — a warm `ANALYZE` only pays for
/// the schema pass.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Structural fingerprint of the query.
    pub fingerprint: u64,
    /// Engine the plan commits to (for unplannable queries, the analyzer's
    /// engine hint).
    pub engine: &'static str,
    /// Classification one-liner.
    pub summary: &'static str,
    /// Fig. 1 cell name (`acyclic-pure`, `acyclic-neq`, …).
    pub cell: &'static str,
    /// Query-size parameter `q` (of the minimized core when one exists).
    pub q: usize,
    /// Variable-count parameter `v`.
    pub v: usize,
    /// Largest relational-atom arity.
    pub max_arity: usize,
    /// Number of `≠` atoms.
    pub neq_count: usize,
    /// Number of comparison atoms.
    pub cmp_count: usize,
    /// Color parameter `k` when `≠` atoms exist.
    pub color_parameter: Option<usize>,
    /// Hypertree width of the (effective) query, when established.
    pub hypertree_width: Option<usize>,
    /// Is the reported width exact (vs. a heuristic upper bound)?
    pub width_exact: bool,
    /// Decomposition shape (`bags=… depth=… width=…`) when one exists.
    pub decomposition: Option<String>,
    /// When cyclic: the GYO-irreducible atom indices (the cycle witness).
    pub cycle_witness: Option<Vec<usize>>,
    /// Is the query provably empty on every database?
    pub provably_empty: bool,
    /// Display form of the minimized core, when minimization helped.
    pub minimized: Option<String>,
    /// All diagnostics, rendered, in pass order (schema pass last).
    pub diagnostics: Vec<String>,
    /// Did the analysis come from the plan cache (vs. running now)?
    pub plan_was_cached: bool,
    /// Current catalog generation of the database.
    pub generation: u64,
    /// Current epoch of the database.
    pub epoch: u64,
}

/// What [`QueryService::analyze_datalog`] reports (the wire `ANALYZE` body
/// for Datalog programs): the whole-program `PQA5xx` analysis — dependency
/// graph, dead-rule pruning, recursion classification, per-rule core
/// minimization — plus the schema pass of the EDB atoms against the named
/// database.
#[derive(Debug, Clone)]
pub struct ProgramAnalysisReport {
    /// The goal relation.
    pub goal: String,
    /// Rules in the submitted program.
    pub rules_total: usize,
    /// Rules that survive dead-rule pruning.
    pub rules_live: usize,
    /// Indices (program order) of the pruned rules.
    pub dead_rules: Vec<usize>,
    /// EDB relations, sorted.
    pub edb: Vec<String>,
    /// IDB relations, sorted.
    pub idb: Vec<String>,
    /// SCC count of the live program's IDB dependency graph.
    pub scc_count: usize,
    /// Overall recursion class (`nonrecursive` / `linear` / `nonlinear`).
    pub recursion: &'static str,
    /// Maximum atom arity over the live, minimized rules.
    pub max_arity: usize,
    /// Is the goal provably empty on every database (underivable)?
    pub provably_empty: bool,
    /// One-line display form of the rewritten program, when the analysis
    /// pruned or minimized anything (execution runs this program).
    pub rewritten: Option<String>,
    /// All diagnostics, rendered, in pass order (schema pass last).
    pub diagnostics: Vec<String>,
    /// Current catalog generation of the database.
    pub generation: u64,
    /// Current epoch of the database.
    pub epoch: u64,
}

/// What a `QUERY` request asks the service to aggregate: nothing (the
/// answer relation itself), the total count, or grouped counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountMode {
    /// `@count`: one row with the single attribute `count` — the number of
    /// distinct answer tuples `|Q(d)|`, computed without enumerating them
    /// whenever the `PQA7xx` analysis allows.
    Total,
    /// `@count_by(x,…)`: one row per assignment of the named head
    /// variables, attributes `x…, count`.
    Grouped(Vec<String>),
}

/// A parsed, classified, planned query — the plan-cache payload.
#[derive(Debug)]
pub struct PlannedQuery {
    /// The parsed AST.
    pub query: ConjunctiveQuery,
    /// The committed plan.
    pub plan: Plan,
    /// Canonical form ([`pq_query::canonical_form`]) — the cache-key
    /// component identifying the query exactly.
    pub canonical: Arc<str>,
    /// Structural fingerprint (display/wire identifier; a hash of
    /// `canonical`, so it is *not* used alone as a cache key).
    pub fingerprint: u64,
    /// The base relations the plan reads ([`Plan::mentioned_relations`]),
    /// sorted — the relations whose epochs key this query's cached results.
    pub mentions: Vec<String>,
    /// Canonical form of the minimized core — the `PQA803`
    /// equivalence-class (semantic) cache key. Equals
    /// [`PlannedQuery::canonical`] when minimization changed nothing;
    /// when it differs, every query whose core is alpha-equivalent shares
    /// one result-cache entry under this key.
    pub semantic: Arc<str>,
    /// Structural fingerprint of the minimized core (the wire
    /// `equivalence-class` identifier; a hash of `semantic`, so it is
    /// *not* used alone as a cache key).
    pub semantic_fingerprint: u64,
}

/// `(semantic query form, db name, generation, mentions fingerprint)`.
/// The semantic form — the canonical rendering of the query's minimized
/// core, not its fingerprint — keys results, so even a 64-bit hash
/// collision between distinct queries only costs a miss, never a wrong
/// answer, while queries that minimize to alpha-equivalent cores share
/// one entry (the `PQA803` re-keying). The last component hashes the per-relation epochs of
/// the relations the plan actually reads (see [`mentions_fingerprint`]):
/// within one generation the epoch vector is monotone and never repeats
/// (see [`Catalog::update`]), so a changed relation changes the key, while
/// mutations elsewhere leave cached entries servable.
type ResultKey = (Arc<str>, String, u64, u64);

/// FNV-1a over the `(name, relation epoch)` pairs of the plan's mentioned
/// relations — the epoch component of a [`ResultKey`].
fn mentions_fingerprint(db: &Database, mentions: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = OFFSET;
    for name in mentions {
        h = eat(h, name.as_bytes());
        h = eat(h, &[0]);
        h = eat(h, &db.relation_epoch(name).to_le_bytes());
    }
    h
}

/// The result-cache key for `planned` against `snap` (see [`ResultKey`]).
/// Build a governed execution context from resolved request limits. Also
/// the maintenance governor: view maintenance runs under the service's
/// default limits and the same cancellation token as queries.
fn governor_ctx(limits: RequestLimits, cancel: &CancellationToken) -> ExecutionContext {
    let mut ctx = ExecutionContext::new().with_cancellation(cancel.clone());
    if let Some(d) = limits.deadline {
        ctx = ctx.with_deadline(d);
    }
    if let Some(b) = limits.tuple_budget {
        ctx = ctx.with_tuple_budget(b);
    }
    if let Some(d) = limits.max_depth {
        ctx = ctx.with_max_depth(d);
    }
    ctx
}

fn result_key(planned: &PlannedQuery, snap: &DbSnapshot) -> ResultKey {
    (
        Arc::clone(&planned.semantic),
        snap.name.clone(),
        snap.generation,
        mentions_fingerprint(&snap.db, &planned.mentions),
    )
}

/// A parsed, counting-planned query — the count-plan-cache payload
/// (the `@count` analogue of [`PlannedQuery`]).
#[derive(Debug)]
struct PlannedCount {
    /// The parsed AST.
    query: ConjunctiveQuery,
    /// The committed counting plan.
    plan: CountPlan,
    /// Canonical form of the query (shared with [`PlannedQuery`] keys; the
    /// *result* key for a count is mode-prefixed, see
    /// [`count_canonical`]).
    canonical: Arc<str>,
    /// Base relations the counting plan reads.
    mentions: Vec<String>,
}

/// The canonical-form component of a count's [`ResultKey`]: the query's
/// canonical form prefixed with the count mode, so `@count`,
/// `@count_by(…)` and plain answers of the same query occupy distinct
/// result-cache entries (the `@` prefix can never collide with a canonical
/// form, which starts with a head atom).
fn count_canonical(canonical: &str, mode: &CountMode) -> Arc<str> {
    match mode {
        CountMode::Total => format!("@count {canonical}").into(),
        CountMode::Grouped(groups) => format!("@count_by({}) {canonical}", groups.join(",")).into(),
    }
}

/// The result-cache key for a count of `planned` under `mode` against
/// `snap` — same epoch-fingerprint scheme as [`result_key`], so IVM
/// maintenance patches cached counts in place exactly like cached answers.
fn count_result_key(planned: &PlannedCount, mode: &CountMode, snap: &DbSnapshot) -> ResultKey {
    (
        count_canonical(&planned.canonical, mode),
        snap.name.clone(),
        snap.generation,
        mentions_fingerprint(&snap.db, &planned.mentions),
    )
}

/// What an admitted job evaluates: a relation-producing query plan, or a
/// counting plan (whose answer is rendered as a one-row / grouped `count`
/// relation so the cache and wire shapes are shared).
enum JobWork {
    Evaluate(Arc<PlannedQuery>),
    Count(Arc<PlannedCount>, CountMode),
}

struct Job {
    work: JobWork,
    snapshot: DbSnapshot,
    ctx: ExecutionContext,
    reply: SyncSender<Result<Arc<Relation>>>,
}

/// Summary of a row-level mutation (the wire `INSERT`/`DELETE` response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationSummary {
    /// The catalog name mutated.
    pub name: String,
    /// The relation mutated.
    pub relation: String,
    /// `"inserted"` or `"deleted"`.
    pub op: &'static str,
    /// Rows in the request batch.
    pub requested: usize,
    /// Rows that actually changed membership (duplicates and absent rows
    /// are no-ops).
    pub applied: usize,
    /// Catalog generation after the mutation.
    pub generation: u64,
    /// Database epoch after the mutation.
    pub epoch: u64,
    /// Materialized views maintained by this mutation.
    pub views_maintained: usize,
    /// How many of those views fell back to a full recompute.
    pub fallbacks: usize,
}

/// One maintenance event pushed to a [`Subscription`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionUpdate {
    /// Tuples that entered the view's answer, sorted.
    pub added: Vec<Tuple>,
    /// Tuples that left the view's answer, sorted.
    pub removed: Vec<Tuple>,
    /// The view's cardinality (`|V(d)|`) *after* this update — carried in
    /// every frame header so a count-subscriber can track the view's size
    /// without replaying its materialization.
    pub cardinality: u64,
    /// Database epoch the update reflects.
    pub epoch: u64,
    /// The delta plan exhausted its budget; the view was rebuilt from
    /// scratch instead (the delta is still exact).
    pub fell_back: bool,
    /// The view could no longer be maintained (rebuild failed, or the
    /// database was dropped) and has been deregistered; this is the final
    /// update.
    pub dropped: bool,
}

/// A live view subscription: the initial answer plus a channel of
/// [`SubscriptionUpdate`]s, one per mutation batch that changed (or
/// dropped) the view. Ends when [`QueryService::unsubscribe`] is called,
/// the view is dropped, or the service shuts down (the channel
/// disconnects).
pub struct Subscription {
    /// Subscription id (pass to [`QueryService::unsubscribe`]).
    pub id: u64,
    /// The catalog name subscribed against.
    pub database: String,
    /// The view's answer at subscription time.
    pub rows: Arc<Relation>,
    /// The delta stream (an unbounded channel: maintenance never blocks on
    /// a slow subscriber).
    pub updates: Receiver<SubscriptionUpdate>,
}

/// One subscriber's registry entry.
struct SubEntry {
    db: String,
    view: String,
    /// The planned form of the subscribed query when it is a CQ — used to
    /// patch the result cache in place after maintenance. `None` for
    /// Datalog programs (the wire `QUERY` path does not serve programs).
    planned: Option<Arc<PlannedQuery>>,
    /// The counting plan of the same query — used to patch the cached
    /// `@count` entry in place after maintenance (the maintained answer's
    /// cardinality *is* the view's exact distinct count).
    counted: Option<Arc<PlannedCount>>,
    tx: Sender<SubscriptionUpdate>,
}

/// All view/subscription state, behind one mutex. The lock is held across
/// the catalog update *and* the maintenance pass, so views observe every
/// mutation exactly once and in catalog order.
#[derive(Default)]
struct ViewsState {
    /// Per-database view registries.
    registries: BTreeMap<String, ViewRegistry>,
    /// Live subscriptions by id.
    subs: BTreeMap<u64, SubEntry>,
    next_sub: u64,
}

struct Inner {
    catalog: Catalog,
    plan_cache: ShardedCache<Arc<str>, PlannedQuery>,
    /// Canonical query form → counting plan (the `@count` analogue of
    /// `plan_cache`; the two are separate maps because their payloads
    /// differ, but they share the capacity knob).
    count_plan_cache: ShardedCache<Arc<str>, PlannedCount>,
    result_cache: ShardedCache<ResultKey, Relation>,
    metrics: ServiceMetrics,
    config: ServiceConfig,
    shutdown: AtomicBool,
    cancel: CancellationToken,
    /// The durability manager when [`ServiceConfig::durability`] is set;
    /// also attached to `catalog` (which journals through it) — kept here
    /// for stats and recovery reporting.
    durability: Option<Arc<Durability>>,
    /// Intra-query execution pool descriptor, shared by all workers so pool
    /// occupancy and task counters aggregate service-wide (the pool spawns
    /// scoped threads per run; it owns no threads of its own).
    exec: Pool,
    /// Materialized views and live subscriptions (see [`ViewsState`]).
    views: Mutex<ViewsState>,
}

/// The concurrent query service (see the module docs).
pub struct QueryService {
    inner: Arc<Inner>,
    job_tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl QueryService {
    /// Start a service: spawns the worker pool immediately.
    ///
    /// # Panics
    /// If the configuration oversubscribes [`MAX_TOTAL_THREADS`]; use
    /// [`QueryService::try_new`] to handle that as an error.
    pub fn new(config: ServiceConfig) -> Self {
        QueryService::try_new(config).expect("invalid service configuration")
    }

    /// Start a service, rejecting invalid configurations (see
    /// [`ServiceConfig::validate`]) with [`ServiceError::InvalidConfig`]
    /// instead of panicking.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when
    /// `workers × intra_query_threads > MAX_TOTAL_THREADS`;
    /// [`ServiceError::Recovery`] when [`ServiceConfig::durability`] is set
    /// and the on-disk state cannot be trusted (the service refuses to
    /// start rather than serve from a corrupt catalog).
    pub fn try_new(config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        // The service's intra-query knob is authoritative: plans built here
        // should recommend at most (and, when the query has fan-out, exactly)
        // the degree the exec pool actually provides.
        let mut config = config;
        config.planner.max_parallelism = config.intra_query_threads.max(1);
        let catalog = Catalog::new();
        let durability = match config.durability.clone() {
            Some(dcfg) => {
                let (recovered, journal) = Durability::recover(dcfg)?;
                // Install recovered databases *before* attaching the journal:
                // recovery inserts must not re-log themselves.
                for (name, db) in recovered {
                    catalog.insert(name, db)?;
                }
                let journal = Arc::new(journal);
                catalog.attach_journal(Arc::clone(&journal));
                Some(journal)
            }
            None => None,
        };
        let inner = Arc::new(Inner {
            catalog,
            plan_cache: ShardedCache::new(config.plan_cache_capacity, config.cache_shards),
            count_plan_cache: ShardedCache::new(config.plan_cache_capacity, config.cache_shards),
            result_cache: ShardedCache::new(config.result_cache_capacity, config.cache_shards),
            metrics: ServiceMetrics::default(),
            exec: Pool::new(config.intra_query_threads.max(1)),
            config,
            shutdown: AtomicBool::new(false),
            cancel: CancellationToken::new(),
            durability,
            views: Mutex::new(ViewsState::default()),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(inner.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pq-service-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &inner))
                    .expect("spawn worker")
            })
            .collect();
        Ok(QueryService {
            inner,
            job_tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        })
    }

    /// A service with default configuration.
    pub fn with_defaults() -> Self {
        QueryService::new(ServiceConfig::default())
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Has [`QueryService::shutdown`] been called?
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    fn check_admitting(&self) -> Result<()> {
        if self.is_shutdown() {
            return Err(ServiceError::ShuttingDown);
        }
        Ok(())
    }

    // ---- catalog operations ----

    /// Parse database text (the `pq-data` loader format) and install it
    /// under `name`, replacing any previous database.
    ///
    /// # Errors
    /// [`ServiceError::Data`] if the text does not parse;
    /// [`ServiceError::Durability`] if the WAL append fails;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn load_str(&self, name: &str, text: &str) -> Result<LoadSummary> {
        self.check_admitting()?;
        let db = loader::parse_database(text)?;
        self.install(name, db)
    }

    /// Install an already-built database under `name`.
    ///
    /// # Errors
    /// [`ServiceError::Durability`] if the WAL append fails;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn load_database(&self, name: &str, db: Database) -> Result<LoadSummary> {
        self.check_admitting()?;
        self.install(name, db)
    }

    /// Install `db` under `name`; when the name had registered views, every
    /// one recomputes against the replacement (subscribers receive the
    /// answer diff, views that no longer materialize are dropped).
    fn install(&self, name: &str, db: Database) -> Result<LoadSummary> {
        let (relations, tuples, epoch) = (db.num_relations(), db.num_tuples(), db.epoch());
        let mut views = self.inner.views.lock().expect("views poisoned");
        let generation = self.inner.catalog.insert(name, db)?;
        ServiceMetrics::bump(&self.inner.metrics.loads);
        if views.registries.contains_key(name) {
            let snap = self.inner.catalog.snapshot(name)?;
            self.refresh_views(&mut views, &snap);
        }
        Ok(LoadSummary {
            name: name.to_string(),
            relations,
            tuples,
            generation,
            epoch,
        })
    }

    /// Mutate the named database in place (the relevant epochs advance, so
    /// cached results for the old state stop being served). The closure's
    /// edits carry no row deltas, so any views on this database recompute
    /// wholesale — prefer [`QueryService::insert_rows`] /
    /// [`QueryService::delete_rows`], which maintain views incrementally.
    ///
    /// # Errors
    /// [`ServiceError::UnknownDatabase`] if `name` is not in the catalog;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn update_database<R>(&self, name: &str, f: impl FnOnce(&mut Database) -> R) -> Result<R> {
        self.check_admitting()?;
        let mut views = self.inner.views.lock().expect("views poisoned");
        let out = self.inner.catalog.update(name, f)?;
        ServiceMetrics::bump(&self.inner.metrics.mutations);
        if views.registries.contains_key(name) {
            let snap = self.inner.catalog.snapshot(name)?;
            self.refresh_views(&mut views, &snap);
        }
        Ok(out)
    }

    /// Drop the named database from the catalog; `true` when it existed.
    /// When durability is on, a tombstone is journaled so recovery does not
    /// resurrect the database. Views on the database are deregistered and
    /// their subscribers receive a final `dropped` update.
    ///
    /// # Errors
    /// [`ServiceError::Durability`] if the tombstone append fails;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn drop_database(&self, name: &str) -> Result<bool> {
        self.check_admitting()?;
        let mut views = self.inner.views.lock().expect("views poisoned");
        let existed = self.inner.catalog.remove(name)?;
        if existed {
            ServiceMetrics::bump(&self.inner.metrics.drops);
            self.drop_views(&mut views, name);
        }
        Ok(existed)
    }

    // ---- row-level mutations & live views ----

    /// Insert rows into `relation` of the named database. Only genuinely new
    /// rows count as applied; the mutation is journaled through the WAL, the
    /// relation's epoch advances, and every registered view whose plan reads
    /// `relation` is maintained incrementally (subscribers receive the
    /// answer delta, cached results are patched in place).
    ///
    /// # Errors
    /// [`ServiceError::UnknownDatabase`] / [`ServiceError::Data`] for an
    /// unknown database/relation or an arity mismatch;
    /// [`ServiceError::Durability`] if the WAL append fails;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn insert_rows(
        &self,
        db_name: &str,
        relation: &str,
        rows: Vec<Tuple>,
    ) -> Result<MutationSummary> {
        self.mutate(db_name, relation, rows, false)
    }

    /// Delete rows from `relation` of the named database. Rows that are not
    /// present are skipped; otherwise behaves like
    /// [`QueryService::insert_rows`] with the delta signs flipped.
    ///
    /// # Errors
    /// As for [`QueryService::insert_rows`].
    pub fn delete_rows(
        &self,
        db_name: &str,
        relation: &str,
        rows: Vec<Tuple>,
    ) -> Result<MutationSummary> {
        self.mutate(db_name, relation, rows, true)
    }

    fn mutate(
        &self,
        db_name: &str,
        relation: &str,
        rows: Vec<Tuple>,
        delete: bool,
    ) -> Result<MutationSummary> {
        self.check_admitting()?;
        let requested = rows.len();
        // The views lock is taken before any catalog lock (the ordering every
        // path follows), so maintenance passes observe mutations in the order
        // they were applied.
        let mut views = self.inner.views.lock().expect("views poisoned");
        // Fail unknown relations before the journal machinery runs; the row
        // methods inside `update` would reject them anyway, but only after a
        // no-op WAL record had been appended.
        if !self
            .inner
            .catalog
            .snapshot(db_name)?
            .db
            .has_relation(relation)
        {
            return Err(DataError::UnknownRelation(relation.to_string()).into());
        }
        let rel = relation.to_string();
        let delta = self
            .inner
            .catalog
            .update(db_name, |db| -> Result<RelationDelta> {
                let (added, removed) = if delete {
                    (Vec::new(), db.delete_rows(&rel, &rows)?)
                } else {
                    (db.insert_rows(&rel, rows)?, Vec::new())
                };
                Ok(RelationDelta {
                    relation: rel.clone(),
                    added,
                    removed,
                })
            })??;
        ServiceMetrics::bump(&self.inner.metrics.mutations);
        let snap = self.inner.catalog.snapshot(db_name)?;
        let applied = delta.added.len() + delta.removed.len();
        let mut views_maintained = 0;
        let mut fallbacks = 0;
        if applied > 0 {
            if let Some(outcomes) = self.maintain_views(&mut views, &snap, &[delta]) {
                views_maintained = outcomes.len();
                fallbacks = outcomes.iter().filter(|o| o.fell_back).count();
            }
        }
        Ok(MutationSummary {
            name: snap.name.clone(),
            relation: relation.to_string(),
            op: if delete { "deleted" } else { "inserted" },
            requested,
            applied,
            generation: snap.generation,
            epoch: snap.epoch,
            views_maintained,
            fallbacks,
        })
    }

    /// Register a materialized view of `src` over the named database and
    /// stream its answer deltas. `src` is a conjunctive query, or — when the
    /// text contains a `?-` goal marker — a whole Datalog program whose goal
    /// defines the view.
    ///
    /// The initial answer is materialized synchronously under the service's
    /// default limits. Afterwards, every [`QueryService::insert_rows`] /
    /// [`QueryService::delete_rows`] that changes the answer pushes one
    /// [`SubscriptionUpdate`] on the returned channel; reloads and untracked
    /// updates trigger a full recompute and push the resulting diff. For
    /// conjunctive queries the result cache is patched in place on every
    /// maintenance pass, so `QUERY` for the same text stays a result-cache
    /// hit across mutations.
    ///
    /// # Errors
    /// [`ServiceError::Parse`] for invalid query text;
    /// [`ServiceError::UnknownDatabase`] if `db_name` is not in the catalog;
    /// [`ServiceError::Engine`] when the initial materialization fails (e.g.
    /// exhausts the default budget);
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn subscribe(&self, db_name: &str, src: &str) -> Result<Subscription> {
        self.check_admitting()?;
        let mut views = self.inner.views.lock().expect("views poisoned");
        let snap = self.inner.catalog.snapshot(db_name)?;
        let (query, planned, counted) = if src.contains("?-") {
            (
                ViewQuery::Program(pq_query::parse_datalog(src)?),
                None,
                None,
            )
        } else {
            let (planned, _) = self.planned(src)?;
            let counted = self.planned_count(src).ok().map(|(pc, _)| pc);
            (ViewQuery::Cq(planned.query.clone()), Some(planned), counted)
        };
        let id = views.next_sub;
        let proposed = format!("sub-{id}");
        let limits = self.inner.config.default_limits;
        let ctx = governor_ctx(limits, &self.inner.cancel);
        // Deduplicate: a view equivalent to an already-registered one is
        // reused (its maintained answer is shared), not materialized and
        // maintained twice.
        let (view_name, rows) = views
            .registries
            .entry(snap.name.clone())
            .or_default()
            .register_or_reuse(proposed.clone(), query, &snap.db, &ctx)?;
        views.next_sub += 1;
        if view_name == proposed {
            ServiceMetrics::bump(&self.inner.metrics.views_registered);
        }
        ServiceMetrics::bump(&self.inner.metrics.subscriptions_active);
        // Prime the result cache: the freshly materialized answer is exactly
        // what a QUERY for the same text would produce.
        if let Some(p) = &planned {
            self.inner
                .result_cache
                .insert(result_key(p, &snap), Arc::clone(&rows));
        }
        // ...and the cached total count alongside it, so a `QUERY @count`
        // for the view's text is a result-cache hit from the start.
        if let Some(pc) = &counted {
            self.prime_count_entry(pc, &snap, rows.len());
        }
        let (tx, rx) = mpsc::channel();
        views.subs.insert(
            id,
            SubEntry {
                db: snap.name.clone(),
                view: view_name,
                planned,
                counted,
                tx,
            },
        );
        Ok(Subscription {
            id,
            database: snap.name,
            rows,
            updates: rx,
        })
    }

    /// The current maintained answer of subscription `id` on `db_name`;
    /// `None` when no such live subscription exists.
    pub fn answer_rows(&self, db_name: &str, id: u64) -> Option<Arc<Relation>> {
        let views = self.inner.views.lock().expect("views poisoned");
        let sub = views.subs.get(&id)?;
        if sub.db != db_name {
            return None;
        }
        views.registries.get(db_name)?.answer(&sub.view)
    }

    /// End a subscription: deregister its view and disconnect its update
    /// stream. `true` when `id` was live.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut views = self.inner.views.lock().expect("views poisoned");
        let Some(sub) = views.subs.remove(&id) else {
            return false;
        };
        ServiceMetrics::dec(&self.inner.metrics.subscriptions_active);
        // Deduplicated subscriptions share one registered view: only
        // deregister it when no other live subscription still reads it.
        let shared = views
            .subs
            .values()
            .any(|s| s.db == sub.db && s.view == sub.view);
        if !shared {
            if let Some(registry) = views.registries.get_mut(&sub.db) {
                if registry.deregister(&sub.view) {
                    ServiceMetrics::dec(&self.inner.metrics.views_registered);
                }
                if registry.is_empty() {
                    views.registries.remove(&sub.db);
                }
            }
        }
        true
    }

    /// Find the registered view (if any) on `db_name` that answers
    /// `planned` by scan or projection — the `PQA801`/`PQA802` match run
    /// against the database's *live* view registry (the plan cache is
    /// shared across databases, so view matching cannot be baked into the
    /// plan).
    fn view_match(&self, planned: &PlannedQuery, db_name: &str) -> Option<pq_analyze::ViewMatch> {
        let views = self.inner.views.lock().expect("views poisoned");
        let registry = views.registries.get(db_name)?;
        let shapes = registry.cq_shapes();
        if shapes.is_empty() {
            return None;
        }
        let q = planned.plan.analysis.effective(&planned.query);
        let limit = self.inner.config.planner.analysis.containment_atom_limit;
        pq_analyze::match_against_views(q, &shapes, limit)
    }

    /// The name of the view that would answer `planned` on `db_name`
    /// right now (for `EXPLAIN`'s `answered-from view` line).
    fn view_match_name(&self, planned: &PlannedQuery, db_name: &str) -> Option<String> {
        self.view_match(planned, db_name).map(|m| m.view)
    }

    /// Answer `planned` from a registered view's maintained relation:
    /// match against the database's CQ-shaped views and project the
    /// maintained answer onto the query's head (an `O(|view|)` scan — no
    /// join evaluation). Returns the answer plus a snapshot taken under
    /// the views lock: maintenance runs under that lock, so the maintained
    /// relation reflects exactly the snapshot's epochs and the result is
    /// safe to cache under the snapshot's key.
    fn view_answer(
        &self,
        planned: &PlannedQuery,
        db_name: &str,
    ) -> Option<(Arc<Relation>, DbSnapshot)> {
        let views = self.inner.views.lock().expect("views poisoned");
        let registry = views.registries.get(db_name)?;
        let shapes = registry.cq_shapes();
        if shapes.is_empty() {
            return None;
        }
        let q = planned.plan.analysis.effective(&planned.query);
        let limit = self.inner.config.planner.analysis.containment_atom_limit;
        let m = pq_analyze::match_against_views(q, &shapes, limit)?;
        let answer = registry.answer(&m.view)?;
        let snap = self.inner.catalog.snapshot(db_name).ok()?;
        // Rebuild under the query's own head attributes even for exact
        // matches, so the response is byte-identical to direct evaluation.
        let rows = view_scan(q, &answer, &m.projection).ok()?;
        Some((Arc::new(rows), snap))
    }

    /// Run the maintenance plans of every view on `snap`'s database against
    /// `deltas` and publish the outcomes. `None` when it has no views.
    fn maintain_views(
        &self,
        views: &mut ViewsState,
        snap: &DbSnapshot,
        deltas: &[RelationDelta],
    ) -> Option<Vec<MaintainOutcome>> {
        let limits = self.inner.config.default_limits;
        let cancel = &self.inner.cancel;
        let start = Instant::now();
        let outcomes = views
            .registries
            .get_mut(&snap.name)?
            .maintain(&snap.db, deltas, || governor_ctx(limits, cancel));
        self.publish_outcomes(views, snap, &outcomes, start.elapsed());
        Some(outcomes)
    }

    /// Recompute every view on `snap`'s database from scratch (used after
    /// wholesale replacements, where no row deltas exist) and publish the
    /// resulting answer diffs.
    fn refresh_views(&self, views: &mut ViewsState, snap: &DbSnapshot) {
        let limits = self.inner.config.default_limits;
        let cancel = &self.inner.cancel;
        let start = Instant::now();
        let Some(registry) = views.registries.get_mut(&snap.name) else {
            return;
        };
        let outcomes = registry.refresh(&snap.db, || governor_ctx(limits, cancel));
        self.publish_outcomes(views, snap, &outcomes, start.elapsed());
    }

    /// Fan one maintenance pass out: record its latency and fallbacks, patch
    /// the result cache with each maintained answer, push deltas to
    /// subscribers, and reap subscriptions whose views were dropped.
    fn publish_outcomes(
        &self,
        views: &mut ViewsState,
        snap: &DbSnapshot,
        outcomes: &[MaintainOutcome],
        elapsed: Duration,
    ) {
        if outcomes.is_empty() {
            return;
        }
        let m = &self.inner.metrics;
        m.ivm_maintain.record(elapsed);
        let mut gone: Vec<u64> = Vec::new();
        for o in outcomes {
            if o.fell_back {
                ServiceMetrics::bump(&m.ivm_maintain_fallbacks);
            }
            if o.dropped {
                ServiceMetrics::dec(&m.views_registered);
            }
            for (&id, sub) in &views.subs {
                if sub.db != snap.name || sub.view != o.view {
                    continue;
                }
                if !o.dropped {
                    if let Some(p) = &sub.planned {
                        self.inner
                            .result_cache
                            .insert(result_key(p, snap), Arc::clone(&o.answer));
                    }
                    // Patch the cached `@count` in place too: the
                    // maintained answer's cardinality is the view's exact
                    // distinct count under the post-mutation key.
                    if let Some(pc) = &sub.counted {
                        self.prime_count_entry(pc, snap, o.answer.len());
                    }
                }
                if !o.delta.is_empty() || o.dropped {
                    let update = SubscriptionUpdate {
                        added: o.delta.added.clone(),
                        removed: o.delta.removed.clone(),
                        cardinality: o.answer.len() as u64,
                        epoch: snap.epoch,
                        fell_back: o.fell_back,
                        dropped: o.dropped,
                    };
                    if sub.tx.send(update).is_ok() {
                        ServiceMetrics::bump(&m.deltas_pushed);
                    }
                }
                if o.dropped {
                    gone.push(id);
                }
            }
        }
        for id in gone {
            views.subs.remove(&id);
            ServiceMetrics::dec(&m.subscriptions_active);
        }
    }

    /// Install `cardinality` as the cached `@count` answer for `pc`
    /// against `snap` (the count analogue of the result-cache patch:
    /// IVM writes update cached counts in place, keyed by the same
    /// relation-epoch fingerprint).
    fn prime_count_entry(&self, pc: &PlannedCount, snap: &DbSnapshot, cardinality: usize) {
        let count = QueryCount {
            distinct: cardinality as u128,
            assignments: cardinality as u128,
        };
        if let Ok(rel) = count_relation(&count) {
            self.inner
                .result_cache
                .insert(count_result_key(pc, &CountMode::Total, snap), Arc::new(rel));
        }
    }

    /// Deregister every view and subscription on `name` (the database was
    /// dropped); each subscriber receives a final `dropped` update.
    fn drop_views(&self, views: &mut ViewsState, name: &str) {
        let m = &self.inner.metrics;
        if let Some(registry) = views.registries.remove(name) {
            for _ in 0..registry.len() {
                ServiceMetrics::dec(&m.views_registered);
            }
        }
        let gone: Vec<u64> = views
            .subs
            .iter()
            .filter(|(_, s)| s.db == name)
            .map(|(&id, _)| id)
            .collect();
        for id in gone {
            let Some(sub) = views.subs.remove(&id) else {
                continue;
            };
            ServiceMetrics::dec(&m.subscriptions_active);
            let update = SubscriptionUpdate {
                added: Vec::new(),
                removed: Vec::new(),
                cardinality: 0,
                epoch: 0,
                fell_back: false,
                dropped: true,
            };
            if sub.tx.send(update).is_ok() {
                ServiceMetrics::bump(&m.deltas_pushed);
            }
        }
    }

    /// Force a snapshot of the whole catalog to stable storage now,
    /// rotating the WAL (the wire `PERSIST` verb).
    ///
    /// # Errors
    /// [`ServiceError::Durability`] when durability is not configured or
    /// the snapshot I/O fails;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn persist(&self) -> Result<SnapshotSummary> {
        self.check_admitting()?;
        self.inner.catalog.persist()
    }

    /// What startup recovery found and did; `None` when the service runs
    /// without durability.
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.inner
            .durability
            .as_ref()
            .map(|d| d.recovery_stats().clone())
    }

    /// Names in the catalog, sorted.
    pub fn database_names(&self) -> Vec<String> {
        self.inner.catalog.names()
    }

    /// Snapshot the named database (for oracles/tests that need the exact
    /// data a concurrent query saw).
    ///
    /// # Errors
    /// [`ServiceError::UnknownDatabase`] if `name` is not in the catalog.
    pub fn snapshot(&self, name: &str) -> Result<DbSnapshot> {
        self.inner.catalog.snapshot(name)
    }

    // ---- planning ----

    /// Plan-cache lookup/population. Returns the planned query and whether
    /// it was already cached.
    fn planned(&self, src: &str) -> Result<(Arc<PlannedQuery>, bool)> {
        // Parse before the cache lookup: the key must identify the query
        // exactly, and no text normalization is safe (whitespace inside a
        // string literal is significant), so the key is the AST's canonical
        // form. A hit still skips the expensive half — classification and
        // planning.
        let query = parse_cq(src)?;
        query.validate()?;
        let key: Arc<str> = canonical_form(&query).into();
        if let Some(hit) = self.inner.plan_cache.get(&key) {
            ServiceMetrics::bump(&self.inner.metrics.plan_hits);
            return Ok((hit, true));
        }
        ServiceMetrics::bump(&self.inner.metrics.plan_misses);
        let plan = plan(&query, &self.inner.config.planner);
        let mentions = plan.mentioned_relations(&query);
        // The semantic key: canonical form of the minimized core. When the
        // analyzer shrank the query, results are cached under the *core*'s
        // rendering, so the redundant original and its core (and any other
        // query minimizing to the same core) share one entry.
        let (semantic, semantic_fingerprint) = match &plan.analysis.rewritten {
            Some(core) => (Arc::from(canonical_form(core)), core.fingerprint()),
            None => (Arc::clone(&key), query.fingerprint()),
        };
        let planned = Arc::new(PlannedQuery {
            fingerprint: query.fingerprint(),
            plan,
            canonical: Arc::clone(&key),
            query,
            mentions,
            semantic,
            semantic_fingerprint,
        });
        self.inner.plan_cache.insert(key, Arc::clone(&planned));
        Ok((planned, false))
    }

    /// Count-plan-cache lookup/population — [`QueryService::planned`] for
    /// the counting problem. The counting plan runs the analyzer with the
    /// `PQA7xx` pass on and commits to a [`CountChoice`]; it is cached
    /// under the same canonical form, in its own map.
    fn planned_count(&self, src: &str) -> Result<(Arc<PlannedCount>, bool)> {
        let query = parse_cq(src)?;
        query.validate()?;
        let key: Arc<str> = canonical_form(&query).into();
        if let Some(hit) = self.inner.count_plan_cache.get(&key) {
            ServiceMetrics::bump(&self.inner.metrics.plan_hits);
            return Ok((hit, true));
        }
        ServiceMetrics::bump(&self.inner.metrics.plan_misses);
        let plan = plan_count(&query, &self.inner.config.planner);
        let mentions = plan.mentioned_relations(&query);
        let planned = Arc::new(PlannedCount {
            plan,
            canonical: Arc::clone(&key),
            query,
            mentions,
        });
        self.inner
            .count_plan_cache
            .insert(key, Arc::clone(&planned));
        Ok((planned, false))
    }

    /// Classify/plan `src` (through the plan cache) and report where an
    /// execution against `db_name` would land.
    ///
    /// # Errors
    /// [`ServiceError::Parse`] if `src` is not a valid conjunctive query;
    /// [`ServiceError::UnknownDatabase`] if `db_name` is not in the catalog;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn explain(&self, db_name: &str, src: &str) -> Result<Explanation> {
        self.check_admitting()?;
        let (planned, plan_was_cached) = self.planned(src)?;
        let snap = self.inner.catalog.snapshot(db_name)?;
        let key = result_key(&planned, &snap);
        // Peek without polluting hit/miss statistics? The cache counts every
        // probe; EXPLAIN is rare enough that honesty is fine.
        let result_is_cached = self.inner.result_cache.get(&key).is_some();
        let answered_from_view = self.view_match_name(&planned, db_name);
        let c = &planned.plan.classification;
        let a = &planned.plan.analysis;
        let mut diagnostics: Vec<String> = a.diagnostics.iter().map(ToString::to_string).collect();
        diagnostics.extend(
            pq_analyze::schema_diagnostics(&planned.query, &snap.db)
                .iter()
                .map(ToString::to_string),
        );
        let r = &a.report;
        Ok(Explanation {
            fingerprint: planned.fingerprint,
            engine: planned.plan.engine,
            summary: c.summary,
            q: c.q,
            v: c.v,
            color_parameter: c.color_parameter,
            hypertree_width: r.hypertree_width,
            width_exact: r.width_exact,
            decomposition: r.decomposition.as_ref().map(HypertreeDecomposition::shape),
            plan_was_cached,
            result_is_cached,
            answer_source: if result_is_cached {
                "result-cache"
            } else if answered_from_view.is_some() {
                "view-scan"
            } else if plan_was_cached {
                "plan-cache"
            } else {
                "cold"
            },
            answered_from_view,
            equivalence_class: planned.semantic_fingerprint,
            provably_empty: a.provably_empty(),
            minimized: a.rewritten.as_ref().map(ToString::to_string),
            diagnostics,
            generation: snap.generation,
            epoch: snap.epoch,
        })
    }

    /// Run the full static analysis of `src` against the named database:
    /// lints, contradiction detection, core minimization, structural
    /// classification, and the schema pass. For valid queries the
    /// query-only analysis comes from the plan cache (it ran at
    /// plan-cache-fill time); queries that fail validation are analyzed
    /// directly so the diagnostics explaining the rejection still surface.
    ///
    /// # Errors
    /// [`ServiceError::Parse`] if `src` does not parse at all;
    /// [`ServiceError::UnknownDatabase`] if `db_name` is not in the catalog;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn analyze(&self, db_name: &str, src: &str) -> Result<AnalysisReport> {
        self.check_admitting()?;
        let snap = self.inner.catalog.snapshot(db_name)?;
        let query = parse_cq(src)?;
        let (fingerprint, engine, analysis, diagnostics, plan_was_cached) = if query
            .validate()
            .is_ok()
        {
            let (planned, cached) = self.planned(src)?;
            let a = &planned.plan.analysis;
            let mut lines: Vec<String> = a.diagnostics.iter().map(ToString::to_string).collect();
            lines.extend(
                pq_analyze::schema_diagnostics(&planned.query, &snap.db)
                    .iter()
                    .map(ToString::to_string),
            );
            (
                planned.fingerprint,
                planned.plan.engine,
                a.clone(),
                lines,
                cached,
            )
        } else {
            // Invalid queries never reach the planner or its cache.
            let direct =
                pq_analyze::analyze_with_db(&query, &snap.db, &self.inner.config.planner.analysis);
            let lines = direct.diagnostics.iter().map(ToString::to_string).collect();
            (
                query.fingerprint(),
                direct.report.engine_hint,
                direct,
                lines,
                false,
            )
        };
        let r = &analysis.report;
        Ok(AnalysisReport {
            fingerprint,
            engine,
            summary: r.summary,
            cell: r.cell.as_str(),
            q: r.q,
            v: r.v,
            max_arity: r.max_arity,
            neq_count: r.neq_count,
            cmp_count: r.cmp_count,
            color_parameter: r.color_parameter,
            hypertree_width: r.hypertree_width,
            width_exact: r.width_exact,
            decomposition: r.decomposition.as_ref().map(HypertreeDecomposition::shape),
            cycle_witness: r.cycle_witness.clone(),
            provably_empty: analysis.provably_empty(),
            minimized: analysis.rewritten.as_ref().map(ToString::to_string),
            diagnostics,
            plan_was_cached,
            generation: snap.generation,
            epoch: snap.epoch,
        })
    }

    /// Run the whole-program Datalog analysis (`PQA5xx`) of `src` against
    /// the named database: predicate dependency graph, dead-rule pruning,
    /// recursion classification, per-rule core minimization, and the schema
    /// pass of the EDB atoms. Programs are not planned or cached — analysis
    /// runs fresh on every call (the pass pipeline is linear in the program,
    /// and programs arrive far less often than queries).
    ///
    /// # Errors
    /// [`ServiceError::Parse`] if `src` is not a parseable Datalog program;
    /// [`ServiceError::UnknownDatabase`] if `db_name` is not in the catalog;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn analyze_datalog(&self, db_name: &str, src: &str) -> Result<ProgramAnalysisReport> {
        self.check_admitting()?;
        let snap = self.inner.catalog.snapshot(db_name)?;
        let program = pq_query::parse_datalog(src)?;
        let a = pq_analyze::analyze_program_with_db(
            &program,
            &snap.db,
            &self.inner.config.planner.analysis,
        );
        let r = &a.report;
        Ok(ProgramAnalysisReport {
            goal: program.goal.clone(),
            rules_total: r.rules_total,
            rules_live: r.rules_live,
            dead_rules: r.dead_rules.clone(),
            edb: r.edb.clone(),
            idb: r.idb.clone(),
            scc_count: r.sccs.len(),
            recursion: r.recursion.as_str(),
            max_arity: r.max_arity,
            provably_empty: a.provably_empty(),
            rewritten: a.rewritten.as_ref().map(|p| {
                let rules: Vec<String> = p.rules.iter().map(ToString::to_string).collect();
                format!("{} ?- {}", rules.join(" "), p.goal)
            }),
            diagnostics: a.diagnostics.iter().map(ToString::to_string).collect(),
            generation: snap.generation,
            epoch: snap.epoch,
        })
    }

    // ---- the query path ----

    /// Evaluate `src` against the named database under `limits`.
    ///
    /// Serves from the result cache when possible; otherwise admits a job to
    /// the worker pool (rejecting with [`ServiceError::Overloaded`] when the
    /// bounded queue is full) and blocks for the answer.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] when the queue is full;
    /// [`ServiceError::Engine`] when a limit in `limits` trips (resource
    /// exhaustion) or evaluation fails;
    /// [`ServiceError::Parse`] for bad query text;
    /// [`ServiceError::UnknownDatabase`] for an unknown `db_name`;
    /// [`ServiceError::ShuttingDown`] after [`QueryService::shutdown`].
    pub fn query(&self, db_name: &str, src: &str, limits: RequestLimits) -> Result<QueryResponse> {
        let start = Instant::now();
        self.check_admitting()?;
        let m = &self.inner.metrics;
        let outcome = (|| {
            let (planned, plan_hit) = self.planned(src)?;
            let snap = self.inner.catalog.snapshot(db_name)?;
            let key = result_key(&planned, &snap);
            if let Some(rows) = self.inner.result_cache.get(&key) {
                ServiceMetrics::bump(&m.result_hits);
                if planned.semantic != planned.canonical {
                    // The hit was keyed by the minimized core, not the
                    // literal text — sharing only the PQA803 re-keying
                    // makes possible.
                    ServiceMetrics::bump(&m.semantic_cache_hits);
                }
                return Ok(QueryResponse {
                    rows,
                    engine: planned.plan.engine,
                    cache: CacheOutcome::ResultHit,
                    generation: snap.generation,
                    epoch: snap.epoch,
                    latency: start.elapsed(),
                });
            }
            ServiceMetrics::bump(&m.result_misses);
            // Before evaluating: can a registered view's maintained
            // relation answer this query by scan/projection (PQA801/802)?
            if let Some((rows, vsnap)) = self.view_answer(&planned, db_name) {
                ServiceMetrics::bump(&m.view_answered_queries);
                self.inner
                    .result_cache
                    .insert(result_key(&planned, &vsnap), Arc::clone(&rows));
                return Ok(QueryResponse {
                    rows,
                    engine: "view-scan",
                    cache: if plan_hit {
                        CacheOutcome::PlanHit
                    } else {
                        CacheOutcome::Miss
                    },
                    generation: vsnap.generation,
                    epoch: vsnap.epoch,
                    latency: start.elapsed(),
                });
            }
            let rows = self.admit_and_run(
                JobWork::Evaluate(Arc::clone(&planned)),
                snap.clone(),
                limits,
            )?;
            Ok(QueryResponse {
                rows,
                engine: planned.plan.engine,
                cache: if plan_hit {
                    CacheOutcome::PlanHit
                } else {
                    CacheOutcome::Miss
                },
                generation: snap.generation,
                epoch: snap.epoch,
                latency: start.elapsed(),
            })
        })();
        match &outcome {
            Ok(resp) => {
                ServiceMetrics::bump(&m.queries_served);
                m.latency.record(resp.latency);
            }
            Err(ServiceError::Overloaded { .. }) => ServiceMetrics::bump(&m.rejected_overload),
            Err(e) if e.is_resource_exhausted() => ServiceMetrics::bump(&m.resource_exhausted),
            Err(ServiceError::ShuttingDown) => {}
            Err(_) => ServiceMetrics::bump(&m.errors),
        }
        outcome
    }

    /// Count the answers of `src` against the named database under
    /// `limits` — the `QUERY @count` / `@count_by(x̄)` path.
    ///
    /// The answer is a relation shaped for the wire and the cache: one row
    /// with the single attribute `count` ([`CountMode::Total`]) or one row
    /// per group with attributes `x̄…, count` ([`CountMode::Grouped`]).
    /// Counts beyond `i64` are carried as exact decimal strings. Counting
    /// runs **without enumerating** the answer set whenever the `PQA7xx`
    /// analysis allows (acyclic or bounded-hypertree-width pure queries),
    /// and degrades to enumerate-then-count otherwise; results are cached
    /// under the same relation-epoch fingerprint scheme as plain answers,
    /// so IVM maintenance patches cached counts in place.
    ///
    /// # Errors
    /// As for [`QueryService::query`], plus
    /// [`ServiceError::CountOverflow`] when the exact count exceeds `u128`
    /// (a wrapped count is never returned).
    pub fn query_count(
        &self,
        db_name: &str,
        src: &str,
        mode: &CountMode,
        limits: RequestLimits,
    ) -> Result<QueryResponse> {
        let start = Instant::now();
        self.check_admitting()?;
        let m = &self.inner.metrics;
        let outcome = (|| {
            let (planned, plan_hit) = self.planned_count(src)?;
            let snap = self.inner.catalog.snapshot(db_name)?;
            let key = count_result_key(&planned, mode, &snap);
            if let Some(rows) = self.inner.result_cache.get(&key) {
                ServiceMetrics::bump(&m.result_hits);
                return Ok(QueryResponse {
                    rows,
                    engine: planned.plan.engine,
                    cache: CacheOutcome::ResultHit,
                    generation: snap.generation,
                    epoch: snap.epoch,
                    latency: start.elapsed(),
                });
            }
            ServiceMetrics::bump(&m.result_misses);
            let rows = self.admit_and_run(
                JobWork::Count(Arc::clone(&planned), mode.clone()),
                snap.clone(),
                limits,
            )?;
            Ok(QueryResponse {
                rows,
                engine: planned.plan.engine,
                cache: if plan_hit {
                    CacheOutcome::PlanHit
                } else {
                    CacheOutcome::Miss
                },
                generation: snap.generation,
                epoch: snap.epoch,
                latency: start.elapsed(),
            })
        })();
        match &outcome {
            Ok(resp) => {
                ServiceMetrics::bump(&m.queries_served);
                ServiceMetrics::bump(&m.count_queries);
                m.latency.record(resp.latency);
                m.count_latency.record(resp.latency);
            }
            Err(ServiceError::Overloaded { .. }) => ServiceMetrics::bump(&m.rejected_overload),
            Err(e) if e.is_resource_exhausted() => ServiceMetrics::bump(&m.resource_exhausted),
            Err(ServiceError::ShuttingDown) => {}
            Err(_) => ServiceMetrics::bump(&m.errors),
        }
        outcome
    }

    fn admit_and_run(
        &self,
        work: JobWork,
        snapshot: DbSnapshot,
        limits: RequestLimits,
    ) -> Result<Arc<Relation>> {
        let limits = limits.or(self.inner.config.default_limits);
        let ctx = governor_ctx(limits, &self.inner.cancel);
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Result<Arc<Relation>>>(1);
        let job = Job {
            work,
            snapshot,
            ctx,
            reply: reply_tx,
        };
        {
            let guard = self.job_tx.lock().expect("job_tx poisoned");
            let Some(tx) = guard.as_ref() else {
                return Err(ServiceError::ShuttingDown);
            };
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    return Err(ServiceError::Overloaded {
                        queue_depth: self.inner.config.queue_depth,
                    });
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServiceError::ShuttingDown),
            }
        }
        ServiceMetrics::bump(&self.inner.metrics.jobs_admitted);
        reply_rx.recv().map_err(|_| ServiceError::ShuttingDown)?
    }

    // ---- observability & lifecycle ----

    /// Point-in-time metrics snapshot (includes cache sizes indirectly via
    /// the hit/miss counters; see [`MetricsSnapshot`]), with the intra-query
    /// exec-pool occupancy counters folded in.
    pub fn stats(&self) -> MetricsSnapshot {
        let mut s = self.inner.metrics.snapshot();
        let pool = self.inner.exec.stats();
        s.exec_threads = pool.threads as u64;
        s.exec_tasks_run = pool.tasks_run;
        s.exec_peak_active = pool.peak as u64;
        if let Some(d) = &self.inner.durability {
            let c = d.counters();
            s.wal_appends = c.wal_appends;
            s.wal_bytes = c.wal_bytes;
            s.snapshots_taken = c.snapshots_taken;
            let r = d.recovery_stats();
            s.recovery_replayed_records = r.replayed_records;
            s.last_recovery_ms = r.elapsed_ms;
        }
        s
    }

    /// Entries currently in (plan cache, result cache).
    pub fn cache_sizes(&self) -> (usize, usize) {
        (self.inner.plan_cache.len(), self.inner.result_cache.len())
    }

    /// Drop both cache levels (counters persist). Mainly for benchmarks
    /// that want repeatable cold runs.
    pub fn clear_caches(&self) {
        self.inner.plan_cache.clear();
        self.inner.result_cache.clear();
    }

    /// Stop the service: refuse new work, cancel in-flight governed
    /// evaluations cooperatively, and join the worker pool. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.cancel.cancel();
        // Dropping the subscription senders disconnects every update
        // stream, so `SUBSCRIBE` loops observe the shutdown and end.
        self.inner
            .views
            .lock()
            .expect("views poisoned")
            .subs
            .clear();
        // Dropping the sender disconnects the queue: workers drain what is
        // already admitted (each job's context sees the cancelled token at
        // its next clock check) and then exit.
        self.job_tx.lock().expect("job_tx poisoned").take();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Gracefully drain the service: refuse new work, let already-admitted
    /// jobs **finish** (unlike [`QueryService::shutdown`], the cancellation
    /// token is not tripped), join the worker pool, and — when durability
    /// is on — seal the final state in a snapshot. Idempotent with
    /// `shutdown`: whichever runs first wins, the other becomes a no-op.
    ///
    /// # Errors
    /// [`ServiceError::Durability`] when the final snapshot fails (the
    /// service is still stopped).
    pub fn drain(&self) -> Result<()> {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        // Subscriptions end (their senders drop), then the queue disconnects
        // without cancelling: workers finish every admitted job under its
        // own governor, then exit.
        self.inner
            .views
            .lock()
            .expect("views poisoned")
            .subs
            .clear();
        self.job_tx.lock().expect("job_tx poisoned").take();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if self.inner.durability.is_some() {
            self.inner.catalog.persist()?;
        }
        Ok(())
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, inner: &Inner) {
    loop {
        // Hold the receiver lock only while blocked on recv; competing
        // workers queue on the mutex, which is the standard shared-receiver
        // pool shape for std mpsc.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        // Intra-query parallel path: when both the service knob and the
        // plan's recommended degree exceed 1, move the request limits into a
        // shared envelope and fan the evaluation out on the exec pool. The
        // engines' parallel paths produce the same relation (or the same
        // exact count) as the serial ones at any degree, so this choice is
        // invisible to the caller (except in STATS).
        let out = match &job.work {
            JobWork::Evaluate(planned) => {
                let parallel = inner.exec.threads() > 1 && planned.plan.parallelism > 1;
                if let EngineChoice::Hypertree(d) = &planned.plan.choice {
                    inner.metrics.record_hypertree_width(d.width());
                }
                let out = if parallel {
                    ServiceMetrics::bump(&inner.metrics.parallel_queries);
                    let shared = job.ctx.into_shared();
                    planned.plan.execute_parallel(
                        &planned.query,
                        &job.snapshot.db,
                        &shared,
                        &inner.exec,
                    )
                } else {
                    planned
                        .plan
                        .execute_governed(&planned.query, &job.snapshot.db, &job.ctx)
                }
                .map(Arc::new)
                .map_err(ServiceError::from);
                if let Ok(rows) = &out {
                    let key = result_key(planned, &job.snapshot);
                    inner.result_cache.insert(key, Arc::clone(rows));
                }
                out
            }
            JobWork::Count(planned, mode) => {
                let parallel = inner.exec.threads() > 1 && planned.plan.parallelism > 1;
                if let CountChoice::Hypertree(d) = &planned.plan.choice {
                    inner.metrics.record_hypertree_width(d.width());
                }
                if parallel {
                    ServiceMetrics::bump(&inner.metrics.parallel_queries);
                }
                let out = match mode {
                    CountMode::Total => if parallel {
                        let shared = job.ctx.into_shared();
                        planned.plan.execute_parallel(
                            &planned.query,
                            &job.snapshot.db,
                            &shared,
                            &inner.exec,
                        )
                    } else {
                        planned
                            .plan
                            .execute_governed(&planned.query, &job.snapshot.db, &job.ctx)
                    }
                    .and_then(|c| count_relation(&c)),
                    CountMode::Grouped(groups) => if parallel {
                        let shared = job.ctx.into_shared();
                        planned.plan.execute_by_parallel(
                            &planned.query,
                            &job.snapshot.db,
                            groups,
                            &shared,
                            &inner.exec,
                        )
                    } else {
                        planned.plan.execute_by_governed(
                            &planned.query,
                            &job.snapshot.db,
                            groups,
                            &job.ctx,
                        )
                    }
                    .and_then(|counted| counted.to_relation("count")),
                }
                .map(Arc::new)
                .map_err(ServiceError::from);
                if let Ok(rows) = &out {
                    let key = count_result_key(planned, mode, &job.snapshot);
                    inner.result_cache.insert(key, Arc::clone(rows));
                }
                out
            }
        };
        // The requester may have vanished; nothing to do about it.
        let _ = job.reply.send(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_engine::EngineError;

    const DB_TEXT: &str = "R(a, b):\n  1, 2\n  2, 3\nS(b, c):\n  2, 9\n  3, 7\n";

    fn service() -> QueryService {
        let svc = QueryService::new(ServiceConfig {
            workers: 2,
            queue_depth: 8,
            ..Default::default()
        });
        svc.load_str("d", DB_TEXT).unwrap();
        svc
    }

    #[test]
    fn cold_then_plan_then_result_cached() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let cold = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(cold.rows.len(), 2);
        let warm = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(warm.cache, CacheOutcome::ResultHit);
        assert_eq!(warm.rows, cold.rows);
        // Same plan, different database ⇒ plan hit but result miss.
        svc.load_str("d2", DB_TEXT).unwrap();
        let other = svc.query("d2", src, RequestLimits::default()).unwrap();
        assert_eq!(other.cache, CacheOutcome::PlanHit);
        let s = svc.stats();
        assert_eq!(s.queries_served, 3);
        assert_eq!(s.result_hits, 1);
        assert_eq!(s.plan_hits, 2);
    }

    #[test]
    fn whitespace_variants_share_the_plan_cache_entry() {
        let svc = service();
        svc.query("d", "G(x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        let r = svc
            .query("d", "G(x)   :-   R(x, y).", RequestLimits::default())
            .unwrap();
        assert_eq!(r.cache, CacheOutcome::ResultHit);
    }

    #[test]
    fn whitespace_inside_string_literals_is_significant() {
        // Regression: a raw-text normalization that collapsed whitespace
        // conflated these two distinct queries and cross-served answers.
        let svc = service();
        let one_space = r#"G(x) :- R(x, "a b")."#;
        let two_spaces = r#"G(x) :- R(x, "a  b")."#;
        let a = svc.query("d", one_space, RequestLimits::default()).unwrap();
        assert_eq!(a.cache, CacheOutcome::Miss);
        let b = svc
            .query("d", two_spaces, RequestLimits::default())
            .unwrap();
        assert_ne!(
            b.cache,
            CacheOutcome::ResultHit,
            "distinct literals must not share a cache entry"
        );
        assert_eq!(svc.cache_sizes().0, 2, "two distinct plan-cache entries");
    }

    #[test]
    fn alpha_equivalent_queries_share_cache_entries() {
        let svc = service();
        svc.query("d", "G(x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        let r = svc
            .query("d", "G(a) :- R(a, b).", RequestLimits::default())
            .unwrap();
        assert_eq!(r.cache, CacheOutcome::ResultHit);
    }

    #[test]
    fn mutation_invalidates_the_result_cache() {
        let svc = service();
        let src = "G(x) :- R(x, y).";
        let before = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(before.rows.len(), 2);
        svc.update_database("d", |db| {
            db.relation_mut("R").unwrap().insert(tuple![7, 8]).unwrap();
        })
        .unwrap();
        let after = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_ne!(after.cache, CacheOutcome::ResultHit, "stale epoch served");
        assert_eq!(after.rows.len(), 3);
        assert!(after.epoch > before.epoch);
    }

    #[test]
    fn reload_invalidates_the_result_cache() {
        let svc = service();
        let src = "G(x) :- R(x, y).";
        svc.query("d", src, RequestLimits::default()).unwrap();
        svc.load_str("d", "R(a, b):\n  5, 6\n").unwrap();
        let after = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_ne!(after.cache, CacheOutcome::ResultHit);
        assert_eq!(after.rows.len(), 1);
    }

    #[test]
    fn unknown_database_and_parse_errors_are_structured() {
        let svc = service();
        assert!(matches!(
            svc.query("nope", "G(x) :- R(x, y).", RequestLimits::default()),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            svc.query("d", "this is not a query", RequestLimits::default()),
            Err(ServiceError::Parse(_))
        ));
        assert_eq!(svc.stats().errors, 2, "both failures count as errors");
    }

    #[test]
    fn per_request_tuple_budget_trips() {
        let svc = service();
        let err = svc
            .query(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                RequestLimits {
                    tuple_budget: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
        assert_eq!(svc.stats().resource_exhausted, 1);
        // Failed evaluations are not cached.
        let ok = svc
            .query(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                RequestLimits::default(),
            )
            .unwrap();
        assert_ne!(ok.cache, CacheOutcome::ResultHit);
    }

    #[test]
    fn explain_reports_plan_and_cache_state() {
        let svc = service();
        let src = "G(e) :- R(e, p), R(e, p2), p != p2.";
        let e1 = svc.explain("d", src).unwrap();
        assert!(!e1.plan_was_cached);
        assert!(!e1.result_is_cached);
        assert!(e1.engine.starts_with("colorcoding"));
        assert_eq!(e1.color_parameter, Some(2));
        svc.query("d", src, RequestLimits::default()).unwrap();
        let e2 = svc.explain("d", src).unwrap();
        assert!(e2.plan_was_cached);
        assert!(e2.result_is_cached);
        assert_eq!(e1.fingerprint, e2.fingerprint);
    }

    #[test]
    fn explain_names_the_answer_source() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let e = svc.explain("d", src).unwrap();
        assert_eq!(e.answer_source, "cold");
        svc.query("d", src, RequestLimits::default()).unwrap();
        let e = svc.explain("d", src).unwrap();
        assert_eq!(e.answer_source, "result-cache");
        // Same plan, fresh database: the plan cache is what would help.
        svc.load_str("d2", DB_TEXT).unwrap();
        let e = svc.explain("d2", src).unwrap();
        assert_eq!(e.answer_source, "plan-cache");
        assert!(!e.provably_empty);
    }

    #[test]
    fn width_fields_flow_through_explain_analyze_and_stats() {
        let svc = service();
        svc.load_str("tri", "E(a, b):\n  1, 2\n  2, 3\n  3, 1\n")
            .unwrap();
        let src = "G :- E(x, y), E(y, z), E(z, x).";
        let e = svc.explain("tri", src).unwrap();
        assert!(e.engine.starts_with("hypertree"), "{}", e.engine);
        assert_eq!(e.hypertree_width, Some(2));
        assert!(e.width_exact);
        assert!(e.decomposition.is_some());
        let a = svc.analyze("tri", src).unwrap();
        assert_eq!(a.cell, "cyclic-bounded-width");
        assert_eq!(a.hypertree_width, Some(2));
        assert!(a.width_exact);
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA601")));
        // Acyclic queries don't touch the hypertree counters...
        svc.query("d", "G(x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        assert_eq!(svc.stats().hypertree_queries, 0);
        // ...but evaluating the triangle bumps the width histogram.
        let out = svc.query("tri", src, RequestLimits::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        let s = svc.stats();
        assert_eq!(s.hypertree_queries, 1);
        assert_eq!(s.hypertree_width_counts[1], 1, "width-2 bucket");
    }

    #[test]
    fn analyze_reports_diagnostics_and_minimization() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c), R(x, y2).";
        let a1 = svc.analyze("d", src).unwrap();
        assert!(!a1.plan_was_cached);
        assert_eq!(a1.cell, "acyclic-pure");
        let minimized = a1.minimized.as_deref().expect("redundant atom drops");
        assert!(!minimized.contains("y2"), "{minimized}");
        assert!(a1.diagnostics.iter().any(|d| d.starts_with("PQA301")));
        assert!(a1.diagnostics.iter().any(|d| d.starts_with("PQA402")));
        // Second call reuses the plan-cache entry filled by the first.
        let a2 = svc.analyze("d", src).unwrap();
        assert!(a2.plan_was_cached);
        assert_eq!(a2.diagnostics, a1.diagnostics);
    }

    #[test]
    fn analyze_schema_pass_and_invalid_queries() {
        let svc = service();
        // Unknown relation: an error diagnostic, but NOT provably empty
        // (evaluation fails rather than returning zero tuples).
        let a = svc.analyze("d", "G(x) :- T(x, y).").unwrap();
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA201")));
        assert!(!a.provably_empty);
        // Arity mismatch against the live schema.
        let a = svc.analyze("d", "G(x) :- R(x, y, z).").unwrap();
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA202")));
        // A query that fails validation never reaches the planner, but
        // ANALYZE still explains why.
        let a = svc.analyze("d", "G(z) :- R(x, y).").unwrap();
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA002")));
        assert!(!a.plan_was_cached);
        assert_eq!(svc.cache_sizes().0, 2, "invalid query not plan-cached");
    }

    #[test]
    fn analyze_datalog_reports_the_whole_program() {
        let svc = service();
        let src = "T(x, y) :- R(x, y).\n\
                   T(x, z) :- R(x, y), T(y, z).\n\
                   U(x) :- R(x, y).\n\
                   ?- T";
        let a = svc.analyze_datalog("d", src).unwrap();
        assert_eq!(a.goal, "T");
        assert_eq!((a.rules_total, a.rules_live), (3, 2));
        assert_eq!(a.dead_rules, vec![2]);
        assert_eq!(a.edb, vec!["R".to_string()]);
        assert_eq!(a.recursion, "linear");
        assert!(!a.provably_empty);
        let rewritten = a.rewritten.as_deref().expect("dead rule pruned");
        assert!(!rewritten.contains("U("), "{rewritten}");
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA501")));
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA510")));
    }

    #[test]
    fn analyze_datalog_runs_the_schema_pass_against_the_catalog() {
        let svc = service();
        // `R` exists with arity 2 in db `d`; `Z` does not exist at all.
        let a = svc
            .analyze_datalog("d", "G(x) :- R(x, y), Z(y). ?- G")
            .unwrap();
        assert!(a.diagnostics.iter().any(|d| d.starts_with("PQA201")));
        assert!(matches!(
            svc.analyze_datalog("nope", "G(x) :- R(x, y). ?- G"),
            Err(ServiceError::UnknownDatabase(_))
        ));
        assert!(matches!(
            svc.analyze_datalog("d", "not a program"),
            Err(ServiceError::Parse(_))
        ));
    }

    #[test]
    fn provably_empty_queries_skip_evaluation() {
        let svc = service();
        let src = "G(x) :- R(x, y), x != x.";
        let a = svc.analyze("d", src).unwrap();
        assert!(a.provably_empty);
        let resp = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(resp.engine, "constant (provably empty)");
        assert!(resp.rows.is_empty());
    }

    #[test]
    fn shutdown_is_idempotent_and_refuses_new_work() {
        let svc = service();
        svc.shutdown();
        svc.shutdown();
        assert!(matches!(
            svc.query("d", "G(x) :- R(x, y).", RequestLimits::default()),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            svc.load_str("x", "R(a):\n 1\n"),
            Err(ServiceError::ShuttingDown)
        ));
    }

    #[test]
    fn disabled_caches_still_answer_correctly() {
        let svc = QueryService::new(ServiceConfig {
            workers: 1,
            plan_cache_capacity: 0,
            result_cache_capacity: 0,
            ..Default::default()
        });
        svc.load_str("d", DB_TEXT).unwrap();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let a = svc.query("d", src, RequestLimits::default()).unwrap();
        let b = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(b.cache, CacheOutcome::Miss);
        assert_eq!(svc.cache_sizes(), (0, 0));
    }

    #[test]
    fn oversubscribed_configs_are_rejected() {
        let bad = ServiceConfig {
            workers: 16,
            intra_query_threads: 8, // 128 > MAX_TOTAL_THREADS
            ..Default::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ServiceError::InvalidConfig(_))
        ));
        let err = QueryService::try_new(bad).map(|_| ()).unwrap_err();
        assert_eq!(err.code(), "invalid-config");
        assert!(err.to_string().contains("128"), "{err}");
        // The knobs are independently configurable below the cap.
        let ok = ServiceConfig {
            workers: 16,
            intra_query_threads: 4, // exactly MAX_TOTAL_THREADS
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        // Degenerate zero values are clamped, not rejected.
        assert!(ServiceConfig {
            workers: 0,
            intra_query_threads: 0,
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn parallel_service_answers_match_serial_and_count_in_stats() {
        let serial = QueryService::new(ServiceConfig {
            workers: 2,
            intra_query_threads: 1,
            ..Default::default()
        });
        let parallel = QueryService::new(ServiceConfig {
            workers: 2,
            intra_query_threads: 4,
            ..Default::default()
        });
        for svc in [&serial, &parallel] {
            svc.load_str("d", DB_TEXT).unwrap();
        }
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), S(y, c), x != c.",
        ] {
            let a = serial.query("d", src, RequestLimits::default()).unwrap();
            let b = parallel.query("d", src, RequestLimits::default()).unwrap();
            assert_eq!(a.rows, b.rows, "{src}");
        }
        assert_eq!(serial.stats().parallel_queries, 0);
        let s = parallel.stats();
        assert_eq!(s.parallel_queries, 3);
        assert_eq!(s.exec_threads, 4);
        assert!(
            s.exec_tasks_run > 0,
            "parallel evaluations must schedule pool tasks"
        );
        assert!(s.exec_peak_active >= 1);
        // Budget errors surface identically on the parallel path (clear the
        // result cache so the probe actually evaluates).
        parallel.clear_caches();
        let err = parallel
            .query(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                RequestLimits {
                    tuple_budget: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
    }

    #[test]
    fn zero_deadline_reports_timeout_not_a_wrong_answer() {
        let svc = service();
        // Deadline checks are amortized, so a tiny query may still finish;
        // the contract is that the outcome is either the full correct
        // answer or a structured timeout — never a truncated relation.
        match svc.query(
            "d",
            "G(x, c) :- R(x, y), S(y, c).",
            RequestLimits {
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        ) {
            Ok(resp) => assert_eq!(resp.rows.len(), 2),
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        ServiceError::Engine(EngineError::ResourceExhausted { .. })
                    ),
                    "unexpected error: {e}"
                );
            }
        }
    }

    // ---- incremental views & subscriptions ----

    #[test]
    fn row_mutations_apply_and_report() {
        let svc = service();
        let ins = svc
            .insert_rows("d", "R", vec![tuple![7, 8], tuple![1, 2]])
            .unwrap();
        assert_eq!(ins.op, "inserted");
        assert_eq!(ins.requested, 2);
        assert_eq!(ins.applied, 1, "1,2 was already present");
        let del = svc.delete_rows("d", "R", vec![tuple![7, 8]]).unwrap();
        assert_eq!(del.op, "deleted");
        assert_eq!(del.applied, 1);
        assert!(del.epoch > ins.epoch);
        assert!(matches!(
            svc.insert_rows("d", "NoSuch", vec![tuple![1]]),
            Err(ServiceError::Data(DataError::UnknownRelation(_)))
        ));
        assert!(matches!(
            svc.insert_rows("nope", "R", vec![tuple![1, 2]]),
            Err(ServiceError::UnknownDatabase(_))
        ));
    }

    #[test]
    fn unrelated_mutation_keeps_the_result_cache_entry() {
        // Satellite payoff of the per-relation epoch vector: the key's
        // fingerprint only covers the relations the plan reads, so mutating
        // S must not evict a query over R.
        let svc = service();
        let src = "G(x) :- R(x, y).";
        svc.query("d", src, RequestLimits::default()).unwrap();
        svc.insert_rows("d", "S", vec![tuple![50, 60]]).unwrap();
        let after = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(after.cache, CacheOutcome::ResultHit, "S is not mentioned");
        // ...while mutating R does evict it.
        svc.insert_rows("d", "R", vec![tuple![7, 8]]).unwrap();
        let evicted = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_ne!(evicted.cache, CacheOutcome::ResultHit);
        assert_eq!(evicted.rows.len(), 3);
    }

    #[test]
    fn subscription_streams_deltas_and_patches_the_result_cache() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let sub = svc.subscribe("d", src).unwrap();
        assert_eq!(sub.rows.len(), 2);
        // The registration primed the result cache.
        let q = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(q.cache, CacheOutcome::ResultHit);
        // A relevant insertion pushes a delta...
        let ins = svc.insert_rows("d", "R", vec![tuple![9, 2]]).unwrap();
        assert_eq!(ins.views_maintained, 1);
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.added, vec![tuple![9, 9]]);
        assert!(update.removed.is_empty());
        assert!(!update.dropped);
        // ...and the maintained answer was installed under the new key, so
        // the post-mutation QUERY is *still* a result-cache hit.
        let patched = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(patched.cache, CacheOutcome::ResultHit);
        assert_eq!(patched.rows.len(), 3);
        assert!(patched.rows.contains(&tuple![9, 9]));
        // Deleting flips the sign.
        svc.delete_rows("d", "R", vec![tuple![9, 2]]).unwrap();
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.removed, vec![tuple![9, 9]]);
        // An irrelevant insertion pushes nothing.
        svc.insert_rows("d", "R", vec![tuple![70, 80]]).unwrap();
        assert!(sub.updates.try_recv().is_err());
        let s = svc.stats();
        assert_eq!(s.views_registered, 1);
        assert_eq!(s.subscriptions_active, 1);
        assert_eq!(s.deltas_pushed, 2);
        assert!(s.ivm_maintain_p99_micros >= 1, "passes were recorded");
        assert!(svc.unsubscribe(sub.id));
        assert!(!svc.unsubscribe(sub.id), "second unsubscribe is a no-op");
        let s = svc.stats();
        assert_eq!(s.views_registered, 0);
        assert_eq!(s.subscriptions_active, 0);
    }

    #[test]
    fn recursive_datalog_subscription_is_maintained() {
        let svc = QueryService::with_defaults();
        svc.load_str("g", "E(x, y):\n  1, 2\n  2, 3\n").unwrap();
        let prog = "T(x, y) :- E(x, y).\nT(x, z) :- T(x, y), E(y, z).\n?- T";
        let sub = svc.subscribe("g", prog).unwrap();
        assert_eq!(sub.rows.len(), 3, "1-2, 2-3, 1-3");
        svc.insert_rows("g", "E", vec![tuple![3, 4]]).unwrap();
        let update = sub.updates.try_recv().unwrap();
        let mut added = update.added.clone();
        added.sort();
        assert_eq!(added, vec![tuple![1, 4], tuple![2, 4], tuple![3, 4]]);
        // DRed handles the deletion: 2→3 severs everything through it.
        svc.delete_rows("g", "E", vec![tuple![2, 3]]).unwrap();
        let update = sub.updates.try_recv().unwrap();
        let mut removed = update.removed.clone();
        removed.sort();
        assert_eq!(
            removed,
            vec![tuple![1, 3], tuple![1, 4], tuple![2, 3], tuple![2, 4]]
        );
        assert_eq!(svc.answer_rows("g", sub.id).unwrap().len(), 2);
    }

    #[test]
    fn reload_refreshes_views_and_drop_ends_subscriptions() {
        let svc = service();
        let sub = svc.subscribe("d", "G(x) :- R(x, y).").unwrap();
        assert_eq!(sub.rows.len(), 2);
        // A wholesale reload recomputes the view and pushes the diff.
        svc.load_str("d", "R(a, b):\n  1, 2\nS(b, c):\n").unwrap();
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.removed, vec![tuple![2]]);
        assert!(!update.dropped);
        // Dropping the database ends the stream with a final marker.
        svc.drop_database("d").unwrap();
        let last = sub.updates.try_recv().unwrap();
        assert!(last.dropped);
        assert!(
            sub.updates.try_recv().is_err(),
            "sender is gone after the drop"
        );
        let s = svc.stats();
        assert_eq!(s.views_registered, 0);
        assert_eq!(s.subscriptions_active, 0);
    }

    #[test]
    fn untracked_update_falls_back_to_full_refresh() {
        let svc = service();
        let sub = svc.subscribe("d", "G(x) :- R(x, y).").unwrap();
        svc.update_database("d", |db| {
            db.relation_mut("R")
                .unwrap()
                .insert(tuple![41, 42])
                .unwrap();
        })
        .unwrap();
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.added, vec![tuple![41]]);
    }

    #[test]
    fn exhausted_maintenance_budget_falls_back_to_recompute() {
        // A default tuple budget small enough that the maintenance pass
        // trips it forces the registry's full-recompute fallback (run under
        // unlimited), so the answer is still exact and the fallback counts.
        let svc = QueryService::new(ServiceConfig {
            default_limits: RequestLimits {
                tuple_budget: Some(3),
                ..Default::default()
            },
            ..Default::default()
        });
        svc.load_str("d", "R(a, b):\n  1, 2\n").unwrap();
        let sub = svc.subscribe("d", "G(x, y) :- R(x, y).").unwrap();
        let rows: Vec<Tuple> = (0..40).map(|i| tuple![i + 10, i + 11]).collect();
        let ins = svc.insert_rows("d", "R", rows).unwrap();
        assert_eq!(ins.applied, 40);
        assert_eq!(ins.fallbacks, 1);
        let update = sub.updates.try_recv().unwrap();
        assert!(update.fell_back);
        assert_eq!(update.added.len(), 40);
        assert_eq!(svc.answer_rows("d", sub.id).unwrap().len(), 41);
        assert_eq!(svc.stats().ivm_maintain_fallbacks, 1);
    }

    // ---- semantic re-keying & view-based answering (PQA8xx) ----

    #[test]
    fn semantic_key_shares_result_cache_across_equivalent_cores() {
        let svc = service();
        // The core caches first...
        let core = svc
            .query("d", "G(a) :- R(a, b).", RequestLimits::default())
            .unwrap();
        assert_eq!(core.cache, CacheOutcome::Miss);
        // ...and a redundant query minimizing to the same core is a
        // result-cache hit without evaluating: distinct canonical forms,
        // one semantic key.
        let redundant = svc
            .query("d", "G(x) :- R(x, y), R(x, y2).", RequestLimits::default())
            .unwrap();
        assert_eq!(redundant.cache, CacheOutcome::ResultHit);
        assert_eq!(redundant.rows, core.rows);
        assert_eq!(svc.cache_sizes().0, 2, "two distinct plan-cache entries");
        let s = svc.stats();
        assert_eq!(s.result_hits, 1);
        assert_eq!(s.semantic_cache_hits, 1, "the hit crossed canonical forms");
    }

    #[test]
    fn semantic_key_still_honors_relation_epochs() {
        // The semantic re-keying composes with the epoch fingerprint: a
        // mutation of a mentioned relation must still evict, even when the
        // probing query differs textually from the one that cached.
        let svc = service();
        svc.query("d", "G(a) :- R(a, b).", RequestLimits::default())
            .unwrap();
        svc.insert_rows("d", "R", vec![tuple![7, 8]]).unwrap();
        let after = svc
            .query("d", "G(x) :- R(x, y), R(x, y2).", RequestLimits::default())
            .unwrap();
        assert_ne!(after.cache, CacheOutcome::ResultHit, "stale epoch served");
        assert_eq!(after.rows.len(), 3);
    }

    #[test]
    fn view_scan_answers_a_head_reordered_query() {
        let svc = service();
        let sub = svc.subscribe("d", "V(x, y) :- R(x, y).").unwrap();
        // Head-reordered: a different canonical form (so no result-cache
        // hit from the subscription priming), answered as the column
        // projection of the maintained view (PQA802).
        let resp = svc
            .query("d", "G(y, x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        assert_eq!(resp.engine, "view-scan");
        assert_eq!(resp.rows.attrs(), ["y", "x"], "query's own head attrs");
        assert_eq!(
            resp.rows.canonical_rows(),
            vec![tuple![2, 1], tuple![3, 2]],
            "columns swapped relative to R"
        );
        assert_eq!(svc.stats().view_answered_queries, 1);
        // The view answer was cached: the same text is now a result hit.
        let warm = svc
            .query("d", "G(y, x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::ResultHit);
        // After a relevant mutation the view is maintained and the next
        // query is served from the *updated* view, not a stale cache line.
        svc.insert_rows("d", "R", vec![tuple![8, 9]]).unwrap();
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.added, vec![tuple![8, 9]]);
        let after = svc
            .query("d", "G(y, x) :- R(x, y).", RequestLimits::default())
            .unwrap();
        assert_eq!(after.engine, "view-scan");
        assert!(after.rows.canonical_rows().contains(&tuple![9, 8]));
        assert_eq!(svc.stats().view_answered_queries, 2);
    }

    #[test]
    fn view_answers_agree_with_cold_evaluation_across_mutations() {
        // The rewrite-correctness oracle at the service level: a query
        // answered via a registered view must match what a view-less
        // service computes cold, across INSERT/DELETE batches.
        let with_views = service();
        let cold = service();
        with_views
            .subscribe("d", "V(x, c) :- R(x, y), S(y, c).")
            .unwrap();
        let q = "G(c, x) :- R(x, y), S(y, c).";
        let batches: [(&str, &str, Vec<Tuple>); 4] = [
            ("ins", "R", vec![tuple![9, 2], tuple![4, 3]]),
            ("del", "R", vec![tuple![1, 2]]),
            ("ins", "S", vec![tuple![3, 11]]),
            ("del", "S", vec![tuple![2, 9]]),
        ];
        for (op, rel, rows) in batches {
            for svc in [&with_views, &cold] {
                if op == "ins" {
                    svc.insert_rows("d", rel, rows.clone()).unwrap();
                } else {
                    svc.delete_rows("d", rel, rows.clone()).unwrap();
                }
            }
            let a = with_views.query("d", q, RequestLimits::default()).unwrap();
            let b = cold.query("d", q, RequestLimits::default()).unwrap();
            assert_eq!(a.rows.attrs(), b.rows.attrs());
            assert_eq!(a.rows.canonical_rows(), b.rows.canonical_rows());
            assert_eq!(a.engine, "view-scan");
        }
        assert_eq!(with_views.stats().view_answered_queries, 4);
        assert_eq!(cold.stats().view_answered_queries, 0);
    }

    #[test]
    fn subscriptions_reuse_equivalent_views() {
        let svc = service();
        let s1 = svc.subscribe("d", "G(x) :- R(x, y).").unwrap();
        // Alpha-renamed with a different head name: the same view.
        let s2 = svc.subscribe("d", "H(a) :- R(a, b).").unwrap();
        assert_eq!(s1.rows, s2.rows);
        let st = svc.stats();
        assert_eq!(st.views_registered, 1, "one materialization, shared");
        assert_eq!(st.subscriptions_active, 2);
        // Both subscribers see every delta of the shared view.
        svc.insert_rows("d", "R", vec![tuple![7, 8]]).unwrap();
        assert_eq!(s1.updates.try_recv().unwrap().added, vec![tuple![7]]);
        assert_eq!(s2.updates.try_recv().unwrap().added, vec![tuple![7]]);
        // Unsubscribing one keeps the view alive for the other...
        assert!(svc.unsubscribe(s1.id));
        assert_eq!(svc.stats().views_registered, 1);
        svc.insert_rows("d", "R", vec![tuple![20, 21]]).unwrap();
        assert_eq!(s2.updates.try_recv().unwrap().added, vec![tuple![20]]);
        // ...and the last unsubscribe deregisters it.
        assert!(svc.unsubscribe(s2.id));
        let st = svc.stats();
        assert_eq!(st.views_registered, 0);
        assert_eq!(st.subscriptions_active, 0);
    }

    #[test]
    fn explain_reports_view_answering_and_the_equivalence_class() {
        let svc = service();
        let before = svc.explain("d", "G(y, x) :- R(x, y).").unwrap();
        assert!(before.answered_from_view.is_none());
        svc.subscribe("d", "V(x, y) :- R(x, y).").unwrap();
        let e = svc.explain("d", "G(y, x) :- R(x, y).").unwrap();
        assert_eq!(e.answered_from_view.as_deref(), Some("sub-0"));
        assert_eq!(e.answer_source, "view-scan");
        assert!(!e.result_is_cached);
        // The equivalence class identifies the minimized core: a redundant
        // variant shares it while its literal fingerprint differs.
        let a = svc.explain("d", "G(a) :- R(a, b).").unwrap();
        let b = svc.explain("d", "G(x) :- R(x, y), R(x, y2).").unwrap();
        assert_eq!(a.equivalence_class, b.equivalence_class);
        assert_ne!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, a.equivalence_class, "core of a core");
    }

    #[test]
    fn count_query_caches_and_matches_enumeration() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let cold = svc
            .query_count("d", src, &CountMode::Total, RequestLimits::default())
            .unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(cold.rows.attrs(), ["count"]);
        assert_eq!(cold.rows.canonical_rows(), vec![tuple![2]]);
        assert!(
            cold.engine.starts_with("count-"),
            "acyclic query should count without enumerating, got {}",
            cold.engine
        );
        // Same text again: result-cache hit, same count.
        let warm = svc
            .query_count("d", src, &CountMode::Total, RequestLimits::default())
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::ResultHit);
        assert_eq!(warm.rows, cold.rows);
        // The count entry and the enumerating entry are distinct cache
        // lines: a plain QUERY after the counts is still a cold miss.
        let plain = svc.query("d", src, RequestLimits::default()).unwrap();
        assert_eq!(plain.cache, CacheOutcome::Miss);
        assert_eq!(plain.rows.len() as u64, 2);
        let s = svc.stats();
        assert_eq!(s.count_queries, 2);
        assert_eq!(s.queries_served, 3);
        assert!(s.count_latency_p99_micros >= 1);
    }

    #[test]
    fn grouped_count_returns_one_row_per_group() {
        let svc = service();
        // Group the join by x: 1 and 2 each reach exactly one (y, c) pair.
        let resp = svc
            .query_count(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                &CountMode::Grouped(vec!["x".into()]),
                RequestLimits::default(),
            )
            .unwrap();
        assert_eq!(resp.rows.attrs(), ["x", "count"]);
        assert_eq!(resp.rows.canonical_rows(), vec![tuple![1, 1], tuple![2, 1]]);
        // Different grouping, different cache line.
        let total = svc
            .query_count(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                &CountMode::Total,
                RequestLimits::default(),
            )
            .unwrap();
        assert_eq!(total.cache, CacheOutcome::PlanHit, "count plan is shared");
        assert_eq!(total.rows.canonical_rows(), vec![tuple![2]]);
    }

    #[test]
    fn ivm_patches_cached_counts_in_place() {
        let svc = service();
        let src = "G(x, c) :- R(x, y), S(y, c).";
        let sub = svc.subscribe("d", src).unwrap();
        // Registration primed the @count entry from the materialization.
        let primed = svc
            .query_count("d", src, &CountMode::Total, RequestLimits::default())
            .unwrap();
        assert_eq!(primed.cache, CacheOutcome::ResultHit);
        assert_eq!(primed.rows.canonical_rows(), vec![tuple![2]]);
        // A relevant insert maintains the view; the cached count moves to
        // the new fingerprint with the new value — still a ResultHit.
        svc.insert_rows("d", "R", vec![tuple![9, 2]]).unwrap();
        let update = sub.updates.try_recv().unwrap();
        assert_eq!(update.cardinality, 3, "delta carries |V(d)| after apply");
        let patched = svc
            .query_count("d", src, &CountMode::Total, RequestLimits::default())
            .unwrap();
        assert_eq!(patched.cache, CacheOutcome::ResultHit);
        assert_eq!(patched.rows.canonical_rows(), vec![tuple![3]]);
    }

    #[test]
    fn count_respects_limits_and_shutdown() {
        let svc = service();
        // A zero tuple budget trips on the sweep's first charge — the
        // counting path runs under the same governor as enumeration.
        let err = svc
            .query_count(
                "d",
                "G(x, c) :- R(x, y), S(y, c).",
                &CountMode::Total,
                RequestLimits {
                    tuple_budget: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err:?}");
        svc.shutdown();
        let err = svc
            .query_count(
                "d",
                "G(x) :- R(x, y).",
                &CountMode::Total,
                RequestLimits::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::ShuttingDown));
    }
}
