//! The service's structured error type.

use std::fmt;

use pq_count::CountError;
use pq_data::DataError;
use pq_engine::EngineError;
use pq_query::QueryError;

use crate::wal::RecoveryError;

/// Errors surfaced by [`crate::QueryService`] and the wire protocol.
///
/// `#[non_exhaustive]` for the same reason as the substrate errors:
/// downstream matches must carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Admission control rejected the request: the worker queue was full.
    /// Structured, immediate backpressure — the service never queues
    /// unboundedly.
    Overloaded {
        /// The bounded queue depth that was full.
        queue_depth: usize,
    },
    /// The named database is not in the catalog.
    UnknownDatabase(String),
    /// The query (or database text) failed to parse or validate.
    Parse(QueryError),
    /// A data-layer failure (bad database text, arity mismatch, …).
    Data(DataError),
    /// Evaluation failed; includes resource exhaustion
    /// ([`EngineError::ResourceExhausted`]) when a per-request limit
    /// tripped.
    Engine(EngineError),
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
    /// A malformed wire-protocol request.
    Protocol(String),
    /// The service configuration is invalid (e.g. the worker pool times the
    /// intra-query parallelism degree oversubscribes
    /// [`crate::service::MAX_TOTAL_THREADS`]).
    InvalidConfig(String),
    /// A client stalled past the server's read/write timeout; the
    /// connection is closed after this error is (best-effort) reported, so
    /// a slow or dead peer cannot pin a connection handler forever.
    RequestTimeout,
    /// The durability layer failed *after* the in-memory mutation applied
    /// (WAL append or snapshot I/O): the catalog is updated but the change
    /// may not survive a crash. Carries the rendered cause.
    Durability(String),
    /// Startup recovery found on-disk state that cannot be trusted (see
    /// [`RecoveryError`]); the service refuses to start rather than serve
    /// from a corrupt catalog.
    Recovery(RecoveryError),
    /// A `@count` request's exact count exceeds `u128`. Terminal for the
    /// query (no engine could produce the number), but the service keeps
    /// running — and a wrapped or truncated count is never returned.
    CountOverflow {
        /// The counting engine that detected the overflow.
        engine: &'static str,
    },
}

impl ServiceError {
    /// Short stable machine-readable code, used on the wire (`ERR <code> …`).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::UnknownDatabase(_) => "unknown-db",
            ServiceError::Parse(_) => "parse",
            ServiceError::Data(_) => "data",
            ServiceError::Engine(EngineError::ResourceExhausted { .. }) => "resource-exhausted",
            ServiceError::Engine(_) => "engine",
            ServiceError::ShuttingDown => "shutting-down",
            ServiceError::Protocol(_) => "proto",
            ServiceError::InvalidConfig(_) => "invalid-config",
            ServiceError::RequestTimeout => "request-timeout",
            ServiceError::Durability(_) => "durability",
            ServiceError::Recovery(_) => "recovery",
            ServiceError::CountOverflow { .. } => "count-overflow",
        }
    }

    /// Is this the admission-control rejection?
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServiceError::Overloaded { .. })
    }

    /// Did a per-request resource limit trip during evaluation?
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(
            self,
            ServiceError::Engine(EngineError::ResourceExhausted { .. })
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queue_depth } => {
                write!(f, "overloaded: job queue full ({queue_depth} waiting)")
            }
            ServiceError::UnknownDatabase(n) => write!(f, "unknown database `{n}`"),
            ServiceError::Parse(e) => write!(f, "parse error: {e}"),
            ServiceError::Data(e) => write!(f, "data error: {e}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            ServiceError::RequestTimeout => {
                write!(f, "request timed out waiting for client I/O")
            }
            ServiceError::Durability(m) => write!(f, "durability degraded: {m}"),
            ServiceError::Recovery(e) => write!(f, "recovery failed: {e}"),
            ServiceError::CountOverflow { engine } => {
                write!(
                    f,
                    "count overflow in {engine}: the exact count exceeds u128"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Parse(e) => Some(e),
            ServiceError::Data(e) => Some(e),
            ServiceError::Engine(e) => Some(e),
            ServiceError::Recovery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::Parse(e)
    }
}

impl From<DataError> for ServiceError {
    fn from(e: DataError) -> Self {
        ServiceError::Data(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<RecoveryError> for ServiceError {
    fn from(e: RecoveryError) -> Self {
        ServiceError::Recovery(e)
    }
}

impl From<CountError> for ServiceError {
    fn from(e: CountError) -> Self {
        match e {
            CountError::Overflow { engine } => ServiceError::CountOverflow { engine },
            CountError::Engine(e) => ServiceError::Engine(e),
            // `CountError` is non-exhaustive; render anything newer.
            other => ServiceError::Engine(EngineError::Unsupported(other.to_string())),
        }
    }
}

/// Result alias for this crate.
pub type Result<T, E = ServiceError> = std::result::Result<T, E>;
