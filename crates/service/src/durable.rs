//! The durability manager: snapshots, WAL rotation, and crash recovery.
//!
//! One [`Durability`] owns a data directory holding exactly two files:
//!
//! * `catalog.snap` — the latest snapshot: every database in the catalog at
//!   some instant, CRC-sealed, written to `catalog.snap.tmp` and **renamed
//!   into place** (atomic on POSIX), then the directory is fsynced;
//! * `catalog.wal` — the [`crate::wal`] log of every mutation since that
//!   snapshot.
//!
//! # Invariants
//!
//! 1. **Log order = catalog order.** Appends happen inside the catalog's
//!    write lock, after the generation bump (see [`crate::catalog`]); there
//!    is no window where two mutations can commit in one order and log in
//!    the other.
//! 2. **Snapshot ∘ rotate is crash-safe without two-phase commit.** Records
//!    are post-states, so replaying a *stale* WAL on top of a *newer*
//!    snapshot converges to the snapshot's own state or later; sequence
//!    numbers (`seq`) make it exact — the snapshot stores the last seq it
//!    covers and replay skips records at or below it. A crash between the
//!    snapshot rename and the WAL rotation therefore recovers correctly.
//! 3. **Recovery compacts, snapshot-first.** [`Durability::recover`]
//!    replays snapshot + WAL tail, then writes a fresh snapshot of the
//!    recovered state **before** truncating the WAL — the same order as
//!    `Durability::snapshot` — so repeated crash/restart cycles cannot
//!    grow the log without bound, a torn tail never survives into the next
//!    append, and a crash (or write failure) between the two steps leaves
//!    the old snapshot + intact WAL, which the next recovery simply
//!    replays again (Invariant 2 covers the reverse window).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use pq_data::Database;

use crate::wal::{
    crc32, decode_database, encode_database, io_err, put_u32, put_u64, replay_wal, Cursor,
    FsyncPolicy, RecoveryError, ReplayOp, Wal, WalOp,
};

/// Magic bytes opening the snapshot file (version 1).
pub const SNAP_MAGIC: &[u8; 8] = b"PQSNAP\x00\x01";

/// Snapshot file name within the data directory.
pub const SNAP_FILE: &str = "catalog.snap";
/// WAL file name within the data directory.
pub const WAL_FILE: &str = "catalog.wal";

/// Operator knobs for the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `catalog.snap` and `catalog.wal` (created if
    /// absent).
    pub dir: PathBuf,
    /// When appends reach stable storage (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Take a snapshot (and rotate the WAL) after this many appends;
    /// `0` disables automatic snapshots — only `PERSIST`, drain, and
    /// recovery compact the log.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// A config with the default policy (`fsync=always`, snapshot every 256
    /// appends) rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
        }
    }
}

/// What recovery found and did (logged on startup, surfaced in `STATS`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Databases restored from the snapshot file.
    pub snapshot_databases: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// WAL records skipped because the snapshot already covered them
    /// (a crash hit the window between snapshot rename and WAL rotation).
    pub skipped_records: u64,
    /// Bytes of a torn final record that were tolerated and discarded.
    pub torn_tail_bytes: u64,
    /// Wall-clock milliseconds the whole recovery (replay + compaction)
    /// took.
    pub elapsed_ms: u64,
}

/// Summary of one snapshot (the `PERSIST` response body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Databases written.
    pub databases: u64,
    /// Snapshot file size in bytes.
    pub bytes: u64,
}

struct Journal {
    wal: Wal,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Appends since the last snapshot (drives `snapshot_every`).
    appends_since_snapshot: u64,
}

/// The durability manager (see the module docs). Thread-safe: the journal
/// is a mutex the catalog's write path holds briefly per mutation.
pub struct Durability {
    config: DurabilityConfig,
    journal: Mutex<Journal>,
    recovery: RecoveryStats,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_taken: AtomicU64,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.config.dir)
            .field("fsync", &self.config.fsync)
            .field("snapshot_every", &self.config.snapshot_every)
            .finish_non_exhaustive()
    }
}

/// Live counters folded into the service `STATS`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityCounters {
    /// Records appended to the WAL.
    pub wal_appends: u64,
    /// Bytes appended to the WAL (headers included).
    pub wal_bytes: u64,
    /// Snapshots written (including the recovery compaction).
    pub snapshots_taken: u64,
}

impl Durability {
    /// Recover the catalog state from `config.dir` (creating it if absent),
    /// compact it (fresh snapshot + rotated WAL), and return the recovered
    /// `(name, database)` pairs alongside the ready-to-append manager.
    ///
    /// # Errors
    /// [`RecoveryError`] when the on-disk state cannot be trusted (bad
    /// magic, corrupt snapshot, corrupt interior WAL record) or plain I/O
    /// fails. A missing directory or missing files are *not* errors — they
    /// recover as an empty catalog (fresh deployment).
    pub fn recover(
        config: DurabilityConfig,
    ) -> Result<(Vec<(String, Database)>, Self), RecoveryError> {
        let started = Instant::now();
        fs::create_dir_all(&config.dir).map_err(|e| io_err(&config.dir, &e))?;
        let snap_path = config.dir.join(SNAP_FILE);
        let wal_path = config.dir.join(WAL_FILE);

        let (snap_seq, mut state) = read_snapshot(&snap_path)?.unwrap_or((0, Vec::new()));
        let snapshot_databases = state.len() as u64;
        let replay = replay_wal(&wal_path)?;
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        let mut max_seq = snap_seq;
        for (seq, op) in replay.ops {
            if seq <= snap_seq {
                skipped += 1;
                continue;
            }
            max_seq = max_seq.max(seq);
            replayed += 1;
            match op {
                ReplayOp::Install { name, db } | ReplayOp::Update { name, db } => {
                    match state.iter_mut().find(|(n, _)| *n == name) {
                        Some(slot) => slot.1 = db,
                        None => state.push((name, db)),
                    }
                }
                ReplayOp::Remove { name } => state.retain(|(n, _)| *n != name),
            }
        }

        // Compact: seal the recovered state in a fresh snapshot FIRST, then
        // truncate the log (Invariant 3). If the snapshot write fails — or a
        // crash lands between the two steps — the old snapshot and the
        // intact WAL are still on disk for the next recovery; truncating
        // first would turn a snapshot failure into silent loss of every
        // replayed (fsynced, acknowledged) record. A torn tail (if any)
        // dies here.
        {
            let entries: Vec<(&str, &Database)> =
                state.iter().map(|(n, db)| (n.as_str(), db)).collect();
            write_snapshot_file(&config.dir, max_seq, &entries)
                .map_err(|e| io_err(&config.dir, &e))?;
        }
        let wal = Wal::create(&wal_path, config.fsync).map_err(|e| io_err(&wal_path, &e))?;
        let dur = Durability {
            journal: Mutex::new(Journal {
                wal,
                next_seq: max_seq + 1,
                appends_since_snapshot: 0,
            }),
            config,
            recovery: RecoveryStats {
                snapshot_databases,
                replayed_records: replayed,
                skipped_records: skipped,
                torn_tail_bytes: replay.torn_tail_bytes,
                elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
            },
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(1),
        };
        Ok((state, dur))
    }

    /// The configuration this manager was recovered with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// What recovery found at startup.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Point-in-time journal counters.
    pub fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
        }
    }

    /// Append one mutation record. Returns `true` when the snapshot cadence
    /// is due (the caller — holding the catalog lock — should snapshot).
    ///
    /// # Errors
    /// The rendered I/O failure; the in-memory catalog mutation has already
    /// happened, so the caller surfaces this as degraded durability.
    ///
    /// Public for tests and low-level embedding; the usual writer is the
    /// catalog, which calls this under its write lock (Invariant 1).
    pub fn append(&self, op: &WalOp<'_>) -> Result<bool, String> {
        let mut j = self.journal.lock().expect("journal poisoned");
        let seq = j.next_seq;
        let bytes = j
            .wal
            .append(seq, op)
            .map_err(|e| format!("WAL append failed: {e}"))?;
        j.next_seq += 1;
        j.appends_since_snapshot += 1;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(self.config.snapshot_every != 0
            && j.appends_since_snapshot >= self.config.snapshot_every)
    }

    /// Arm an injected crash at an absolute WAL byte offset (test-only).
    #[cfg(feature = "crash-injection")]
    pub fn kill_wal_at_offset(&self, offset: u64) {
        self.journal
            .lock()
            .expect("journal poisoned")
            .wal
            .kill_at_offset(offset);
    }

    /// Current WAL length in bytes (test/diagnostic aid).
    pub fn wal_len_bytes(&self) -> u64 {
        self.journal
            .lock()
            .expect("journal poisoned")
            .wal
            .len_bytes()
    }

    /// Write a snapshot of `entries` and rotate the WAL. The caller must
    /// hold a catalog lock that excludes writers (read or write), so no
    /// record can land between the state capture and the rotation.
    ///
    /// # Errors
    /// The rendered I/O failure.
    pub(crate) fn snapshot(
        &self,
        entries: &[(&str, &Database)],
    ) -> Result<SnapshotSummary, String> {
        let mut j = self.journal.lock().expect("journal poisoned");
        let last_seq = j.next_seq - 1;
        let summary = self
            .write_snapshot_locked(last_seq, entries)
            .map_err(|e| format!("snapshot failed: {e}"))?;
        j.wal = Wal::create(self.config.dir.join(WAL_FILE), self.config.fsync)
            .map_err(|e| format!("WAL rotation failed: {e}"))?;
        j.appends_since_snapshot = 0;
        Ok(summary)
    }

    /// Write `catalog.snap` atomically (tmp + rename + dir fsync) and bump
    /// the snapshot counter. Does not touch the WAL.
    fn write_snapshot_locked(
        &self,
        last_seq: u64,
        entries: &[(&str, &Database)],
    ) -> io::Result<SnapshotSummary> {
        let summary = write_snapshot_file(&self.config.dir, last_seq, entries)?;
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        Ok(summary)
    }
}

/// Write `dir/catalog.snap` atomically: encode, write to `catalog.snap.tmp`,
/// fsync, rename into place, fsync the directory. Does not touch the WAL —
/// callers sequence the rotation *after* this succeeds (Invariant 3).
fn write_snapshot_file(
    dir: &Path,
    last_seq: u64,
    entries: &[(&str, &Database)],
) -> io::Result<SnapshotSummary> {
    let mut payload = Vec::new();
    put_u64(&mut payload, last_seq);
    put_u32(
        &mut payload,
        u32::try_from(entries.len()).expect("database count fits u32"),
    );
    for (name, db) in entries {
        crate::wal::put_str(&mut payload, name);
        encode_database(&mut payload, db);
    }
    let tmp = dir.join(format!("{SNAP_FILE}.tmp"));
    let fin = dir.join(SNAP_FILE);
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&crc32(&payload).to_le_bytes())?;
        f.write_all(&payload)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &fin)?;
    sync_dir(dir);
    Ok(SnapshotSummary {
        databases: entries.len() as u64,
        bytes: (SNAP_MAGIC.len() + 4 + payload.len()) as u64,
    })
}

/// Best-effort directory fsync so the rename itself is durable (POSIX
/// requires syncing the parent directory; ignored on platforms where
/// directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Decoded snapshot contents: the last WAL sequence number the snapshot
/// covers, and the catalog state it captured.
pub type SnapshotContents = (u64, Vec<(String, Database)>);

/// Read and verify the snapshot file. `Ok(None)` when absent (fresh
/// deployment).
///
/// # Errors
/// [`RecoveryError::CorruptSnapshot`] on checksum or decode failures,
/// [`RecoveryError::BadMagic`] / [`RecoveryError::Io`] as appropriate.
pub fn read_snapshot(path: &Path) -> Result<Option<SnapshotContents>, RecoveryError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| io_err(path, &e))?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, &e)),
    }
    if bytes.len() < SNAP_MAGIC.len() + 4 {
        return Err(RecoveryError::CorruptSnapshot {
            detail: format!("file too short ({} bytes)", bytes.len()),
        });
    }
    if &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(RecoveryError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let crc = u32::from_le_bytes(
        bytes[SNAP_MAGIC.len()..SNAP_MAGIC.len() + 4]
            .try_into()
            .expect("4 bytes"),
    );
    let payload = &bytes[SNAP_MAGIC.len() + 4..];
    if crc32(payload) != crc {
        return Err(RecoveryError::CorruptSnapshot {
            detail: "CRC mismatch".to_string(),
        });
    }
    let mut cur = Cursor::new(payload);
    let parse = |cur: &mut Cursor<'_>| -> Result<(u64, Vec<(String, Database)>), String> {
        let last_seq = cur.take_u64()?;
        let count = cur.take_u32()?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = cur.take_str()?.to_string();
            let db = decode_database(cur)?;
            out.push((name, db));
        }
        if !cur.is_empty() {
            return Err("trailing bytes after snapshot body".to_string());
        }
        Ok((last_seq, out))
    };
    parse(&mut cur)
        .map(Some)
        .map_err(|detail| RecoveryError::CorruptSnapshot { detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pq_durable_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn db(n: i64) -> Database {
        let mut d = Database::new();
        d.add_table("R", ["a"], (0..n).map(|i| tuple![i])).unwrap();
        d
    }

    #[test]
    fn fresh_directory_recovers_empty_and_compacts() {
        let dir = tmp("fresh");
        let (state, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        assert!(state.is_empty());
        assert_eq!(dur.recovery_stats().replayed_records, 0);
        assert!(
            dir.join(SNAP_FILE).exists(),
            "recovery compacts immediately"
        );
        assert!(dir.join(WAL_FILE).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_survive_reopen() {
        let dir = tmp("reopen");
        {
            let (_, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
            let d2 = db(2);
            let d5 = db(5);
            dur.append(&WalOp::Install { name: "a", db: &d2 }).unwrap();
            dur.append(&WalOp::Install { name: "b", db: &d5 }).unwrap();
            dur.append(&WalOp::Remove { name: "a" }).unwrap();
            // No snapshot, no drain — "the process died".
        }
        let (state, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].0, "b");
        assert_eq!(state[0].1, db(5));
        assert_eq!(dur.recovery_stats().replayed_records, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rotates_and_later_recovery_skips_covered_records() {
        let dir = tmp("rotate");
        {
            let (_, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
            let d3 = db(3);
            dur.append(&WalOp::Install { name: "a", db: &d3 }).unwrap();
            let before = dur.wal_len_bytes();
            dur.snapshot(&[("a", &d3)]).unwrap();
            assert!(dur.wal_len_bytes() < before, "rotation empties the log");
            let d4 = db(4);
            dur.append(&WalOp::Update { name: "a", db: &d4 }).unwrap();
        }
        let (state, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].1, db(4), "post-rotation record replayed");
        let s = dur.recovery_stats();
        assert_eq!(s.snapshot_databases, 1);
        assert_eq!(s.replayed_records, 1);
        assert_eq!(s.skipped_records, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_on_newer_snapshot_converges_via_seq_skip() {
        // Simulate the crash window: snapshot renamed, WAL not yet rotated.
        let dir = tmp("window");
        let d1 = db(1);
        let d9 = db(9);
        let (_, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        dur.append(&WalOp::Install { name: "x", db: &d1 }).unwrap();
        dur.append(&WalOp::Remove { name: "x" }).unwrap();
        dur.append(&WalOp::Install { name: "y", db: &d9 }).unwrap();
        // Write the snapshot WITHOUT rotating (private path): state after
        // all three records, last_seq = 3.
        dur.write_snapshot_locked(3, &[("y", &d9)]).unwrap();
        drop(dur);
        let (state, dur2) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(state.len(), 1, "x must not be resurrected");
        assert_eq!(state[0].0, "y");
        let s = dur2.recovery_stats();
        assert_eq!(s.skipped_records, 3, "all records covered by the snapshot");
        assert_eq!(s.replayed_records, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_compaction_failure_preserves_the_wal() {
        let dir = tmp("compactfail");
        {
            let (_, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
            let d3 = db(3);
            dur.append(&WalOp::Install { name: "a", db: &d3 }).unwrap();
            // No snapshot, no drain — "the process died".
        }
        // Block the snapshot temp path with a directory so the compaction
        // snapshot cannot be written (robust even when running as root,
        // unlike permission bits).
        let block = dir.join(format!("{SNAP_FILE}.tmp"));
        fs::create_dir_all(&block).unwrap();
        assert!(matches!(
            Durability::recover(DurabilityConfig::new(&dir)),
            Err(RecoveryError::Io { .. })
        ));
        // The failed compaction must not have truncated the WAL: unblock
        // and the appended record is still replayable.
        fs::remove_dir_all(&block).unwrap();
        let (state, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].0, "a");
        assert_eq!(state[0].1, db(3));
        assert_eq!(dur.recovery_stats().replayed_records, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tmp("snapcorrupt");
        let (_, dur) = Durability::recover(DurabilityConfig::new(&dir)).unwrap();
        let d2 = db(2);
        dur.snapshot(&[("a", &d2)]).unwrap();
        drop(dur);
        let path = dir.join(SNAP_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Durability::recover(DurabilityConfig::new(&dir)),
            Err(RecoveryError::CorruptSnapshot { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_cadence_reports_due() {
        let dir = tmp("cadence");
        let mut config = DurabilityConfig::new(&dir);
        config.snapshot_every = 2;
        let (_, dur) = Durability::recover(config).unwrap();
        let d1 = db(1);
        assert!(!dur.append(&WalOp::Install { name: "a", db: &d1 }).unwrap());
        assert!(dur.append(&WalOp::Update { name: "a", db: &d1 }).unwrap());
        dur.snapshot(&[("a", &d1)]).unwrap();
        assert!(!dur.append(&WalOp::Update { name: "a", db: &d1 }).unwrap());
        fs::remove_dir_all(&dir).ok();
    }
}
