//! A line-based TCP front end over [`QueryService`] — `std::net` +
//! `std::thread` only, honoring the workspace's no-runtime-deps rule.
//!
//! One thread accepts connections; each connection gets a handler thread
//! that reads request lines and writes framed responses (see
//! [`crate::protocol`]). Concurrency control lives in the *service* — a
//! flood of connections contends on the bounded job queue and is shed with
//! `ERR overloaded`, not on unbounded server-side buffers.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::ServiceError;
use crate::protocol::{
    parse_request, render_error, render_explain_response, render_load_response,
    render_query_response, render_stats_response, Request, END,
};
use crate::service::QueryService;

struct Shared {
    service: Arc<QueryService>,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A running server; dropping it does **not** stop the service (call
/// [`ServerHandle::stop`] or send `SHUTDOWN` over the wire).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Block until the accept loop exits (a `SHUTDOWN` request or
    /// [`ServerHandle::stop`]).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop the service and the accept loop, then block until the latter
    /// exits.
    pub fn stop(self) {
        self.shared.service.shutdown();
        request_stop(&self.shared);
        self.wait();
    }
}

/// Ask the accept loop to exit: set the flag, then poke the listener with a
/// throwaway connection so the blocking `accept` returns.
fn request_stop(shared: &Shared) {
    if !shared.stop.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Bind `addr` and serve `service` until a `SHUTDOWN` request (or
/// [`ServerHandle::stop`]).
///
/// # Errors
/// Propagates the bind failure.
pub fn serve(addr: impl ToSocketAddrs, service: Arc<QueryService>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let shared = Arc::new(Shared {
        service,
        stop: AtomicBool::new(false),
        addr: listener.local_addr()?,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("pq-service-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                // Handlers are detached: they die with their connection
                // (every post-shutdown request is answered with
                // `ERR shutting-down`, so lingering clients drain cleanly).
                let _ = std::thread::Builder::new()
                    .name("pq-service-conn".into())
                    .spawn(move || handle_connection(stream, &conn_shared));
            }
        })?;
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
    })
}

fn write_lines(stream: &mut TcpStream, lines: &[String]) -> io::Result<()> {
    let mut out = String::new();
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out.push_str(END);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

fn respond(service: &QueryService, line: &str) -> (Vec<String>, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return (vec![render_error(&e)], false),
    };
    match request {
        Request::Load { name, path } => match std::fs::read_to_string(&path) {
            Ok(text) => match service.load_str(&name, &text) {
                Ok(s) => (render_load_response(&s), false),
                Err(e) => (vec![render_error(&e)], false),
            },
            Err(e) => (
                vec![render_error(&ServiceError::Protocol(format!(
                    "cannot read `{path}`: {e}"
                )))],
                false,
            ),
        },
        Request::Query { name, src, limits } => match service.query(&name, &src, limits) {
            Ok(resp) => (render_query_response(&resp), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        Request::Explain { name, src } => match service.explain(&name, &src) {
            Ok(e) => (render_explain_response(&e), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        Request::Stats => (render_stats_response(&service.stats()), false),
        Request::Shutdown => (vec!["OK bye".to_string()], true),
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (lines, shutdown) = respond(&shared.service, &line);
        if write_lines(&mut writer, &lines).is_err() {
            break;
        }
        if shutdown {
            shared.service.shutdown();
            request_stop(shared);
            break;
        }
    }
}

/// Client-side helper: send one request line and collect the response lines
/// up to (excluding) the terminator. Shared by `examples/repl.rs` and the
/// integration tests.
///
/// # Errors
/// I/O failures, or an unterminated response (connection closed early).
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> io::Result<Vec<String>> {
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream.try_clone()?))
}

/// Read one framed response from `reader` (lines up to the `.` terminator).
///
/// # Errors
/// I/O failures, or EOF before the terminator.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Vec<String>> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line == END {
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}
