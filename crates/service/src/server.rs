//! A line-based TCP front end over [`QueryService`] — `std::net` +
//! `std::thread` only, honoring the workspace's no-runtime-deps rule.
//!
//! One thread accepts connections; each connection gets a handler thread
//! that reads request lines and writes framed responses (see
//! [`crate::protocol`]). Concurrency control lives in the *service* — a
//! flood of connections contends on the bounded job queue and is shed with
//! `ERR overloaded`, not on unbounded server-side buffers.
//!
//! The protocol is **unauthenticated**, so the filesystem-touching verb is
//! sandboxed: `LOAD` paths must be relative (no `..`) and resolve under a
//! data directory the *operator* configures with [`serve_with_data_dir`];
//! a server started with plain [`serve`] rejects `LOAD` outright. Bind
//! non-loopback addresses only if every reachable client is trusted —
//! `QUERY`/`INSERT`/`DELETE`/`SUBSCRIBE`/`STATS`/`DROP`/`PERSIST`/
//! `SHUTDOWN` have no access control either.
//!
//! `SUBSCRIBE` dedicates its connection to one live view: the handler
//! writes the initial answer frame, then alternates between forwarding
//! pushed delta frames and polling the socket for client input — any input
//! line (or EOF) ends the subscription (see [`crate::protocol`] for the
//! frame format).
//!
//! **Slow-client hardening**: accepted sockets carry read/write timeouts
//! (see [`ServerOptions`]). A client that stalls mid-request or stops
//! draining its response gets a best-effort `ERR request-timeout` and its
//! connection closed — one dead peer cannot pin a handler thread forever.
//!
//! The wire `SHUTDOWN` verb performs a **graceful drain**: the service
//! stops admitting, in-flight requests finish under their own governors,
//! and — when durability is configured — the final catalog state is sealed
//! in a snapshot before `OK bye` is written.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::ServiceError;
use crate::protocol::{
    parse_request, render_analyze_program_response, render_analyze_response, render_delta_frame,
    render_drop_response, render_error, render_explain_response, render_load_response,
    render_mutation_response, render_persist_response, render_query_response,
    render_stats_response, render_subscribe_response, Request, END,
};
use crate::service::QueryService;

/// Server knobs beyond the address (see [`serve_with_options`]).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Root for `LOAD` path resolution; `None` disables `LOAD` entirely.
    pub data_dir: Option<PathBuf>,
    /// Per-connection socket read timeout: how long a handler blocks
    /// waiting for the *next request line* before giving up on the client.
    /// `None` waits forever (pre-hardening behavior).
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout: how long a response write may
    /// stall on a client that stopped draining. `None` waits forever.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    /// Timeouts default *on* (read 300 s, write 30 s): an unattended server
    /// should shed dead peers without operator tuning.
    fn default() -> Self {
        ServerOptions {
            data_dir: None,
            read_timeout: Some(Duration::from_mins(5)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

struct Shared {
    service: Arc<QueryService>,
    stop: AtomicBool,
    addr: SocketAddr,
    options: ServerOptions,
}

/// A running server; dropping it does **not** stop the service (call
/// [`ServerHandle::stop`] or send `SHUTDOWN` over the wire).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Block until the accept loop exits (a `SHUTDOWN` request or
    /// [`ServerHandle::stop`]).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop the service and the accept loop, then block until the latter
    /// exits.
    pub fn stop(self) {
        self.shared.service.shutdown();
        request_stop(&self.shared);
        self.wait();
    }
}

/// Ask the accept loop to exit: set the flag, then poke the listener with a
/// throwaway connection so the blocking `accept` returns.
fn request_stop(shared: &Shared) {
    if !shared.stop.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Bind `addr` and serve `service` until a `SHUTDOWN` request (or
/// [`ServerHandle::stop`]). The wire `LOAD` verb is **disabled** — clients
/// could otherwise read arbitrary server-readable files. Preload databases
/// through [`QueryService::load_str`], or use [`serve_with_data_dir`] to
/// allow `LOAD` within a sandbox directory.
///
/// # Errors
/// Propagates the bind failure.
pub fn serve(addr: impl ToSocketAddrs, service: Arc<QueryService>) -> io::Result<ServerHandle> {
    serve_with_options(addr, service, ServerOptions::default())
}

/// Like [`serve`], but wire `LOAD <name> <path>` is allowed for paths that
/// are relative, contain no `..` components, and are resolved against
/// `data_dir` — clients can only read files the operator placed under that
/// directory (modulo symlinks inside it; don't plant hostile ones).
///
/// # Errors
/// Propagates the bind failure.
pub fn serve_with_data_dir(
    addr: impl ToSocketAddrs,
    service: Arc<QueryService>,
    data_dir: impl Into<PathBuf>,
) -> io::Result<ServerHandle> {
    serve_with_options(
        addr,
        service,
        ServerOptions {
            data_dir: Some(data_dir.into()),
            ..Default::default()
        },
    )
}

/// Bind `addr` and serve with explicit [`ServerOptions`] (data directory
/// and slow-client timeouts).
///
/// # Errors
/// Propagates the bind failure.
pub fn serve_with_options(
    addr: impl ToSocketAddrs,
    service: Arc<QueryService>,
    options: ServerOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let shared = Arc::new(Shared {
        service,
        stop: AtomicBool::new(false),
        addr: listener.local_addr()?,
        options,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("pq-service-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                // Handlers are detached: they die with their connection
                // (every post-shutdown request is answered with
                // `ERR shutting-down`, so lingering clients drain cleanly).
                let _ = std::thread::Builder::new()
                    .name("pq-service-conn".into())
                    .spawn(move || handle_connection(stream, &conn_shared));
            }
        })?;
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
    })
}

fn write_lines(stream: &mut TcpStream, lines: &[String]) -> io::Result<()> {
    let mut out = String::new();
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out.push_str(END);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// Resolve a client-supplied `LOAD` path against the configured data
/// directory, refusing anything that could escape it.
///
/// # Errors
/// [`ServiceError::Protocol`] when no data directory is configured, or when
/// the path is absolute / contains `..` (or other non-plain) components.
fn resolve_load_path(data_dir: Option<&Path>, path: &str) -> Result<PathBuf, ServiceError> {
    let Some(root) = data_dir else {
        return Err(ServiceError::Protocol(
            "LOAD is disabled: the server was started without a data directory".into(),
        ));
    };
    let p = Path::new(path);
    let confined = !p.is_absolute()
        && p.components()
            .all(|c| matches!(c, Component::Normal(_) | Component::CurDir));
    if !confined {
        return Err(ServiceError::Protocol(format!(
            "LOAD path `{path}` must be relative to the data directory, without `..`"
        )));
    }
    Ok(root.join(p))
}

fn respond(shared: &Shared, request: Request) -> (Vec<String>, bool) {
    let service = &*shared.service;
    match request {
        Request::Load { name, path } => {
            let outcome = resolve_load_path(shared.options.data_dir.as_deref(), &path)
                .and_then(|resolved| {
                    std::fs::read_to_string(&resolved)
                        .map_err(|e| ServiceError::Protocol(format!("cannot read `{path}`: {e}")))
                })
                .and_then(|text| service.load_str(&name, &text));
            match outcome {
                Ok(s) => (render_load_response(&s), false),
                Err(e) => (vec![render_error(&e)], false),
            }
        }
        Request::Query {
            name,
            src,
            limits,
            count,
        } => {
            let outcome = match &count {
                Some(mode) => service.query_count(&name, &src, mode, limits),
                None => service.query(&name, &src, limits),
            };
            match outcome {
                Ok(resp) => (render_query_response(&resp), false),
                Err(e) => (vec![render_error(&e)], false),
            }
        }
        Request::Explain { name, src } => match service.explain(&name, &src) {
            Ok(e) => (render_explain_response(&e), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        // A `?-` goal marker distinguishes a whole Datalog program from a
        // single conjunctive query (CQ syntax has no `?-`).
        Request::Analyze { name, src } if src.contains("?-") => {
            match service.analyze_datalog(&name, &src) {
                Ok(a) => (render_analyze_program_response(&a), false),
                Err(e) => (vec![render_error(&e)], false),
            }
        }
        Request::Analyze { name, src } => match service.analyze(&name, &src) {
            Ok(a) => (render_analyze_response(&a), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        Request::Stats => (render_stats_response(&service.stats()), false),
        Request::Drop { name } => match service.drop_database(&name) {
            Ok(existed) => (render_drop_response(&name, existed), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        Request::Insert {
            name,
            relation,
            rows,
        } => match service.insert_rows(&name, &relation, rows) {
            Ok(s) => (render_mutation_response(&s), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        Request::Delete {
            name,
            relation,
            rows,
        } => match service.delete_rows(&name, &relation, rows) {
            Ok(s) => (render_mutation_response(&s), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        // Intercepted in `handle_connection` (the verb takes over the
        // connection); reaching here means a caller bypassed that path.
        Request::Subscribe { .. } => (
            vec![render_error(&ServiceError::Protocol(
                "SUBSCRIBE requires a dedicated connection".into(),
            ))],
            false,
        ),
        Request::Persist => match service.persist() {
            Ok(s) => (render_persist_response(&s), false),
            Err(e) => (vec![render_error(&e)], false),
        },
        // Graceful drain: block here until in-flight work finishes and the
        // final snapshot (if durable) lands, so `OK bye` really means the
        // state is sealed. A failed final snapshot is reported instead of
        // `OK bye` — the service is stopped either way.
        Request::Shutdown => match service.drain() {
            Ok(()) => (vec!["OK bye".to_string()], true),
            Err(e) => (vec![render_error(&e)], true),
        },
    }
}

/// Did this I/O error come from the socket timeout? (Unix reports
/// `WouldBlock`, Windows `TimedOut`.)
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(shared.options.read_timeout);
    let _ = stream.set_write_timeout(shared.options.write_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                // Best-effort notice; the peer may be dead, in which case
                // the write fails too and we just close.
                let _ = write_lines(&mut writer, &[render_error(&ServiceError::RequestTimeout)]);
                break;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(r) => r,
            Err(e) => {
                if write_lines(&mut writer, &[render_error(&e)]).is_err() {
                    break;
                }
                continue;
            }
        };
        if let Request::Subscribe { name, src } = request {
            stream_subscription(&mut reader, &mut writer, shared, &name, &src);
            break;
        }
        let (lines, shutdown) = respond(shared, request);
        if write_lines(&mut writer, &lines).is_err() {
            break;
        }
        if shutdown {
            request_stop(shared);
            break;
        }
    }
}

/// Serve a `SUBSCRIBE` for the rest of the connection: write the initial
/// answer frame, then forward delta frames as maintenance passes push them,
/// polling the socket in between so any client input line (or EOF) ends the
/// subscription. Finishes with a best-effort `OK unsubscribed` frame.
fn stream_subscription(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared,
    name: &str,
    src: &str,
) {
    let sub = match shared.service.subscribe(name, src) {
        Ok(sub) => sub,
        Err(e) => {
            let _ = write_lines(writer, &[render_error(&e)]);
            return;
        }
    };
    if write_lines(writer, &render_subscribe_response(&sub)).is_ok() {
        // Alternate between the update channel (100 ms) and a short-timeout
        // peek at the socket. The connection is dedicated to this
        // subscription, so shortening the shared socket's read timeout
        // cannot race another request.
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(25)));
        loop {
            match sub.updates.recv_timeout(Duration::from_millis(100)) {
                Ok(update) => {
                    let last = update.dropped;
                    if write_lines(writer, &render_delta_frame(sub.id, &update)).is_err() || last {
                        break;
                    }
                }
                // Poll the socket: a read timeout means nothing arrived yet;
                // anything else — input, EOF, a real error — ends the stream.
                Err(mpsc::RecvTimeoutError::Timeout) => match reader.fill_buf() {
                    Err(e) if is_timeout(&e) => {}
                    _ => break,
                },
                // The service shut down or the view was dropped.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    shared.service.unsubscribe(sub.id);
    let _ = write_lines(writer, &[format!("OK unsubscribed {}", sub.id)]);
}

/// Client-side helper: send one request line and collect the response lines
/// up to (excluding) the terminator. Shared by `examples/repl.rs` and the
/// integration tests.
///
/// # Errors
/// I/O failures, or an unterminated response (connection closed early).
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> io::Result<Vec<String>> {
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream.try_clone()?))
}

/// Read one framed response from `reader` (lines up to the `.` terminator).
///
/// # Errors
/// I/O failures, or EOF before the terminator.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Vec<String>> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line == END {
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_paths_are_confined_to_the_data_dir() {
        let root = Path::new("/srv/data");
        let ok = |p: &str| resolve_load_path(Some(root), p).unwrap();
        assert_eq!(ok("db/company.db"), root.join("db/company.db"));
        assert_eq!(ok("./company.db"), root.join("./company.db"));
        for escape in [
            "/etc/passwd",
            "../secrets.db",
            "db/../../secrets.db",
            "db/./../../x",
        ] {
            assert!(
                matches!(
                    resolve_load_path(Some(root), escape),
                    Err(ServiceError::Protocol(_))
                ),
                "must reject: {escape}"
            );
        }
    }

    #[test]
    fn load_is_disabled_without_a_data_dir() {
        assert!(matches!(
            resolve_load_path(None, "company.db"),
            Err(ServiceError::Protocol(_))
        ));
    }
}
