//! A sharded, bounded LRU map — the substrate of both cache levels.
//!
//! Sharding bounds lock contention: a key is routed to one of `shards`
//! independent `Mutex`-protected maps by a stable hash, so concurrent
//! lookups for different keys rarely collide on a lock. Each shard holds at
//! most `⌈capacity / shards⌉` entries and evicts its least-recently-used
//! entry on overflow (recency is a monotone stamp per shard; eviction scans
//! the shard, which is `O(shard capacity)` — fine at cache sizes where the
//! alternative is re-running a query engine).
//!
//! Values are handed out as `Arc<V>` so a hit never clones the payload and
//! an entry can be evicted while readers still hold it.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::sync::{atomic::AtomicU64, atomic::Ordering, Arc};

struct Shard<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    clock: u64,
}

impl<K: Hash + Eq, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            clock: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A sharded bounded LRU cache (see the module docs).
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> ShardedCache<K, V> {
    /// A cache holding about `capacity` entries across `shards` shards.
    /// `capacity == 0` disables the cache (every lookup misses, inserts are
    /// dropped); `shards` is clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Is the cache disabled (capacity 0)?
    pub fn is_disabled(&self) -> bool {
        self.per_shard_capacity == 0
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i =
            usize::try_from(h.finish() % self.shards.len() as u64).expect("index < shard count");
        &self.shards[i]
    }

    /// Look up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        if self.is_disabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let stamp = shard.touch();
        if let Some((v, last)) = shard.map.get_mut(key) {
            *last = stamp;
            let v = Arc::clone(v);
            drop(shard);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(v)
        } else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert (or refresh) `key → value`, evicting the shard's
    /// least-recently-used entry if it is full.
    pub fn insert(&self, key: K, value: Arc<V>) {
        if self.is_disabled() {
            return;
        }
        let mut shard = self.shard_for(&key).lock().expect("cache shard poisoned");
        let stamp = shard.touch();
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(key, (value, stamp));
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (hit/miss counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").map.clear();
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_hits() {
        let c: ShardedCache<u64, String> = ShardedCache::new(8, 2);
        assert!(c.get(&1).is_none());
        c.insert(1, Arc::new("one".into()));
        assert_eq!(c.get(&1).as_deref(), Some(&"one".to_string()));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_zero_disables() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(0, 4);
        c.insert(1, Arc::new(1));
        assert!(c.get(&1).is_none());
        assert!(c.is_empty());
        assert!(c.is_disabled());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard so the recency order is deterministic.
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 1);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        assert!(c.get(&1).is_some()); // refresh 1 → 2 is now coldest
        c.insert(3, Arc::new(30));
        assert_eq!(c.len(), 2);
        assert!(c.get(&2).is_none(), "cold entry should be evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place_without_eviction() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 1);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        c.insert(1, Arc::new(11)); // refresh, not overflow
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1).as_deref(), Some(&11));
        assert_eq!(c.get(&2).as_deref(), Some(&20));
    }

    #[test]
    fn values_survive_eviction_while_held() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(1, 1);
        c.insert(1, Arc::new(10));
        let held = c.get(&1).unwrap();
        c.insert(2, Arc::new(20)); // evicts key 1
        assert!(c.get(&1).is_none());
        assert_eq!(*held, 10);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(64, 8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 31 + i) % 100;
                        c.insert(k, Arc::new(k * 2));
                        if let Some(v) = c.get(&k) {
                            assert_eq!(*v, k * 2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64 + 8, "capacity respected per shard");
    }
}
