//! The line-based wire protocol.
//!
//! **Requests** are single lines:
//!
//! ```text
//! LOAD <name> <path>                      load a database file (loader format;
//!                                         path is relative to the server's
//!                                         data dir, see `serve_with_data_dir`)
//! QUERY [@flags] <name> <cq text>         evaluate a conjunctive query
//! EXPLAIN <name> <cq text>                classify + plan without evaluating
//! ANALYZE <name> <cq or program text>     full static analysis (lints, core
//!                                         minimization, Fig. 1 parameters);
//!                                         text containing `?-` is analyzed
//!                                         as a whole Datalog program
//!                                         (PQA5xx: dead rules, recursion
//!                                         class, per-rule minimization)
//! STATS                                   dump service metrics
//! DROP <name>                             remove a database from the catalog
//!                                         (WAL-logged tombstone: recovery
//!                                         does not resurrect it)
//! INSERT <name> <relation> <row>[; <row>…] insert rows (loader field syntax,
//!                                         rows separated by `;`); WAL-logged,
//!                                         and every registered view whose
//!                                         plan reads the relation is
//!                                         maintained incrementally
//! DELETE <name> <relation> <row>[; <row>…] delete rows; otherwise as INSERT
//! SUBSCRIBE <name> <cq or program text>   register a live materialized view
//!                                         (text containing `?-` is a whole
//!                                         Datalog program) and stream its
//!                                         answer deltas; see below
//! PERSIST                                 force a snapshot + WAL rotation
//! SHUTDOWN                                gracefully drain and stop: no new
//!                                         work, in-flight requests finish,
//!                                         final snapshot when durable
//! ```
//!
//! `@flags` set per-request resource limits, e.g.
//! `QUERY @deadline_ms=50 @budget=100000 @depth=64 mydb G(x) :- R(x, y).`
//!
//! `QUERY` additionally accepts the counting flags `@count` and
//! `@count_by(x,y)` (attribute list without spaces). `@count` answers with
//! a single row over the attribute `count` — the number of **distinct**
//! answers, computed without enumerating them whenever the query's
//! counting classification allows; `@count_by(x̄)` answers with one row
//! per group over `x̄…, count`. Counts that exceed `i64` are rendered as
//! exact decimal strings, and a count that would exceed `u128` is the
//! error `ERR count-overflow …` — never a wrapped number.
//!
//! **Responses** are one or more lines terminated by a line containing a
//! single `.`. The first line is `OK …` or `ERR <code> <message>` (codes
//! from [`ServiceError::code`], e.g. `overloaded`, `resource-exhausted`).
//! `QUERY` answers are `OK <n> <attr …>` followed by `n` comma-separated
//! rows in canonical (sorted) order; field syntax matches the database
//! loader, so output can be pasted back into a data file.
//!
//! **`SUBSCRIBE` dedicates the connection to one live view.** The initial
//! response is an ordinary framed answer (`OK subscribed <id> <n> <attrs>`
//! plus `n` rows and the terminator); `<n>` **is the view's current
//! cardinality**, so a count-subscriber can read the header and skip the
//! body. From then on, every mutation that changes the view's answer
//! pushes one framed **delta**:
//!
//! ```text
//! DELTA <id> +<a> -<r> epoch=<e> rows=<n>[ fallback][ dropped]
//! + <row>      (a lines: rows that entered the answer)
//! - <row>      (r lines: rows that left the answer)
//! .
//! ```
//!
//! `rows=<n>` is the view's cardinality *after* the delta applies, so
//! count-subscribers never need to replay the materialization to track
//! `|V(d)|`. `fallback` marks a pass that exceeded the maintenance budget
//! and fell back to a full recompute; `dropped` is the final frame (the
//! database was dropped or replaced by something the view cannot be
//! computed against). Any input line from the client (or EOF) ends the
//! subscription: the server unsubscribes and confirms with a final
//! `OK unsubscribed <id>` frame.

use std::time::Duration;

use pq_data::{loader, Relation, Tuple, Value};

use crate::durable::SnapshotSummary;
use crate::error::ServiceError;
use crate::metrics::MetricsSnapshot;
use crate::service::{
    AnalysisReport, CacheOutcome, CountMode, Explanation, LoadSummary, MutationSummary,
    ProgramAnalysisReport, QueryResponse, RequestLimits, Subscription, SubscriptionUpdate,
};

/// The response terminator line.
pub const END: &str = ".";

/// A parsed wire request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// `LOAD <name> <path>` — the path is resolved by the *server*, which
    /// confines it to its configured data directory (see
    /// [`crate::server::serve_with_data_dir`]) and rejects absolute or
    /// `..`-containing paths.
    Load {
        /// Catalog name to load under.
        name: String,
        /// Filesystem path of the database text, relative to the server's
        /// data directory (rest of the line, so paths may contain spaces).
        path: String,
    },
    /// `QUERY [@flags] <name> <cq text>`.
    Query {
        /// Database name.
        name: String,
        /// The conjunctive-query source text.
        src: String,
        /// Per-request limits from `@` flags.
        limits: RequestLimits,
        /// Counting mode from `@count` / `@count_by(x̄)`; `None` is an
        /// ordinary enumerating query.
        count: Option<CountMode>,
    },
    /// `EXPLAIN <name> <cq text>`.
    Explain {
        /// Database name.
        name: String,
        /// The conjunctive-query source text.
        src: String,
    },
    /// `ANALYZE <name> <cq text>`.
    Analyze {
        /// Database name (the schema pass checks against it).
        name: String,
        /// The conjunctive-query source text.
        src: String,
    },
    /// `STATS`.
    Stats,
    /// `DROP <name>`.
    Drop {
        /// Database name to remove.
        name: String,
    },
    /// `INSERT <name> <relation> <row>[; <row>…]`.
    Insert {
        /// Database name.
        name: String,
        /// Relation to mutate.
        relation: String,
        /// Parsed rows (loader field conventions).
        rows: Vec<Tuple>,
    },
    /// `DELETE <name> <relation> <row>[; <row>…]`.
    Delete {
        /// Database name.
        name: String,
        /// Relation to mutate.
        relation: String,
        /// Parsed rows (loader field conventions).
        rows: Vec<Tuple>,
    },
    /// `SUBSCRIBE <name> <cq or program text>`.
    Subscribe {
        /// Database name.
        name: String,
        /// The view's source text (CQ, or Datalog program when it contains
        /// a `?-` goal marker).
        src: String,
    },
    /// `PERSIST`.
    Persist,
    /// `SHUTDOWN`.
    Shutdown,
}

fn proto_err(msg: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(msg.into())
}

fn parse_flag(limits: &mut RequestLimits, token: &str) -> Result<(), ServiceError> {
    let body = &token[1..];
    let (key, value) = body
        .split_once('=')
        .ok_or_else(|| proto_err(format!("flag `{token}` is not @key=value")))?;
    let parse_u64 = || {
        value.parse::<u64>().map_err(|_| {
            proto_err(format!(
                "flag `{key}` needs an unsigned integer, got `{value}`"
            ))
        })
    };
    match key {
        "deadline_ms" => limits.deadline = Some(Duration::from_millis(parse_u64()?)),
        "budget" => limits.tuple_budget = Some(parse_u64()?),
        "depth" => limits.max_depth = Some(usize::try_from(parse_u64()?).unwrap_or(usize::MAX)),
        other => return Err(proto_err(format!("unknown flag `@{other}`"))),
    }
    Ok(())
}

/// Recognize the counting flags `@count` and `@count_by(x,y)`. Returns
/// `Ok(false)` when `token` is not a counting flag (so the caller can try
/// the limit flags).
fn parse_count_token(count: &mut Option<CountMode>, token: &str) -> Result<bool, ServiceError> {
    let mode = if token == "@count" {
        CountMode::Total
    } else if let Some(body) = token.strip_prefix("@count_by(") {
        let inner = body.strip_suffix(')').ok_or_else(|| {
            proto_err(format!(
                "flag `{token}` is missing the closing `)` \
                 (the attribute list may not contain spaces)"
            ))
        })?;
        let groups: Vec<String> = inner.split(',').map(|g| g.trim().to_string()).collect();
        if inner.trim().is_empty() || groups.iter().any(String::is_empty) {
            return Err(proto_err(format!(
                "flag `{token}` needs comma-separated attributes, e.g. `@count_by(x,y)`"
            )));
        }
        CountMode::Grouped(groups)
    } else if token == "@count_by" || token.starts_with("@count_by=") {
        return Err(proto_err(
            "`@count_by` takes a parenthesized attribute list, e.g. `@count_by(x,y)`",
        ));
    } else {
        return Ok(false);
    };
    if count.replace(mode).is_some() {
        return Err(proto_err(
            "at most one `@count`/`@count_by(…)` flag per request",
        ));
    }
    Ok(true)
}

/// Split `rest` into its leading `@` flags, a database name, and trailing
/// query text.
#[allow(clippy::type_complexity)]
fn parse_query_parts(
    rest: &str,
) -> Result<(String, String, RequestLimits, Option<CountMode>), ServiceError> {
    let mut limits = RequestLimits::default();
    let mut count = None;
    let mut rest = rest.trim_start();
    while rest.starts_with('@') {
        let (token, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        if !parse_count_token(&mut count, token)? {
            parse_flag(&mut limits, token)?;
        }
        rest = tail.trim_start();
    }
    let (name, src) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| proto_err("expected `<name> <query text>`"))?;
    let src = src.trim();
    if src.is_empty() {
        return Err(proto_err("empty query text"));
    }
    Ok((name.to_string(), src.to_string(), limits, count))
}

/// Parse `INSERT`/`DELETE` operands: `<name> <relation> <row>[; <row>…]`.
#[allow(clippy::type_complexity)]
fn parse_mutation_parts(
    verb: &str,
    rest: &str,
) -> Result<(String, String, Vec<Tuple>), ServiceError> {
    let usage = || {
        proto_err(format!(
            "expected `{verb} <name> <relation> <row>[; <row>…]`"
        ))
    };
    let (name, rest) = rest
        .trim()
        .split_once(char::is_whitespace)
        .ok_or_else(usage)?;
    let (relation, rows_text) = rest
        .trim_start()
        .split_once(char::is_whitespace)
        .ok_or_else(usage)?;
    let mut rows = Vec::new();
    for segment in rows_text.split(';') {
        let segment = segment.trim();
        if segment.is_empty() {
            return Err(proto_err(format!("{verb}: empty row segment")));
        }
        rows.push(loader::parse_row(segment));
    }
    Ok((name.to_string(), relation.to_string(), rows))
}

/// Parse one request line.
///
/// # Errors
/// [`ServiceError::Protocol`] on anything malformed.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let line = line.trim();
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    match verb.to_ascii_uppercase().as_str() {
        "LOAD" => {
            let (name, path) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| proto_err("expected `LOAD <name> <path>`"))?;
            Ok(Request::Load {
                name: name.to_string(),
                path: path.trim().to_string(),
            })
        }
        "QUERY" => {
            let (name, src, limits, count) = parse_query_parts(rest)?;
            Ok(Request::Query {
                name,
                src,
                limits,
                count,
            })
        }
        "EXPLAIN" => {
            let (name, src, limits, count) = parse_query_parts(rest)?;
            if limits != RequestLimits::default() || count.is_some() {
                return Err(proto_err("EXPLAIN takes no @ flags"));
            }
            Ok(Request::Explain { name, src })
        }
        "ANALYZE" => {
            let (name, src, limits, count) = parse_query_parts(rest)?;
            if limits != RequestLimits::default() || count.is_some() {
                return Err(proto_err("ANALYZE takes no @ flags"));
            }
            Ok(Request::Analyze { name, src })
        }
        "STATS" => {
            if !rest.trim().is_empty() {
                return Err(proto_err("STATS takes no arguments"));
            }
            Ok(Request::Stats)
        }
        "DROP" => {
            let name = rest.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(proto_err("expected `DROP <name>`"));
            }
            Ok(Request::Drop {
                name: name.to_string(),
            })
        }
        "INSERT" => {
            let (name, relation, rows) = parse_mutation_parts("INSERT", rest)?;
            Ok(Request::Insert {
                name,
                relation,
                rows,
            })
        }
        "DELETE" => {
            let (name, relation, rows) = parse_mutation_parts("DELETE", rest)?;
            Ok(Request::Delete {
                name,
                relation,
                rows,
            })
        }
        "SUBSCRIBE" => {
            let (name, src, limits, count) = parse_query_parts(rest)?;
            if limits != RequestLimits::default() || count.is_some() {
                return Err(proto_err(
                    "SUBSCRIBE takes no @ flags (maintenance runs under service \
                     defaults; delta headers already carry the cardinality)",
                ));
            }
            Ok(Request::Subscribe { name, src })
        }
        "PERSIST" => {
            if !rest.trim().is_empty() {
                return Err(proto_err("PERSIST takes no arguments"));
            }
            Ok(Request::Persist)
        }
        "SHUTDOWN" => {
            if !rest.trim().is_empty() {
                return Err(proto_err("SHUTDOWN takes no arguments"));
            }
            Ok(Request::Shutdown)
        }
        "" => Err(proto_err("empty request")),
        other => Err(proto_err(format!("unknown verb `{other}`"))),
    }
}

/// Render one value with the database-loader field conventions (quote
/// strings that would re-parse as integers or contain separators, and
/// strings equal to [`END`] — a bare `.` in a single-column row would
/// otherwise read as the response terminator and desynchronize the client).
fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            if s.parse::<i64>().is_ok()
                || s.contains(',')
                || s.contains('%')
                || s.is_empty()
                || &**s == END
            {
                format!("\"{s}\"")
            } else {
                s.to_string()
            }
        }
    }
}

fn render_rows(rel: &Relation, out: &mut Vec<String>) {
    for t in rel.canonical_rows() {
        let fields: Vec<String> = t.iter().map(render_value).collect();
        out.push(fields.join(", "));
    }
}

/// Render the response lines (without the terminator) for a successful
/// `QUERY`.
pub fn render_query_response(resp: &QueryResponse) -> Vec<String> {
    let cache = match resp.cache {
        CacheOutcome::Miss => "cold",
        CacheOutcome::PlanHit => "plan-cache",
        CacheOutcome::ResultHit => "result-cache",
    };
    let mut lines = vec![format!(
        "OK {} {} # engine={} cache={} gen={} epoch={} micros={}",
        resp.rows.len(),
        if resp.rows.arity() == 0 {
            "-".to_string()
        } else {
            resp.rows.attrs().join(",")
        },
        resp.engine.replace(' ', "_"),
        cache,
        resp.generation,
        resp.epoch,
        resp.latency.as_micros()
    )];
    render_rows(&resp.rows, &mut lines);
    lines
}

/// Render the response lines for a successful `LOAD`.
pub fn render_load_response(s: &LoadSummary) -> Vec<String> {
    vec![format!(
        "OK loaded {} relations={} tuples={} gen={} epoch={}",
        s.name, s.relations, s.tuples, s.generation, s.epoch
    )]
}

/// Render the response lines for `EXPLAIN`.
pub fn render_explain_response(e: &Explanation) -> Vec<String> {
    let mut lines = vec!["OK explain".to_string()];
    lines.push(format!("fingerprint {:016x}", e.fingerprint));
    lines.push(format!("engine {}", e.engine));
    lines.push(format!("summary {}", e.summary));
    lines.push(format!("q {}", e.q));
    lines.push(format!("v {}", e.v));
    if let Some(k) = e.color_parameter {
        lines.push(format!("k {k}"));
    }
    if let Some(w) = e.hypertree_width {
        let mark = if e.width_exact { "exact" } else { "heuristic" };
        lines.push(format!("width {w} {mark}"));
    }
    if let Some(d) = &e.decomposition {
        lines.push(format!("decomposition {d}"));
    }
    lines.push(format!("plan_cached {}", e.plan_was_cached));
    lines.push(format!("result_cached {}", e.result_is_cached));
    lines.push(format!("answer_source {}", e.answer_source));
    if let Some(v) = &e.answered_from_view {
        lines.push(format!("answered-from view {v}"));
    }
    lines.push(format!("equivalence-class {:016x}", e.equivalence_class));
    if e.provably_empty {
        lines.push("provably_empty true".to_string());
    }
    if let Some(m) = &e.minimized {
        lines.push(format!("minimized {m}"));
    }
    for d in &e.diagnostics {
        lines.push(format!("diag {d}"));
    }
    lines.push(format!("gen {}", e.generation));
    lines.push(format!("epoch {}", e.epoch));
    lines
}

/// Render the response lines for `ANALYZE`.
pub fn render_analyze_response(a: &AnalysisReport) -> Vec<String> {
    let mut lines = vec!["OK analyze".to_string()];
    lines.push(format!("fingerprint {:016x}", a.fingerprint));
    lines.push(format!("cell {}", a.cell));
    lines.push(format!("engine {}", a.engine));
    lines.push(format!("summary {}", a.summary));
    lines.push(format!(
        "params q={} v={} max_arity={} neqs={} cmps={}",
        a.q, a.v, a.max_arity, a.neq_count, a.cmp_count
    ));
    if let Some(k) = a.color_parameter {
        lines.push(format!("k {k}"));
    }
    if let Some(w) = a.hypertree_width {
        let mark = if a.width_exact { "exact" } else { "heuristic" };
        lines.push(format!("width {w} {mark}"));
    }
    if let Some(d) = &a.decomposition {
        lines.push(format!("decomposition {d}"));
    }
    if let Some(w) = &a.cycle_witness {
        let atoms: Vec<String> = w.iter().map(ToString::to_string).collect();
        lines.push(format!("cycle_witness {}", atoms.join(",")));
    }
    lines.push(format!("provably_empty {}", a.provably_empty));
    if let Some(m) = &a.minimized {
        lines.push(format!("minimized {m}"));
    }
    for d in &a.diagnostics {
        lines.push(format!("diag {d}"));
    }
    lines.push(format!("plan_cached {}", a.plan_was_cached));
    lines.push(format!("gen {}", a.generation));
    lines.push(format!("epoch {}", a.epoch));
    lines
}

/// Render the response lines for `ANALYZE` on a Datalog program.
pub fn render_analyze_program_response(a: &ProgramAnalysisReport) -> Vec<String> {
    let mut lines = vec!["OK analyze-program".to_string()];
    lines.push(format!("goal {}", a.goal));
    lines.push(format!(
        "rules live={} total={}",
        a.rules_live, a.rules_total
    ));
    if !a.dead_rules.is_empty() {
        let idx: Vec<String> = a.dead_rules.iter().map(ToString::to_string).collect();
        lines.push(format!("dead_rules {}", idx.join(",")));
    }
    lines.push(format!("edb {}", a.edb.join(",")));
    lines.push(format!("idb {}", a.idb.join(",")));
    lines.push(format!("sccs {}", a.scc_count));
    lines.push(format!("recursion {}", a.recursion));
    lines.push(format!("max_arity {}", a.max_arity));
    lines.push(format!("provably_empty {}", a.provably_empty));
    if let Some(r) = &a.rewritten {
        lines.push(format!("rewritten {r}"));
    }
    for d in &a.diagnostics {
        lines.push(format!("diag {d}"));
    }
    lines.push(format!("gen {}", a.generation));
    lines.push(format!("epoch {}", a.epoch));
    lines
}

/// Render the response lines for `STATS`.
pub fn render_stats_response(s: &MetricsSnapshot) -> Vec<String> {
    let mut lines = vec!["OK stats".to_string()];
    lines.extend(s.lines());
    lines
}

/// Render the response line for `DROP`: `OK dropped <name>` or
/// `OK absent <name>` (dropping a missing database is not an error —
/// the postcondition already holds).
pub fn render_drop_response(name: &str, existed: bool) -> Vec<String> {
    vec![format!(
        "OK {} {name}",
        if existed { "dropped" } else { "absent" }
    )]
}

/// Render the response line for `INSERT`/`DELETE`.
pub fn render_mutation_response(s: &MutationSummary) -> Vec<String> {
    vec![format!(
        "OK {} {} {} gen={} epoch={} views={} fallbacks={}",
        s.op, s.applied, s.relation, s.generation, s.epoch, s.views_maintained, s.fallbacks
    )]
}

/// Render the initial response lines for `SUBSCRIBE`: the subscription id,
/// the view's current **cardinality** (so count-subscribers can stop after
/// the header), and the view's full current answer (same row framing as
/// `QUERY`).
pub fn render_subscribe_response(sub: &Subscription) -> Vec<String> {
    let mut lines = vec![format!(
        "OK subscribed {} {} {}",
        sub.id,
        sub.rows.len(),
        if sub.rows.arity() == 0 {
            "-".to_string()
        } else {
            sub.rows.attrs().join(",")
        }
    )];
    render_rows(&sub.rows, &mut lines);
    lines
}

/// Render one pushed delta frame for subscription `id`. Added rows are
/// prefixed `+ `, removed rows `- `; both sides are sorted. The header's
/// `rows=<n>` is the view's cardinality after this delta applies, so a
/// count-subscriber can track `|V(d)|` from headers alone.
pub fn render_delta_frame(id: u64, u: &SubscriptionUpdate) -> Vec<String> {
    let mut header = format!(
        "DELTA {id} +{} -{} epoch={} rows={}",
        u.added.len(),
        u.removed.len(),
        u.epoch,
        u.cardinality
    );
    if u.fell_back {
        header.push_str(" fallback");
    }
    if u.dropped {
        header.push_str(" dropped");
    }
    let mut lines = vec![header];
    for (sign, rows) in [('+', &u.added), ('-', &u.removed)] {
        let mut sorted: Vec<&Tuple> = rows.iter().collect();
        sorted.sort();
        for t in sorted {
            let fields: Vec<String> = t.iter().map(render_value).collect();
            lines.push(format!("{sign} {}", fields.join(", ")));
        }
    }
    lines
}

/// Render the response line for `PERSIST`.
pub fn render_persist_response(s: &SnapshotSummary) -> Vec<String> {
    vec![format!(
        "OK persisted databases={} bytes={}",
        s.databases, s.bytes
    )]
}

/// Render an error as its single response line.
pub fn render_error(e: &ServiceError) -> String {
    format!("ERR {} {e}", e.code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse_request("LOAD d /tmp/some file.db").unwrap(),
            Request::Load {
                name: "d".into(),
                path: "/tmp/some file.db".into()
            }
        );
        assert_eq!(
            parse_request("query d G(x) :- R(x, y).").unwrap(),
            Request::Query {
                name: "d".into(),
                src: "G(x) :- R(x, y).".into(),
                limits: RequestLimits::default(),
                count: None,
            }
        );
        assert_eq!(
            parse_request("EXPLAIN d G(x) :- R(x, y).").unwrap(),
            Request::Explain {
                name: "d".into(),
                src: "G(x) :- R(x, y).".into()
            }
        );
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("drop d").unwrap(),
            Request::Drop { name: "d".into() }
        );
        assert_eq!(parse_request("PERSIST").unwrap(), Request::Persist);
        assert_eq!(parse_request("  SHUTDOWN  ").unwrap(), Request::Shutdown);
    }

    #[test]
    fn parses_mutation_and_subscribe_verbs() {
        use pq_data::tuple;
        assert_eq!(
            parse_request(r#"INSERT d R 1, 2; 3, "a b""#).unwrap(),
            Request::Insert {
                name: "d".into(),
                relation: "R".into(),
                rows: vec![tuple![1, 2], tuple![3, "a b"]],
            }
        );
        assert_eq!(
            parse_request("delete d R 1, 2").unwrap(),
            Request::Delete {
                name: "d".into(),
                relation: "R".into(),
                rows: vec![tuple![1, 2]],
            }
        );
        assert_eq!(
            parse_request("SUBSCRIBE d G(x) :- R(x, y).").unwrap(),
            Request::Subscribe {
                name: "d".into(),
                src: "G(x) :- R(x, y).".into(),
            }
        );
        for bad in [
            "INSERT d R",
            "INSERT d",
            "INSERT d R 1, 2;; 3, 4",
            "DELETE d R ;",
            "SUBSCRIBE d",
            "SUBSCRIBE @budget=1 d G(x) :- R(x).",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn delta_frames_render_signed_sorted_rows() {
        use pq_data::tuple;
        let u = SubscriptionUpdate {
            added: vec![tuple![9, 9], tuple![1, 2]],
            removed: vec![tuple![3, "."]],
            epoch: 7,
            cardinality: 5,
            fell_back: true,
            dropped: false,
        };
        let lines = render_delta_frame(4, &u);
        assert_eq!(
            lines,
            [
                "DELTA 4 +2 -1 epoch=7 rows=5 fallback",
                "+ 1, 2",
                "+ 9, 9",
                r#"- 3, ".""#,
            ]
        );
    }

    #[test]
    fn query_flags_set_limits() {
        let r = parse_request("QUERY @deadline_ms=50 @budget=1000 @depth=8 d G(x) :- R(x, y).")
            .unwrap();
        match r {
            Request::Query {
                name,
                src,
                limits,
                count,
            } => {
                assert_eq!(name, "d");
                assert_eq!(src, "G(x) :- R(x, y).");
                assert_eq!(limits.deadline, Some(Duration::from_millis(50)));
                assert_eq!(limits.tuple_budget, Some(1000));
                assert_eq!(limits.max_depth, Some(8));
                assert_eq!(count, None);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn query_count_flags_parse() {
        assert_eq!(
            parse_request("QUERY @count d G(x) :- R(x, y).").unwrap(),
            Request::Query {
                name: "d".into(),
                src: "G(x) :- R(x, y).".into(),
                limits: RequestLimits::default(),
                count: Some(CountMode::Total),
            }
        );
        // Counting composes with resource-limit flags, in either order.
        let r = parse_request("QUERY @budget=100 @count_by(x,y) d G(x, y) :- R(x, y).").unwrap();
        match r {
            Request::Query { limits, count, .. } => {
                assert_eq!(limits.tuple_budget, Some(100));
                assert_eq!(
                    count,
                    Some(CountMode::Grouped(vec!["x".into(), "y".into()]))
                );
            }
            other => panic!("wrong request: {other:?}"),
        }
        for bad in [
            "QUERY @count_by( d G(x) :- R(x).",
            "QUERY @count_by() d G(x) :- R(x).",
            "QUERY @count_by(x,) d G(x) :- R(x).",
            "QUERY @count_by d G(x) :- R(x).",
            "QUERY @count_by=x d G(x) :- R(x).",
            "QUERY @count @count_by(x) d G(x) :- R(x).",
            "EXPLAIN @count d G(x) :- R(x).",
            "ANALYZE @count d G(x) :- R(x).",
            "SUBSCRIBE @count d G(x) :- R(x).",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "",
            "FROB d",
            "LOAD onlyname",
            "QUERY d",
            "QUERY @deadline_ms=abc d G(x) :- R(x).",
            "QUERY @frobnicate=1 d G(x) :- R(x).",
            "STATS now",
            "SHUTDOWN please",
            "EXPLAIN @budget=1 d G(x) :- R(x).",
            "DROP",
            "DROP two names",
            "PERSIST now",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServiceError::Protocol(_))),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn dot_valued_row_cannot_forge_the_terminator() {
        use pq_data::tuple;
        // A single-column row whose value is "." must not render as a line
        // equal to END, or the framed response would terminate early.
        let rel = Relation::with_tuples(["a"], [tuple!["."]]).unwrap();
        let mut lines = Vec::new();
        render_rows(&rel, &mut lines);
        assert_eq!(lines, [r#"".""#.to_string()]);
        assert!(lines.iter().all(|l| l != END));
    }

    #[test]
    fn error_rendering_carries_the_stable_code() {
        let line = render_error(&ServiceError::Overloaded { queue_depth: 4 });
        assert!(line.starts_with("ERR overloaded "), "{line}");
        let line = render_error(&ServiceError::UnknownDatabase("x".into()));
        assert!(line.starts_with("ERR unknown-db "), "{line}");
    }

    #[test]
    fn value_rendering_round_trips_through_the_loader() {
        use pq_data::tuple;
        // Note: commas inside strings do not survive the loader's naive
        // field splitting (a pre-existing format limitation shared with
        // `render_database`); everything else round-trips.
        let rel = Relation::with_tuples(
            ["a", "b"],
            [
                tuple![1, "plain"],
                tuple![2, "99"],
                tuple![3, ""],
                tuple![4, "."],
            ],
        )
        .unwrap();
        let mut lines = vec!["T(a, b):".to_string()];
        render_rows(&rel, &mut lines);
        let text = lines.join("\n");
        let db = pq_data::loader::parse_database(&text).unwrap();
        assert_eq!(
            db.relation("T").unwrap().canonical_rows(),
            rel.canonical_rows()
        );
    }
}
