//! `pq-service` — an embeddable, thread-safe query service over the
//! `pyq` engine stack, plus a line-based TCP front end.
//!
//! The service ties the workspace layers together for concurrent use:
//!
//! * a [`Catalog`] of named databases behind a `RwLock`, handing out
//!   copy-on-write snapshots so long queries never block writers;
//! * a sharded two-level cache — a **plan cache** (canonical query form →
//!   parsed AST + classification + [`pq_core::Plan`]) and a bounded-LRU
//!   **result cache** keyed by `(canonical query form, db name, generation,
//!   epoch)`, so results are invalidated by construction when data changes
//!   (the key carries the full canonical form, not just a hash of it, so
//!   distinct queries can never share an entry);
//! * a fixed-size worker pool with a bounded job queue: when the queue is
//!   full, requests are rejected *before* any work happens with a
//!   structured [`ServiceError::Overloaded`] (admission control, not
//!   unbounded queueing). Every admitted job runs under a
//!   [`pq_engine::ExecutionContext`] deadline/budget derived from
//!   per-request [`RequestLimits`], and is cooperatively cancelled on
//!   shutdown;
//! * [`ServiceMetrics`] — queries served, per-level cache hit/miss,
//!   rejections, resource-exhausted counts, and a latency histogram —
//!   snapshotable as a plain [`MetricsSnapshot`] and dumpable over the
//!   wire;
//! * **incremental views & subscriptions** ([`pq_ivm`]):
//!   [`QueryService::subscribe`] registers a materialized view (CQ or
//!   Datalog program) and streams signed answer deltas; the row-level
//!   mutators [`QueryService::insert_rows`] / [`QueryService::delete_rows`]
//!   maintain every affected view incrementally (counting for nonrecursive
//!   views, `DRed` for recursive ones) under the service's governor limits,
//!   patch the result cache in place, and journal through the WAL;
//! * a tiny [`protocol`] (`LOAD` / `QUERY` / `EXPLAIN` / `ANALYZE` /
//!   `STATS` / `DROP` / `INSERT` / `DELETE` / `SUBSCRIBE` / `PERSIST` /
//!   `SHUTDOWN`, newline-framed, `.`-terminated responses) and a [`server`]
//!   built on `std::net` + `std::thread` only. The wire `LOAD` verb only
//!   works on a server started with [`server::serve_with_data_dir`], and
//!   only for relative paths confined to that directory. Accepted sockets
//!   carry slow-client read/write timeouts ([`server::ServerOptions`]);
//! * an optional **durability layer** ([`wal`] + [`durable`]): set
//!   [`ServiceConfig::durability`] and the catalog survives restarts —
//!   every mutation is appended to a length-prefixed, CRC-checksummed
//!   write-ahead log *under the catalog write lock* (log order = catalog
//!   order), snapshots are written atomically (tmp + rename + dir fsync) on
//!   a configurable cadence / `PERSIST` / graceful drain, and startup
//!   replays snapshot + WAL tail, tolerating a torn final record while
//!   rejecting interior corruption with a typed [`RecoveryError`].
//!
//! # Quick start (embedded)
//!
//! ```
//! use pq_service::{QueryService, RequestLimits};
//!
//! let svc = QueryService::with_defaults();
//! svc.load_str("d", "R(a, b):\n  1, 2\n  2, 3\n").unwrap();
//! let resp = svc
//!     .query("d", "G(x, y) :- R(x, y).", RequestLimits::default())
//!     .unwrap();
//! assert_eq!(resp.rows.len(), 2);
//! svc.shutdown();
//! ```
//!
//! # Quick start (over TCP)
//!
//! See `examples/serve.rs` and `examples/repl.rs`, or the README's
//! service section for the wire grammar.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::missing_panics_doc)]

pub mod cache;
pub mod catalog;
pub mod durable;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;
pub mod wal;

pub use cache::ShardedCache;
pub use catalog::{Catalog, DbSnapshot};
pub use durable::{
    Durability, DurabilityConfig, DurabilityCounters, RecoveryStats, SnapshotSummary,
};
pub use error::{Result, ServiceError};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServiceMetrics};
pub use protocol::{parse_request, Request, END};
pub use server::{
    read_response, roundtrip, serve, serve_with_data_dir, serve_with_options, ServerHandle,
    ServerOptions,
};
pub use service::{
    AnalysisReport, CacheOutcome, CountMode, Explanation, LoadSummary, MutationSummary,
    ProgramAnalysisReport, QueryResponse, QueryService, RequestLimits, ServiceConfig, Subscription,
    SubscriptionUpdate, MAX_TOTAL_THREADS,
};
pub use wal::{FsyncPolicy, RecoveryError};
