//! Classifying a conjunctive query into the paper's complexity landscape.
//!
//! The paper's message, as a decision procedure: given an (extended)
//! conjunctive query, where does it sit?
//!
//! | shape | classification | engine |
//! |-------|----------------|--------|
//! | acyclic, no constraints | combined-complexity polynomial \[18\] | Yannakakis |
//! | acyclic + `≠` | **f.p. tractable** (Theorem 2) | color coding |
//! | acyclic + `<`/`≤` | W\[1\]-complete (Theorem 3) | naive (`n^q`) |
//! | cyclic, pure, hypertree width ≤ k | polynomial for fixed k (Gottlob–Leone–Scarcello) | hypertree |
//! | cyclic | W\[1\]-complete already for pure CQs (Theorem 1) | naive (`n^q`) |
//!
//! The decision procedure itself lives in `pq-analyze`
//! ([`pq_analyze::structure_of`]) so the static analyzer, the planner, and
//! the service all agree on one answer; this module is the planner-facing
//! adapter that adds the W-hierarchy hardness bound from `pq-wtheory`.

use pq_analyze::{structure_of, FigCell, StructureReport};
use pq_query::ConjunctiveQuery;
use pq_wtheory::WClass;

/// The complexity class a conjunctive query falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqClass {
    /// Acyclic, no `≠`, no comparisons: polynomial combined complexity.
    AcyclicPure,
    /// Acyclic with `≠` atoms only: fixed-parameter tractable (Theorem 2).
    AcyclicNeq,
    /// Acyclic (after comparison collapse) with `<`/`≤`: W\[1\]-complete
    /// (Theorem 3).
    AcyclicComparisons,
    /// The comparison system is inconsistent: the answer is empty for every
    /// database.
    InconsistentComparisons,
    /// Cyclic but pure with hypertree width within the configured limit:
    /// polynomial for fixed width by bag evaluation
    /// (Gottlob–Leone–Scarcello).
    CyclicBoundedWidth,
    /// Cyclic relational hypergraph: W\[1\]-complete already without
    /// constraints (Theorem 1).
    Cyclic,
}

/// A classification report for a conjunctive query.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The class.
    pub class: CqClass,
    /// The query-size parameter `q`.
    pub q: usize,
    /// The variable-count parameter `v`.
    pub v: usize,
    /// For Theorem 2 queries: `k = |V1|`, the color count the engine needs
    /// (present also for other classes when `≠` atoms exist).
    pub color_parameter: Option<usize>,
    /// The known parametric lower bound for the class's evaluation problem
    /// (`None` when the problem is f.p. tractable).
    pub hardness: Option<WClass>,
    /// One-line summary quoting the relevant result.
    pub summary: &'static str,
}

fn class_of_cell(cell: FigCell) -> CqClass {
    match cell {
        FigCell::AcyclicPure => CqClass::AcyclicPure,
        FigCell::AcyclicNeq => CqClass::AcyclicNeq,
        FigCell::AcyclicComparisons => CqClass::AcyclicComparisons,
        FigCell::InconsistentComparisons => CqClass::InconsistentComparisons,
        FigCell::CyclicBoundedWidth => CqClass::CyclicBoundedWidth,
        FigCell::Cyclic => CqClass::Cyclic,
    }
}

/// Adapt an analyzer [`StructureReport`] into a [`Classification`]. The
/// planner uses this to avoid classifying twice when it already ran the
/// full analysis.
pub fn classification_of(report: &StructureReport) -> Classification {
    let class = class_of_cell(report.cell);
    let hardness = match class {
        CqClass::AcyclicComparisons | CqClass::Cyclic => Some(WClass::W(1)),
        _ => None,
    };
    Classification {
        class,
        q: report.q,
        v: report.v,
        color_parameter: report.color_parameter,
        hardness,
        summary: report.summary,
    }
}

/// Classify a conjunctive query per Theorems 1–3.
pub fn classify(q: &ConjunctiveQuery) -> Classification {
    classification_of(&structure_of(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::parse_cq;

    #[test]
    fn classes_cover_the_paper_landscape() {
        let acyclic = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        assert_eq!(classify(&acyclic).class, CqClass::AcyclicPure);

        let neq = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let c = classify(&neq);
        assert_eq!(c.class, CqClass::AcyclicNeq);
        assert_eq!(c.color_parameter, Some(2));
        assert_eq!(c.hardness, None);

        let cmp = parse_cq("G(e) :- EM(e, m), ES(e, s), ES(m, s2), s2 < s.").unwrap();
        let c = classify(&cmp);
        assert_eq!(c.class, CqClass::AcyclicComparisons);
        assert_eq!(c.hardness, Some(WClass::W(1)));

        // A pure triangle is cyclic but width 2: the new tractable cell.
        let cyclic = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let c = classify(&cyclic);
        assert_eq!(c.class, CqClass::CyclicBoundedWidth);
        assert_eq!(c.hardness, None);

        // Cyclic *and* impure stays in the hard cell.
        let cyclic_neq = parse_cq("G :- E(x, y), E(y, z), E(z, x), x != y.").unwrap();
        let c = classify(&cyclic_neq);
        assert_eq!(c.class, CqClass::Cyclic);
        assert_eq!(c.hardness, Some(WClass::W(1)));

        let incons = parse_cq("G :- R(x, y), x < y, y < x.").unwrap();
        assert_eq!(classify(&incons).class, CqClass::InconsistentComparisons);
    }

    #[test]
    fn parameters_are_reported() {
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let c = classify(&q);
        assert_eq!(c.v, 3);
        assert!(c.q > 0);
    }

    #[test]
    fn collapse_can_restore_acyclicity() {
        // s ≤ t ∧ t ≤ s merges s and t; R(s,t), S(t,s) then has a two-edge
        // hypergraph on one variable — acyclic after collapse.
        let q = parse_cq("G :- R(s, t), S(t, s), s <= t, t <= s.").unwrap();
        let c = classify(&q);
        assert_eq!(c.class, CqClass::AcyclicComparisons);
    }

    #[test]
    fn adapter_agrees_with_the_analyzer() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x), x != y.").unwrap();
        let report = structure_of(&q);
        let c = classification_of(&report);
        assert_eq!(c.class, CqClass::Cyclic);
        assert_eq!(c.hardness, Some(WClass::W(1)));
        assert_eq!(c.summary, report.summary);
    }

    #[test]
    fn bounded_width_reports_the_decomposition() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let report = structure_of(&q);
        assert_eq!(report.hypertree_width, Some(2));
        assert!(report.width_exact);
        assert!(report.decomposition.is_some());
        let c = classification_of(&report);
        assert_eq!(c.class, CqClass::CyclicBoundedWidth);
        assert_eq!(c.hardness, None);
    }
}
