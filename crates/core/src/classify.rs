//! Classifying a conjunctive query into the paper's complexity landscape.
//!
//! The paper's message, as a decision procedure: given an (extended)
//! conjunctive query, where does it sit?
//!
//! | shape | classification | engine |
//! |-------|----------------|--------|
//! | acyclic, no constraints | combined-complexity polynomial \[18\] | Yannakakis |
//! | acyclic + `≠` | **f.p. tractable** (Theorem 2) | color coding |
//! | acyclic + `<`/`≤` | W\[1\]-complete (Theorem 3) | naive (`n^q`) |
//! | cyclic | W\[1\]-complete already for pure CQs (Theorem 1) | naive (`n^q`) |

use pq_engine::comparisons;
use pq_query::{ConjunctiveQuery, QueryMetrics};
use pq_wtheory::WClass;

/// The complexity class a conjunctive query falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqClass {
    /// Acyclic, no `≠`, no comparisons: polynomial combined complexity.
    AcyclicPure,
    /// Acyclic with `≠` atoms only: fixed-parameter tractable (Theorem 2).
    AcyclicNeq,
    /// Acyclic (after comparison collapse) with `<`/`≤`: W\[1\]-complete
    /// (Theorem 3).
    AcyclicComparisons,
    /// The comparison system is inconsistent: the answer is empty for every
    /// database.
    InconsistentComparisons,
    /// Cyclic relational hypergraph: W\[1\]-complete already without
    /// constraints (Theorem 1).
    Cyclic,
}

/// A classification report for a conjunctive query.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The class.
    pub class: CqClass,
    /// The query-size parameter `q`.
    pub q: usize,
    /// The variable-count parameter `v`.
    pub v: usize,
    /// For Theorem 2 queries: `k = |V1|`, the color count the engine needs
    /// (present also for other classes when `≠` atoms exist).
    pub color_parameter: Option<usize>,
    /// The known parametric lower bound for the class's evaluation problem
    /// (`None` when the problem is f.p. tractable).
    pub hardness: Option<WClass>,
    /// One-line summary quoting the relevant result.
    pub summary: &'static str,
}

/// Classify a conjunctive query per Theorems 1–3.
pub fn classify(q: &ConjunctiveQuery) -> Classification {
    let (class, hardness, summary) = decide_class(q);
    let color_parameter = if q.neqs.is_empty() {
        None
    } else {
        let hg = q.hypergraph();
        Some(pq_engine::colorcoding::NeqPartition::build(q, &hg).k())
    };
    Classification {
        class,
        q: q.size(),
        v: q.num_variables(),
        color_parameter,
        hardness,
        summary,
    }
}

fn decide_class(q: &ConjunctiveQuery) -> (CqClass, Option<WClass>, &'static str) {
    let has_neq = !q.neqs.is_empty();
    let has_cmp = !q.comparisons.is_empty();
    if has_cmp && !has_neq {
        return match comparisons::collapse_query(q) {
            Ok(None) => (
                CqClass::InconsistentComparisons,
                None,
                "comparison system inconsistent: Q(d) = ∅ for every d",
            ),
            Ok(Some(collapsed)) if collapsed.is_acyclic() => (
                CqClass::AcyclicComparisons,
                Some(WClass::W(1)),
                "acyclic with comparisons: W[1]-complete (Theorem 3); expect q in the exponent",
            ),
            _ => (
                CqClass::Cyclic,
                Some(WClass::W(1)),
                "cyclic conjunctive query: W[1]-complete (Theorem 1)",
            ),
        };
    }
    if has_cmp && has_neq {
        // Mixed constraints: at least as hard as Theorem 3.
        return (
            CqClass::AcyclicComparisons,
            Some(WClass::W(1)),
            "≠ and < mixed: at least W[1]-hard (Theorem 3 applies to the < part)",
        );
    }
    if !q.is_acyclic() {
        return (
            CqClass::Cyclic,
            Some(WClass::W(1)),
            "cyclic conjunctive query: W[1]-complete (Theorem 1)",
        );
    }
    if has_neq {
        (
            CqClass::AcyclicNeq,
            None,
            "acyclic with ≠: fixed-parameter tractable by color coding (Theorem 2)",
        )
    } else {
        (
            CqClass::AcyclicPure,
            None,
            "acyclic conjunctive query: polynomial combined complexity (Yannakakis [18])",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::parse_cq;

    #[test]
    fn classes_cover_the_paper_landscape() {
        let acyclic = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        assert_eq!(classify(&acyclic).class, CqClass::AcyclicPure);

        let neq = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let c = classify(&neq);
        assert_eq!(c.class, CqClass::AcyclicNeq);
        assert_eq!(c.color_parameter, Some(2));
        assert_eq!(c.hardness, None);

        let cmp = parse_cq("G(e) :- EM(e, m), ES(e, s), ES(m, s2), s2 < s.").unwrap();
        let c = classify(&cmp);
        assert_eq!(c.class, CqClass::AcyclicComparisons);
        assert_eq!(c.hardness, Some(WClass::W(1)));

        let cyclic = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        assert_eq!(classify(&cyclic).class, CqClass::Cyclic);

        let incons = parse_cq("G :- R(x, y), x < y, y < x.").unwrap();
        assert_eq!(classify(&incons).class, CqClass::InconsistentComparisons);
    }

    #[test]
    fn parameters_are_reported() {
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let c = classify(&q);
        assert_eq!(c.v, 3);
        assert!(c.q > 0);
    }

    #[test]
    fn collapse_can_restore_acyclicity() {
        // s ≤ t ∧ t ≤ s merges s and t; R(s,t), S(t,s) then has a two-edge
        // hypergraph on one variable — acyclic after collapse.
        let q = parse_cq("G :- R(s, t), S(t, s), s <= t, t <= s.").unwrap();
        let c = classify(&q);
        assert_eq!(c.class, CqClass::AcyclicComparisons);
    }
}
