//! The planner: dispatch a conjunctive query to the engine the paper's
//! classification recommends.

use pq_analyze::{analyze, Analysis, AnalyzeOptions};
use pq_data::{Database, Relation, Tuple};
use pq_engine::colorcoding::{ColorCodingOptions, HashFamily};
use pq_engine::governor::{ExecutionContext, ResourceKind, SharedContext};
use pq_engine::{colorcoding, hypertree, naive, naive_indexed, yannakakis, EngineError, Result};
use pq_exec::Pool;
use pq_hypergraph::HypertreeDecomposition;
use pq_query::ConjunctiveQuery;

use crate::classify::{classification_of, Classification, CqClass};

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Above this color parameter `k`, the Theorem 2 engine switches from
    /// the deterministic k-perfect family to randomized trials (the
    /// deterministic family has `2^{O(k log k)}` members). Emptiness answers
    /// then acquire the paper's one-sided error `e^{-c}`.
    pub deterministic_k_limit: usize,
    /// The `c` of the randomized driver's `⌈c·e^k⌉` trials.
    pub randomized_confidence: f64,
    /// Seed for randomized trials.
    pub seed: u64,
    /// Static-analysis options: whether (and up to what size) the planner
    /// core-minimizes the query before choosing an engine.
    pub analysis: AnalyzeOptions,
    /// Upper bound on the intra-query parallelism degree a plan may pick
    /// (see [`Plan::parallelism`]). Defaults to [`pq_exec::default_threads`]
    /// — the `PQ_EXEC_THREADS` override or the machine's core count.
    pub max_parallelism: usize,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            deterministic_k_limit: 4,
            randomized_confidence: 5.0,
            seed: 0x9e3779b9,
            analysis: AnalyzeOptions::default(),
            max_parallelism: pq_exec::default_threads(),
        }
    }
}

/// The engine a [`Plan`] commits to, with all query-only preprocessing
/// (classification, color-parameter inspection, hash-family choice) already
/// baked in. Executing a stored plan therefore never reclassifies — the
/// preprocessing/evaluation split a plan cache amortizes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineChoice {
    /// Yannakakis join-tree evaluation (acyclic, no constraints).
    Yannakakis,
    /// Theorem 2 color coding, with the options chosen at plan time.
    ColorCoding(ColorCodingOptions),
    /// The comparison system is inconsistent: the answer is empty for every
    /// database.
    ConstantEmpty,
    /// Hypertree bag evaluation for cyclic pure queries of bounded width;
    /// the decomposition the analyzer found is baked into the plan, so
    /// execution never repeats the width search.
    Hypertree(HypertreeDecomposition),
    /// Naive `n^q` backtracking (wide cyclic queries and comparisons).
    Naive,
    /// Answer from a registered view's maintained relation (`PQA801`/
    /// `PQA802`): project the listed view columns under the query's head
    /// attributes. Degradation chain by construction: when the database
    /// has no relation under the view's name at execution time, the
    /// embedded `fallback` — the choice the planner would have made
    /// without the view — runs instead.
    ViewScan {
        /// Name of the registered view whose relation answers the query.
        view: String,
        /// Column indices into the view relation, in query-head order.
        projection: Vec<usize>,
        /// The normal engine choice, used when the view relation is absent.
        fallback: Box<EngineChoice>,
    },
}

/// The engine label a hypertree plan advertises; widths within the default
/// limit are spelled out so `EXPLAIN` output names the bound.
fn hypertree_label(width: usize) -> &'static str {
    match width {
        1 => "hypertree (width 1)",
        2 => "hypertree (width 2)",
        3 => "hypertree (width 3)",
        _ => "hypertree",
    }
}

/// The outcome of planning: which engine will run and why.
///
/// A `Plan` is *reusable*: it captures everything derived from the query
/// alone, so the same plan can be executed against many databases (or the
/// same database many times) via [`Plan::execute`] without repeating
/// classification or GYO work. [`evaluate`]/[`is_nonempty`] are thin
/// plan-then-execute wrappers.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The classification that drove the choice.
    pub classification: Classification,
    /// Human-readable engine name.
    pub engine: &'static str,
    /// The committed engine plus its plan-time options.
    pub choice: EngineChoice,
    /// The full static analysis: diagnostics, the minimized core (when one
    /// exists — execution runs it instead of the original), and the
    /// provably-empty verdict that short-circuits to [`EngineChoice::ConstantEmpty`].
    pub analysis: Analysis,
    /// The intra-query parallelism degree this plan asks for: the size of
    /// the [`Pool`] that [`Plan::execute_parallel`] should be handed.
    /// Constant plans (and single-atom queries, which have no fan-out) get
    /// `1`; everything else gets the planner's `max_parallelism`. Executing
    /// with a pool of a different size is still correct — every parallel
    /// engine produces thread-count-independent output — this is only the
    /// planner's recommendation.
    pub parallelism: usize,
}

/// Choose an engine for the query.
///
/// The planner runs the static analyzer first: a provably-empty query
/// (reflexive `≠`, inconsistent comparisons, a `≠` forced equal) compiles
/// to a constant plan that never touches the database, and when core
/// minimization shrinks the query, classification and execution both use
/// the minimized core — `q` and `v` drop before any engine sees them.
pub fn plan(q: &ConjunctiveQuery, opts: &PlannerOptions) -> Plan {
    let analysis = analyze(q, &opts.analysis);
    let classification = classification_of(&analysis.report);
    let (engine, choice) = if analysis.provably_empty() {
        let label = if classification.class == CqClass::InconsistentComparisons {
            "constant (empty answer)"
        } else {
            "constant (provably empty)"
        };
        (label, EngineChoice::ConstantEmpty)
    } else {
        match classification.class {
            CqClass::AcyclicPure => ("yannakakis", EngineChoice::Yannakakis),
            CqClass::AcyclicNeq => {
                let k = classification.color_parameter.unwrap_or(0);
                let cc = cc_options(k, opts);
                let name = if k <= opts.deterministic_k_limit {
                    "colorcoding (deterministic k-perfect family)"
                } else {
                    "colorcoding (randomized)"
                };
                (name, EngineChoice::ColorCoding(cc))
            }
            CqClass::InconsistentComparisons => {
                ("constant (empty answer)", EngineChoice::ConstantEmpty)
            }
            CqClass::CyclicBoundedWidth => match analysis.report.decomposition.clone() {
                Some(d) => (hypertree_label(d.width()), EngineChoice::Hypertree(d)),
                // The cell implies a decomposition; degrade rather than
                // panic if a future analyzer change breaks that link.
                None => ("naive backtracking", EngineChoice::Naive),
            },
            CqClass::AcyclicComparisons | CqClass::Cyclic => {
                ("naive backtracking", EngineChoice::Naive)
            }
        }
    };
    let parallelism = match &choice {
        EngineChoice::ConstantEmpty => 1,
        _ if analysis.effective(q).atoms.len() <= 1 => 1,
        _ => opts.max_parallelism.max(1),
    };
    // A view match (PQA801/PQA802) wraps the normal choice: scan the
    // maintained view relation when it is present, degrade to the choice
    // above when it is not. Parallelism keeps the fallback's degree — the
    // scan itself is O(|view|) and needs none.
    let (engine, choice) = match &analysis.view_match {
        Some(m) => (
            "view-scan",
            EngineChoice::ViewScan {
                view: m.view.clone(),
                projection: m.projection.clone(),
                fallback: Box::new(choice),
            },
        ),
        None => (engine, choice),
    };
    Plan {
        classification,
        engine,
        choice,
        analysis,
        parallelism,
    }
}

fn cc_options(k: usize, opts: &PlannerOptions) -> ColorCodingOptions {
    if k <= opts.deterministic_k_limit {
        ColorCodingOptions {
            family: HashFamily::Perfect,
            minimize_hashed_attrs: true,
        }
    } else {
        ColorCodingOptions::randomized(k, opts.randomized_confidence, opts.seed)
    }
}

fn empty_head(q: &ConjunctiveQuery) -> Result<Relation> {
    Relation::new(pq_engine::binding::head_attrs(&q.head_terms)).map_err(EngineError::Data)
}

/// Project the maintained view relation onto the query's head attributes —
/// the `O(|view|)` scan that replaces evaluation for `PQA801`/`PQA802`
/// matches. The output relation carries the *query's* head attributes, so
/// it is byte-identical to what direct evaluation would return.
pub fn view_scan(q: &ConjunctiveQuery, view: &Relation, projection: &[usize]) -> Result<Relation> {
    let mut out = empty_head(q)?;
    for t in view.iter() {
        out.insert(Tuple::new(projection.iter().map(|&j| t[j].clone())))?;
    }
    Ok(out)
}

/// Serial execution of one engine choice; `ViewScan` recurses into its
/// fallback when the view relation is absent from `db`.
fn execute_choice(choice: &EngineChoice, q: &ConjunctiveQuery, db: &Database) -> Result<Relation> {
    match choice {
        EngineChoice::Yannakakis => yannakakis::evaluate(q, db),
        EngineChoice::ColorCoding(cc) => colorcoding::evaluate(q, db, cc),
        EngineChoice::ConstantEmpty => empty_head(q),
        EngineChoice::Hypertree(d) => {
            hypertree::evaluate_decomposed(q, db, d, &ExecutionContext::unlimited())
        }
        EngineChoice::Naive => naive::evaluate(q, db),
        EngineChoice::ViewScan {
            view,
            projection,
            fallback,
        } => match db.relation(view) {
            Ok(rel) => view_scan(q, rel, projection),
            Err(_) => execute_choice(fallback, q, db),
        },
    }
}

fn execute_choice_governed(
    choice: &EngineChoice,
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<Relation> {
    match choice {
        EngineChoice::Yannakakis => yannakakis::evaluate_governed(q, db, ctx),
        EngineChoice::ColorCoding(cc) => colorcoding::evaluate_governed(q, db, cc, ctx),
        EngineChoice::ConstantEmpty => empty_head(q),
        EngineChoice::Hypertree(d) => hypertree::evaluate_decomposed(q, db, d, ctx),
        EngineChoice::Naive => naive::evaluate_governed(q, db, ctx),
        EngineChoice::ViewScan {
            view,
            projection,
            fallback,
        } => match db.relation(view) {
            Ok(rel) => view_scan(q, rel, projection),
            Err(_) => execute_choice_governed(fallback, q, db, ctx),
        },
    }
}

fn is_nonempty_choice(choice: &EngineChoice, q: &ConjunctiveQuery, db: &Database) -> Result<bool> {
    match choice {
        EngineChoice::Yannakakis => yannakakis::is_nonempty(q, db),
        EngineChoice::ColorCoding(cc) => colorcoding::is_nonempty(q, db, cc),
        EngineChoice::ConstantEmpty => Ok(false),
        EngineChoice::Hypertree(d) => {
            hypertree::is_nonempty_decomposed(q, db, d, &ExecutionContext::unlimited())
        }
        EngineChoice::Naive => naive::is_nonempty(q, db),
        EngineChoice::ViewScan { view, fallback, .. } => match db.relation(view) {
            // A projection is nonempty iff its source is.
            Ok(rel) => Ok(!rel.is_empty()),
            Err(_) => is_nonempty_choice(fallback, q, db),
        },
    }
}

fn execute_choice_parallel(
    choice: &EngineChoice,
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<Relation> {
    match choice {
        EngineChoice::Yannakakis => {
            yannakakis::evaluate_parallel(q, db, Default::default(), shared, pool)
        }
        EngineChoice::ColorCoding(cc) => colorcoding::evaluate_parallel(q, db, cc, shared, pool),
        EngineChoice::ConstantEmpty => empty_head(q),
        EngineChoice::Hypertree(d) => {
            hypertree::evaluate_decomposed_parallel(q, db, d, shared, pool)
        }
        EngineChoice::Naive => naive::evaluate_parallel(q, db, shared, pool),
        EngineChoice::ViewScan {
            view,
            projection,
            fallback,
        } => match db.relation(view) {
            // The scan is linear in the view; no fan-out to parallelize.
            Ok(rel) => view_scan(q, rel, projection),
            Err(_) => execute_choice_parallel(fallback, q, db, shared, pool),
        },
    }
}

fn is_nonempty_choice_parallel(
    choice: &EngineChoice,
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<bool> {
    match choice {
        EngineChoice::Yannakakis => yannakakis::is_nonempty_parallel(q, db, shared, pool),
        EngineChoice::ColorCoding(cc) => colorcoding::is_nonempty_parallel(q, db, cc, shared, pool),
        EngineChoice::ConstantEmpty => Ok(false),
        EngineChoice::Hypertree(d) => {
            hypertree::is_nonempty_decomposed_parallel(q, db, d, shared, pool)
        }
        EngineChoice::Naive => naive::is_nonempty_parallel(q, db, shared, pool),
        EngineChoice::ViewScan { view, fallback, .. } => match db.relation(view) {
            Ok(rel) => Ok(!rel.is_empty()),
            Err(_) => is_nonempty_choice_parallel(fallback, q, db, shared, pool),
        },
    }
}

impl Plan {
    /// Execute this plan's committed engine on `(q, db)` without
    /// reclassifying. `q` must be the query the plan was built from (or one
    /// with the same structure — the plan stores no per-query data beyond
    /// the choice, so handing it a structurally different query runs the
    /// wrong engine, not a wrong answer).
    pub fn execute(&self, q: &ConjunctiveQuery, db: &Database) -> Result<Relation> {
        execute_choice(&self.choice, self.analysis.effective(q), db)
    }

    /// The base relations this plan reads when executed on `q`: the body
    /// atoms of the *effective* (possibly core-minimized) query, sorted and
    /// deduplicated. A constant plan reads nothing. Callers keying caches
    /// per relation (the service's result cache, view maintenance) use this
    /// to ignore mutations to relations the plan never touches.
    pub fn mentioned_relations(&self, q: &ConjunctiveQuery) -> Vec<String> {
        if matches!(self.choice, EngineChoice::ConstantEmpty) {
            return Vec::new();
        }
        let mut names: Vec<String> = self
            .analysis
            .effective(q)
            .atoms
            .iter()
            .map(|a| a.relation.clone())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// [`Plan::execute`] under the limits of `ctx` (see
    /// [`ExecutionContext`]).
    pub fn execute_governed(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        ctx: &ExecutionContext,
    ) -> Result<Relation> {
        execute_choice_governed(&self.choice, self.analysis.effective(q), db, ctx)
    }

    /// Emptiness of `Q(d)` with the committed engine, without reclassifying.
    pub fn is_nonempty(&self, q: &ConjunctiveQuery, db: &Database) -> Result<bool> {
        is_nonempty_choice(&self.choice, self.analysis.effective(q), db)
    }

    /// [`Plan::execute_governed`] with the committed engine's intra-query
    /// parallel path on `pool`, every worker charging the `shared` envelope.
    /// The answer is identical to the serial paths at any pool size;
    /// [`Plan::parallelism`] is the pool size this plan recommends.
    pub fn execute_parallel(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        shared: &SharedContext,
        pool: &Pool,
    ) -> Result<Relation> {
        execute_choice_parallel(&self.choice, self.analysis.effective(q), db, shared, pool)
    }

    /// Emptiness with the committed engine's parallel path; see
    /// [`Plan::execute_parallel`].
    pub fn is_nonempty_parallel(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        shared: &SharedContext,
        pool: &Pool,
    ) -> Result<bool> {
        is_nonempty_choice_parallel(&self.choice, self.analysis.effective(q), db, shared, pool)
    }
}

/// Evaluate `Q(d)` with the engine the classification recommends.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database, opts: &PlannerOptions) -> Result<Relation> {
    plan(q, opts).execute(q, db)
}

/// Emptiness with the recommended engine.
pub fn is_nonempty(q: &ConjunctiveQuery, db: &Database, opts: &PlannerOptions) -> Result<bool> {
    plan(q, opts).is_nonempty(q, db)
}

/// One attempt in the graceful-degradation chain of
/// [`evaluate_with_fallback`].
#[derive(Debug, Clone)]
pub struct FallbackAttempt {
    /// The engine tried.
    pub engine: &'static str,
    /// `None` when the attempt succeeded; otherwise the error text that
    /// moved the chain along.
    pub error: Option<String>,
}

/// The outcome of a graceful-degradation evaluation: the answer plus the
/// trail of engines tried to get it.
#[derive(Debug)]
pub struct FallbackOutcome {
    /// The query answer.
    pub result: Relation,
    /// The classification that framed the chain.
    pub classification: Classification,
    /// Attempts in order; the last entry is the one that succeeded.
    pub attempts: Vec<FallbackAttempt>,
}

/// May the chain recover from `e` by trying a different engine?
///
/// `Unsupported` always: the next engine may well handle the query. Budget
/// and depth exhaustion: yes — the tuple budget is shared (a later engine
/// gets whatever is left, which is zero after a genuine exhaustion but
/// intact after an injected fault), and a depth-limited recursive engine can
/// be rescued by an iterative one. Timeouts and cancellation are global
/// conditions — no engine can outrun a passed deadline or a cancelled
/// token — so they propagate immediately.
pub(crate) fn retryable_engine_error(e: &EngineError) -> bool {
    retryable(e)
}

fn retryable(e: &EngineError) -> bool {
    match e {
        EngineError::Unsupported(_) => true,
        EngineError::ResourceExhausted { kind, .. } => {
            matches!(kind, ResourceKind::TupleBudget | ResourceKind::DepthLimit)
        }
        _ => false,
    }
}

/// Evaluate `Q(d)` with graceful degradation under the limits of `ctx`.
///
/// Tries the chain **color-coding → Yannakakis → hypertree → indexed-naive →
/// naive**, advancing past engines that reject the query (`Unsupported`) or give up
/// on a recoverable limit (see [`FallbackAttempt`]). Every attempt shares
/// `ctx`, so a fallback engine runs on exactly the budget its predecessors
/// left. The chain never trades correctness for progress: the color-coding
/// step always uses the deterministic k-perfect family, because the
/// randomized family's one-sided error could silently drop answer tuples —
/// the one failure mode this whole layer exists to rule out.
pub fn evaluate_with_fallback(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<FallbackOutcome> {
    // A minimization-free analysis: cheap (no containment checks), and
    // enough to short-circuit every provably-empty query — not just the
    // inconsistent-comparison case the classification names.
    let analysis = analyze(
        q,
        &AnalyzeOptions {
            minimize: false,
            ..Default::default()
        },
    );
    let classification = classification_of(&analysis.report);
    if analysis.provably_empty() || classification.class == CqClass::InconsistentComparisons {
        let result = Relation::new(pq_engine::binding::head_attrs(&q.head_terms))
            .map_err(EngineError::Data)?;
        return Ok(FallbackOutcome {
            result,
            classification,
            attempts: vec![FallbackAttempt {
                engine: "constant (empty answer)",
                error: None,
            }],
        });
    }
    let cc = ColorCodingOptions {
        family: HashFamily::Perfect,
        minimize_hashed_attrs: true,
    };
    type Step<'a> = (&'static str, Box<dyn Fn() -> Result<Relation> + 'a>);
    let chain: [Step<'_>; 5] = [
        (
            "color-coding",
            Box::new(|| colorcoding::evaluate_governed(q, db, &cc, ctx)),
        ),
        (
            "yannakakis",
            Box::new(|| yannakakis::evaluate_governed(q, db, ctx)),
        ),
        (
            "hypertree",
            Box::new(|| hypertree::evaluate_governed(q, db, ctx)),
        ),
        (
            "naive-indexed",
            Box::new(|| naive_indexed::evaluate_governed(q, db, ctx)),
        ),
        ("naive", Box::new(|| naive::evaluate_governed(q, db, ctx))),
    ];
    let mut attempts = Vec::new();
    let mut last_err: Option<EngineError> = None;
    for (engine, run) in chain {
        match run() {
            Ok(result) => {
                attempts.push(FallbackAttempt {
                    engine,
                    error: None,
                });
                return Ok(FallbackOutcome {
                    result,
                    classification,
                    attempts,
                });
            }
            Err(e) if retryable(&e) => {
                attempts.push(FallbackAttempt {
                    engine,
                    error: Some(e.to_string()),
                });
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("chain is nonempty"))
}

/// The decision problem `t ∈ Q(d)` with the recommended engine.
pub fn decide(
    q: &ConjunctiveQuery,
    db: &Database,
    t: &Tuple,
    opts: &PlannerOptions,
) -> Result<bool> {
    match q.bind_head(t).map_err(EngineError::Query)? {
        None => Ok(false),
        Some(bq) => is_nonempty(&bq, db, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_query::parse_cq;

    fn db() -> Database {
        let mut d = Database::new();
        d.add_table(
            "EP",
            ["e", "p"],
            [
                tuple!["ann", "p1"],
                tuple!["ann", "p2"],
                tuple!["bob", "p1"],
            ],
        )
        .unwrap();
        d.add_table("R", ["a", "b"], [tuple![1, 2], tuple![2, 3]])
            .unwrap();
        d.add_table("S", ["b", "c"], [tuple![2, 9]]).unwrap();
        d
    }

    #[test]
    fn plans_name_their_engines() {
        let opts = PlannerOptions::default();
        let p = plan(&parse_cq("G(x) :- R(x, y), S(y, z).").unwrap(), &opts);
        assert_eq!(p.engine, "yannakakis");
        let p = plan(
            &parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap(),
            &opts,
        );
        assert!(p.engine.starts_with("colorcoding"));
        // Cyclic but width-2: the hypertree engine, naming its bound.
        let p = plan(&parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap(), &opts);
        assert_eq!(p.engine, "hypertree (width 2)");
        // Cyclic and impure: no bounded-width promotion.
        let p = plan(
            &parse_cq("G :- R(x, y), R(y, z), R(z, x), x != y.").unwrap(),
            &opts,
        );
        assert_eq!(p.engine, "naive backtracking");
        // Cyclic and too wide for the exact gate: heuristic width 4 > 3.
        let p = plan(&parse_cq(&k7_query()).unwrap(), &opts);
        assert_eq!(p.engine, "naive backtracking");
    }

    /// The K7 clique query as 21 binary atoms: past [`pq_hypergraph::EXACT_EDGE_LIMIT`],
    /// the greedy heuristic certifies width 4 — above the engine limit.
    fn k7_query() -> String {
        let mut atoms = Vec::new();
        for i in 0..7 {
            for j in (i + 1)..7 {
                atoms.push(format!("R(v{i}, v{j})"));
            }
        }
        format!("G :- {}.", atoms.join(", "))
    }

    #[test]
    fn stored_plans_execute_without_reclassifying() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), x < y.",
            "G(x) :- R(x, y), x < y, y < x.",
        ] {
            let q = parse_cq(src).unwrap();
            let p = plan(&q, &opts);
            // Repeated executions of the same stored plan agree with the
            // one-shot entry point and with each other.
            let one_shot = evaluate(&q, &d, &opts).unwrap();
            assert_eq!(p.execute(&q, &d).unwrap(), one_shot, "{src}");
            assert_eq!(p.execute(&q, &d).unwrap(), one_shot, "{src}");
            assert_eq!(
                p.is_nonempty(&q, &d).unwrap(),
                is_nonempty(&q, &d, &opts).unwrap(),
                "{src}"
            );
            // Governed execution with no limits matches too.
            let ctx = ExecutionContext::unlimited();
            assert_eq!(p.execute_governed(&q, &d, &ctx).unwrap(), one_shot, "{src}");
        }
    }

    #[test]
    fn plan_choice_matches_engine_label() {
        let opts = PlannerOptions::default();
        let p = plan(&parse_cq("G(x) :- R(x, y), S(y, z).").unwrap(), &opts);
        assert_eq!(p.choice, EngineChoice::Yannakakis);
        let p = plan(
            &parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap(),
            &opts,
        );
        assert!(matches!(p.choice, EngineChoice::ColorCoding(_)));
        let p = plan(&parse_cq("G :- R(x, y), x < y, y < x.").unwrap(), &opts);
        assert_eq!(p.choice, EngineChoice::ConstantEmpty);
        let p = plan(&parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap(), &opts);
        match &p.choice {
            EngineChoice::Hypertree(d) => assert_eq!(d.width(), 2),
            other => panic!("triangle should plan hypertree, got {other:?}"),
        }
        let p = plan(&parse_cq(&k7_query()).unwrap(), &opts);
        assert_eq!(p.choice, EngineChoice::Naive);
    }

    #[test]
    fn planner_results_agree_with_naive_oracle() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), x < y.",
        ] {
            let q = parse_cq(src).unwrap();
            let fast = evaluate(&q, &d, &opts).unwrap();
            let slow = naive::evaluate(&q, &d).unwrap();
            assert_eq!(fast, slow, "{src}");
            assert_eq!(
                is_nonempty(&q, &d, &opts).unwrap(),
                naive::is_nonempty(&q, &d).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn inconsistent_comparisons_evaluate_empty() {
        let opts = PlannerOptions::default();
        let q = parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap();
        let out = evaluate(&q, &db(), &opts).unwrap();
        assert!(out.is_empty());
        assert!(!is_nonempty(&q, &db(), &opts).unwrap());
    }

    #[test]
    fn decide_routes_through_planner() {
        let opts = PlannerOptions::default();
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        assert!(decide(&q, &db(), &tuple!["ann"], &opts).unwrap());
        assert!(!decide(&q, &db(), &tuple!["bob"], &opts).unwrap());
    }

    #[test]
    fn fallback_chain_reaches_hypertree_for_bounded_width_cycles() {
        let d = db();
        let q = parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap();
        let ctx = ExecutionContext::unlimited();
        let out = evaluate_with_fallback(&q, &d, &ctx).unwrap();
        assert_eq!(out.result, naive::evaluate(&q, &d).unwrap());
        let engines: Vec<_> = out.attempts.iter().map(|a| a.engine).collect();
        assert_eq!(engines, vec!["color-coding", "yannakakis", "hypertree"]);
        assert!(out.attempts[0].error.is_some());
        assert!(out.attempts[1].error.is_some());
        assert!(out.attempts[2].error.is_none());
    }

    #[test]
    fn fallback_chain_reaches_naive_indexed_for_wide_cyclic_queries() {
        let d = db();
        let q = parse_cq(&k7_query()).unwrap();
        let ctx = ExecutionContext::unlimited();
        let out = evaluate_with_fallback(&q, &d, &ctx).unwrap();
        assert_eq!(out.result, naive::evaluate(&q, &d).unwrap());
        let engines: Vec<_> = out.attempts.iter().map(|a| a.engine).collect();
        assert_eq!(
            engines,
            vec!["color-coding", "yannakakis", "hypertree", "naive-indexed"]
        );
        assert!(out.attempts[2].error.is_some());
        assert!(out.attempts[3].error.is_none());
    }

    #[test]
    fn fallback_agrees_with_naive_oracle_when_unlimited() {
        let d = db();
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), x < y.",
        ] {
            let q = parse_cq(src).unwrap();
            let out = evaluate_with_fallback(&q, &d, &ExecutionContext::unlimited()).unwrap();
            assert_eq!(out.result, naive::evaluate(&q, &d).unwrap(), "{src}");
            assert!(out.attempts.last().unwrap().error.is_none(), "{src}");
        }
    }

    #[test]
    fn fallback_returns_the_last_error_when_every_engine_gives_up() {
        let d = db();
        // The answer is nonempty, so a zero budget cannot be satisfied
        // honestly by any engine in the chain.
        let q = parse_cq("G(x, c) :- R(x, y), S(y, c).").unwrap();
        let ctx = ExecutionContext::new().with_tuple_budget(0);
        let err = evaluate_with_fallback(&q, &d, &ctx).unwrap_err();
        assert!(err.is_resource_exhausted(), "got {err}");
        // Wrong answers are never returned: exhaustion is an error, not an
        // empty relation.
    }

    #[test]
    fn fallback_depth_limit_exhausts_recursive_engines() {
        let d = db();
        // Too wide for the hypertree engine: only the recursive backtrackers
        // apply, and depth 1 is not enough for a 21-atom search.
        let q = parse_cq(&k7_query()).unwrap();
        let ctx = ExecutionContext::new().with_max_depth(1);
        let err = evaluate_with_fallback(&q, &d, &ctx).unwrap_err();
        match err {
            EngineError::ResourceExhausted { kind, .. } => {
                assert_eq!(kind, ResourceKind::DepthLimit);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn fallback_inconsistent_comparisons_short_circuit() {
        let q = parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap();
        let out = evaluate_with_fallback(&q, &db(), &ExecutionContext::unlimited()).unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].engine, "constant (empty answer)");
    }

    #[test]
    fn provably_empty_queries_compile_to_constant_plans() {
        let opts = PlannerOptions::default();
        let d = db();
        let q = parse_cq("G(x) :- R(x, y), x != x.").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.choice, EngineChoice::ConstantEmpty);
        assert_eq!(p.engine, "constant (provably empty)");
        let out = p.execute(&q, &d).unwrap();
        assert!(out.is_empty());
        // The verdict is sound: naive evaluation agrees.
        assert_eq!(out, naive::evaluate(&q, &d).unwrap());
        assert!(!p.is_nonempty(&q, &d).unwrap());
    }

    #[test]
    fn plans_execute_the_minimized_core() {
        let opts = PlannerOptions::default();
        let d = db();
        let q = parse_cq("G(x, c) :- R(x, y), S(y, c), R(x, y2).").unwrap();
        let p = plan(&q, &opts);
        let core = p.analysis.rewritten.as_ref().expect("redundant atom drops");
        assert_eq!(core.atoms.len(), 2);
        // The core's execution is indistinguishable from the original's.
        assert_eq!(p.execute(&q, &d).unwrap(), naive::evaluate(&q, &d).unwrap());
    }

    #[test]
    fn fallback_short_circuits_all_provably_empty_queries() {
        let q = parse_cq("G :- R(x, y), x != y, x <= y, y <= x.").unwrap();
        let out = evaluate_with_fallback(&q, &db(), &ExecutionContext::unlimited()).unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.attempts[0].engine, "constant (empty answer)");
    }

    #[test]
    fn parallel_execution_matches_serial_at_every_degree() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), x < y, y < x.",
        ] {
            let q = parse_cq(src).unwrap();
            let p = plan(&q, &opts);
            let serial = p.execute(&q, &d).unwrap();
            for t in [1, 2, 8] {
                let pool = Pool::new(t);
                let shared = ExecutionContext::unlimited().into_shared();
                assert_eq!(
                    p.execute_parallel(&q, &d, &shared, &pool).unwrap(),
                    serial,
                    "{src} at degree {t}"
                );
                let shared = ExecutionContext::unlimited().into_shared();
                assert_eq!(
                    p.is_nonempty_parallel(&q, &d, &shared, &pool).unwrap(),
                    !serial.is_empty(),
                    "{src} at degree {t}"
                );
            }
        }
    }

    #[test]
    fn plans_pick_a_parallelism_degree() {
        let opts = PlannerOptions {
            max_parallelism: 8,
            ..Default::default()
        };
        // Constant plans have nothing to parallelize.
        let p = plan(&parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap(), &opts);
        assert_eq!(p.parallelism, 1);
        // Single-atom queries have no fan-out either.
        let p = plan(&parse_cq("G(x) :- R(x, y).").unwrap(), &opts);
        assert_eq!(p.parallelism, 1);
        // Multi-atom plans take the planner's cap.
        let p = plan(&parse_cq("G(x, c) :- R(x, y), S(y, c).").unwrap(), &opts);
        assert_eq!(p.parallelism, 8);
    }

    #[test]
    fn mentioned_relations_follow_the_effective_query() {
        let opts = PlannerOptions::default();
        let q = parse_cq("G(x) :- R(x, y), S(y, z), R(x, w).").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.mentioned_relations(&q), vec!["R".to_string(), "S".into()]);
        // A constant plan never touches the database.
        let q2 = parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap();
        let p2 = plan(&q2, &opts);
        assert!(p2.mentioned_relations(&q2).is_empty());
    }

    fn view_opts(views: Vec<(&str, &str)>) -> PlannerOptions {
        PlannerOptions {
            analysis: AnalyzeOptions {
                views: views
                    .into_iter()
                    .map(|(n, v)| (n.to_string(), parse_cq(v).unwrap()))
                    .collect(),
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn view_scan_answers_equivalent_queries_from_the_materialized_relation() {
        let opts = view_opts(vec![("rs", "V(a, c) :- R(a, b), S(b, c).")]);
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.engine, "view-scan");
        let EngineChoice::ViewScan { ref fallback, .. } = p.choice else {
            panic!("expected a view-scan choice, got {:?}", p.choice);
        };
        assert_eq!(**fallback, EngineChoice::Yannakakis);

        // Materialize the view into the database under its name: the scan
        // must return exactly what direct evaluation returns — attributes
        // included (the query's head names, not the view's).
        let mut d = db();
        let view_q = parse_cq("V(a, c) :- R(a, b), S(b, c).").unwrap();
        let materialized = naive::evaluate(&view_q, &d).unwrap();
        d.set_relation("rs".to_string(), materialized);
        let direct = naive::evaluate(&q, &d).unwrap();
        assert_eq!(p.execute(&q, &d).unwrap(), direct);
        assert_eq!(p.is_nonempty(&q, &d).unwrap(), !direct.is_empty());
        let pool = Pool::new(2);
        let shared = ExecutionContext::unlimited().into_shared();
        assert_eq!(p.execute_parallel(&q, &d, &shared, &pool).unwrap(), direct);
        let ctx = ExecutionContext::unlimited();
        assert_eq!(p.execute_governed(&q, &d, &ctx).unwrap(), direct);
    }

    #[test]
    fn view_scan_projects_contained_queries() {
        let opts = view_opts(vec![("rs", "V(a, c) :- R(a, b), S(b, c).")]);
        let q = parse_cq("G(z) :- R(x, y), S(y, z).").unwrap();
        let p = plan(&q, &opts);
        let EngineChoice::ViewScan { ref projection, .. } = p.choice else {
            panic!("expected a view-scan choice, got {:?}", p.choice);
        };
        assert_eq!(projection, &vec![1]);
        let mut d = db();
        let view_q = parse_cq("V(a, c) :- R(a, b), S(b, c).").unwrap();
        let materialized = naive::evaluate(&view_q, &d).unwrap();
        d.set_relation("rs".to_string(), materialized);
        assert_eq!(p.execute(&q, &d).unwrap(), naive::evaluate(&q, &d).unwrap());
    }

    #[test]
    fn view_scan_degrades_to_the_fallback_without_the_relation() {
        let opts = view_opts(vec![("rs", "V(a, c) :- R(a, b), S(b, c).")]);
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.engine, "view-scan");
        // No `rs` relation in the database: the fallback engine answers.
        let d = db();
        assert_eq!(p.execute(&q, &d).unwrap(), naive::evaluate(&q, &d).unwrap());
        assert!(p.is_nonempty(&q, &d).unwrap());
    }

    #[test]
    fn unrelated_views_leave_plans_unchanged() {
        let opts = view_opts(vec![("t", "V(a) :- T(a, b).")]);
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.engine, "yannakakis");
        assert_eq!(p.choice, EngineChoice::Yannakakis);
    }

    #[test]
    fn large_k_switches_to_randomized() {
        let opts = PlannerOptions {
            deterministic_k_limit: 2,
            ..Default::default()
        };
        // chain with three pairwise-distant inequalities → k = 4 > 2
        let q = parse_cq("G :- R(x, y), S(y, z), x != z.").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.classification.color_parameter, Some(2));
        let q2 = parse_cq("G :- R(a, b), R(b, c), R(c, d), a != c, a != d, b != d.").unwrap();
        let p2 = plan(&q2, &opts);
        assert_eq!(p2.classification.color_parameter, Some(4));
        assert_eq!(p2.engine, "colorcoding (randomized)");
    }
}
