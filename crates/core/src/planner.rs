//! The planner: dispatch a conjunctive query to the engine the paper's
//! classification recommends.

use pq_data::{Database, Relation, Tuple};
use pq_engine::colorcoding::{ColorCodingOptions, HashFamily};
use pq_engine::{colorcoding, naive, yannakakis, EngineError, Result};
use pq_query::ConjunctiveQuery;

use crate::classify::{classify, Classification, CqClass};

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Above this color parameter `k`, the Theorem 2 engine switches from
    /// the deterministic k-perfect family to randomized trials (the
    /// deterministic family has `2^{O(k log k)}` members). Emptiness answers
    /// then acquire the paper's one-sided error `e^{-c}`.
    pub deterministic_k_limit: usize,
    /// The `c` of the randomized driver's `⌈c·e^k⌉` trials.
    pub randomized_confidence: f64,
    /// Seed for randomized trials.
    pub seed: u64,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions { deterministic_k_limit: 4, randomized_confidence: 5.0, seed: 0x9e3779b9 }
    }
}

/// The outcome of planning: which engine will run and why.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The classification that drove the choice.
    pub classification: Classification,
    /// Human-readable engine name.
    pub engine: &'static str,
}

/// Choose an engine for the query.
pub fn plan(q: &ConjunctiveQuery, opts: &PlannerOptions) -> Plan {
    let classification = classify(q);
    let engine = match classification.class {
        CqClass::AcyclicPure => "yannakakis",
        CqClass::AcyclicNeq => {
            let k = classification.color_parameter.unwrap_or(0);
            if k <= opts.deterministic_k_limit {
                "colorcoding (deterministic k-perfect family)"
            } else {
                "colorcoding (randomized)"
            }
        }
        CqClass::InconsistentComparisons => "constant (empty answer)",
        CqClass::AcyclicComparisons | CqClass::Cyclic => "naive backtracking",
    };
    Plan { classification, engine }
}

fn cc_options(k: usize, opts: &PlannerOptions) -> ColorCodingOptions {
    if k <= opts.deterministic_k_limit {
        ColorCodingOptions { family: HashFamily::Perfect, minimize_hashed_attrs: true }
    } else {
        ColorCodingOptions::randomized(k, opts.randomized_confidence, opts.seed)
    }
}

/// Evaluate `Q(d)` with the engine the classification recommends.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database, opts: &PlannerOptions) -> Result<Relation> {
    let p = plan(q, opts);
    match p.classification.class {
        CqClass::AcyclicPure => yannakakis::evaluate(q, db),
        CqClass::AcyclicNeq => {
            let k = p.classification.color_parameter.unwrap_or(0);
            colorcoding::evaluate(q, db, &cc_options(k, opts))
        }
        CqClass::InconsistentComparisons => {
            Ok(Relation::new(pq_engine::binding::head_attrs(&q.head_terms))
                .map_err(EngineError::Data)?)
        }
        CqClass::AcyclicComparisons | CqClass::Cyclic => naive::evaluate(q, db),
    }
}

/// Emptiness with the recommended engine.
pub fn is_nonempty(q: &ConjunctiveQuery, db: &Database, opts: &PlannerOptions) -> Result<bool> {
    let p = plan(q, opts);
    match p.classification.class {
        CqClass::AcyclicPure => yannakakis::is_nonempty(q, db),
        CqClass::AcyclicNeq => {
            let k = p.classification.color_parameter.unwrap_or(0);
            colorcoding::is_nonempty(q, db, &cc_options(k, opts))
        }
        CqClass::InconsistentComparisons => Ok(false),
        CqClass::AcyclicComparisons | CqClass::Cyclic => naive::is_nonempty(q, db),
    }
}

/// The decision problem `t ∈ Q(d)` with the recommended engine.
pub fn decide(
    q: &ConjunctiveQuery,
    db: &Database,
    t: &Tuple,
    opts: &PlannerOptions,
) -> Result<bool> {
    match q.bind_head(t).map_err(EngineError::Query)? {
        None => Ok(false),
        Some(bq) => is_nonempty(&bq, db, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_query::parse_cq;

    fn db() -> Database {
        let mut d = Database::new();
        d.add_table(
            "EP",
            ["e", "p"],
            [tuple!["ann", "p1"], tuple!["ann", "p2"], tuple!["bob", "p1"]],
        )
        .unwrap();
        d.add_table("R", ["a", "b"], [tuple![1, 2], tuple![2, 3]]).unwrap();
        d.add_table("S", ["b", "c"], [tuple![2, 9]]).unwrap();
        d
    }

    #[test]
    fn plans_name_their_engines() {
        let opts = PlannerOptions::default();
        let p = plan(&parse_cq("G(x) :- R(x, y), S(y, z).").unwrap(), &opts);
        assert_eq!(p.engine, "yannakakis");
        let p = plan(&parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap(), &opts);
        assert!(p.engine.starts_with("colorcoding"));
        let p = plan(&parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap(), &opts);
        assert_eq!(p.engine, "naive backtracking");
    }

    #[test]
    fn planner_results_agree_with_naive_oracle() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, c) :- R(x, y), S(y, c).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
            "G :- R(x, y), R(y, z), R(z, x).",
            "G(x) :- R(x, y), x < y.",
        ] {
            let q = parse_cq(src).unwrap();
            let fast = evaluate(&q, &d, &opts).unwrap();
            let slow = naive::evaluate(&q, &d).unwrap();
            assert_eq!(fast, slow, "{src}");
            assert_eq!(
                is_nonempty(&q, &d, &opts).unwrap(),
                naive::is_nonempty(&q, &d).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn inconsistent_comparisons_evaluate_empty() {
        let opts = PlannerOptions::default();
        let q = parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap();
        let out = evaluate(&q, &db(), &opts).unwrap();
        assert!(out.is_empty());
        assert!(!is_nonempty(&q, &db(), &opts).unwrap());
    }

    #[test]
    fn decide_routes_through_planner() {
        let opts = PlannerOptions::default();
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        assert!(decide(&q, &db(), &tuple!["ann"], &opts).unwrap());
        assert!(!decide(&q, &db(), &tuple!["bob"], &opts).unwrap());
    }

    #[test]
    fn large_k_switches_to_randomized() {
        let opts = PlannerOptions { deterministic_k_limit: 2, ..Default::default() };
        // chain with three pairwise-distant inequalities → k = 4 > 2
        let q = parse_cq("G :- R(x, y), S(y, z), x != z.").unwrap();
        let p = plan(&q, &opts);
        assert_eq!(p.classification.color_parameter, Some(2));
        let q2 =
            parse_cq("G :- R(a, b), R(b, c), R(c, d), a != c, a != d, b != d.").unwrap();
        let p2 = plan(&q2, &opts);
        assert_eq!(p2.classification.color_parameter, Some(4));
        assert_eq!(p2.engine, "colorcoding (randomized)");
    }
}
