//! Planning Datalog programs through the whole-program analyzer.
//!
//! The same preprocessing/evaluation split the CQ planner gives conjunctive
//! queries (see [`crate::planner`]): [`plan_datalog`] runs
//! [`pq_analyze::analyze_program`] once, and the resulting [`DatalogPlan`]
//! can be executed against many databases without re-analyzing. Execution
//! runs the analyzer's rewritten program (dead rules pruned, rule bodies
//! core-minimized — identical goal relation, fewer and smaller per-stage
//! CQs), and a goal the analyzer proved underivable never touches the
//! database at all.

use pq_analyze::{analyze_program, ProgramAnalysis};
use pq_data::{Database, Relation};
use pq_engine::datalog_eval::{self, FixpointStats, Strategy};
use pq_engine::governor::{ExecutionContext, SharedContext};
use pq_engine::{EngineError, Result};
use pq_exec::Pool;
use pq_query::DatalogProgram;

use crate::planner::PlannerOptions;

/// The outcome of planning a Datalog program: the full program analysis
/// plus the execution parameters the planner commits to.
#[derive(Debug, Clone)]
pub struct DatalogPlan {
    /// The whole-program analysis: diagnostics, the goal-preserving
    /// rewrite execution uses, and the structural report.
    pub analysis: ProgramAnalysis,
    /// The fixpoint strategy execution uses (semi-naive; the naive
    /// strategy exists for the E8 experiments, not for plans).
    pub strategy: Strategy,
    /// The intra-query parallelism degree this plan recommends: `1` when
    /// at most one rule survives pruning (no fan-out), else the planner's
    /// `max_parallelism`.
    pub parallelism: usize,
}

/// Analyze `p` and commit to execution parameters. The analyzer's
/// `minimize`/`minimize_atom_limit` options come from `opts.analysis`,
/// exactly as for conjunctive queries.
pub fn plan_datalog(p: &DatalogProgram, opts: &PlannerOptions) -> DatalogPlan {
    let analysis = analyze_program(p, &opts.analysis);
    let parallelism = if analysis.provably_empty() || analysis.report.rules_live <= 1 {
        1
    } else {
        opts.max_parallelism.max(1)
    };
    DatalogPlan {
        analysis,
        strategy: Strategy::SemiNaive,
        parallelism,
    }
}

/// An empty relation with the goal's arity, using the engine's positional
/// attribute convention — byte-identical to what a real fixpoint run would
/// return for an empty goal.
fn empty_goal(p: &DatalogProgram) -> Result<Relation> {
    let arity = p
        .rules
        .iter()
        .find(|r| r.head.relation == p.goal)
        .map(|r| r.head.arity())
        .ok_or_else(|| {
            EngineError::Query(pq_query::QueryError::BadProgram(format!(
                "goal `{}` has no defining rule",
                p.goal
            )))
        })?;
    Relation::new((0..arity).map(|i| format!("c{i}"))).map_err(EngineError::Data)
}

impl DatalogPlan {
    /// Execute this plan on `(p, db)` without re-analyzing. `p` must be the
    /// program the plan was built from.
    pub fn execute(&self, p: &DatalogProgram, db: &Database) -> Result<Relation> {
        self.execute_governed(p, db, &ExecutionContext::unlimited())
    }

    /// [`DatalogPlan::execute`] under the limits of `ctx`.
    pub fn execute_governed(
        &self,
        p: &DatalogProgram,
        db: &Database,
        ctx: &ExecutionContext,
    ) -> Result<Relation> {
        Ok(self.execute_with_stats_governed(p, db, ctx)?.0)
    }

    /// [`DatalogPlan::execute_governed`] with fixpoint statistics. The
    /// stats describe the *effective* (rewritten) program:
    /// `rule_eval_counts` has one slot per live rule, so a pruned rule is
    /// demonstrably never evaluated. A provably-empty goal short-circuits
    /// to an empty relation with zero evaluations.
    pub fn execute_with_stats_governed(
        &self,
        p: &DatalogProgram,
        db: &Database,
        ctx: &ExecutionContext,
    ) -> Result<(Relation, FixpointStats)> {
        if self.analysis.provably_empty() {
            return Ok((empty_goal(p)?, FixpointStats::default()));
        }
        match &self.analysis.rewritten {
            Some(r) => datalog_eval::evaluate_rewritten_governed(p, r, db, self.strategy, ctx),
            None => datalog_eval::evaluate_with_stats_governed(p, db, self.strategy, ctx),
        }
    }

    /// [`DatalogPlan::execute`] with the per-round rule evaluations fanned
    /// out on `pool`, every worker charging the shared envelope. Identical
    /// output at any pool size; [`DatalogPlan::parallelism`] is the pool
    /// size this plan recommends.
    pub fn execute_parallel(
        &self,
        p: &DatalogProgram,
        db: &Database,
        shared: &SharedContext,
        pool: &Pool,
    ) -> Result<Relation> {
        if self.analysis.provably_empty() {
            return empty_goal(p);
        }
        let effective = self.analysis.effective(p);
        Ok(
            datalog_eval::evaluate_with_stats_parallel(effective, db, self.strategy, shared, pool)?
                .0,
        )
    }
}

/// Plan and execute in one call: analyze `p`, run the rewrite.
pub fn evaluate_datalog(
    p: &DatalogProgram,
    db: &Database,
    opts: &PlannerOptions,
) -> Result<Relation> {
    plan_datalog(p, opts).execute(p, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_query::parse_datalog;

    fn db(n: i64) -> Database {
        let mut d = Database::new();
        d.add_table("E", ["a", "b"], (0..n - 1).map(|i| tuple![i, i + 1]))
            .unwrap();
        d
    }

    fn padded_tc() -> DatalogProgram {
        parse_datalog(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- E(x, y), T(y, z).\n\
             U(x) :- E(x, y).\n\
             G(x, y) :- T(x, y), E(x, w), E(x, w2).\n\
             ?- T",
        )
        .unwrap()
    }

    #[test]
    fn planned_execution_matches_the_unplanned_fixpoint() {
        let p = padded_tc();
        let d = db(6);
        let plan = plan_datalog(&p, &PlannerOptions::default());
        assert_eq!(plan.analysis.report.dead_rules, vec![2, 3]);
        let planned = plan.execute(&p, &d).unwrap();
        let direct = datalog_eval::evaluate(&p, &d, Strategy::SemiNaive).unwrap();
        assert_eq!(planned.canonical_rows(), direct.canonical_rows());
    }

    #[test]
    fn dead_rules_are_never_evaluated() {
        let p = padded_tc();
        let plan = plan_datalog(&p, &PlannerOptions::default());
        let (_, stats) = plan
            .execute_with_stats_governed(&p, &db(6), &ExecutionContext::unlimited())
            .unwrap();
        // Two rules survive; the stats vector has exactly their slots.
        assert_eq!(stats.rule_eval_counts.len(), 2);
        assert!(stats.rule_eval_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn provably_empty_goals_never_touch_the_database() {
        let p = parse_datalog(
            "G(x, y) :- A(x, y).\n\
             A(x, y) :- G(x, y), E(x, y).\n\
             ?- G",
        )
        .unwrap();
        let plan = plan_datalog(&p, &PlannerOptions::default());
        assert!(plan.analysis.provably_empty());
        assert_eq!(plan.parallelism, 1);
        // Works even against an empty database — evaluation is skipped.
        let (rel, stats) = plan
            .execute_with_stats_governed(&p, &Database::new(), &ExecutionContext::unlimited())
            .unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.arity(), 2);
        assert_eq!(stats.rule_evaluations, 0);
    }

    #[test]
    fn parallel_execution_is_identical_at_every_degree() {
        let p = padded_tc();
        let d = db(7);
        let plan = plan_datalog(&p, &PlannerOptions::default());
        let serial = plan.execute(&p, &d).unwrap();
        for t in [1, 2, 4] {
            let pool = Pool::new(t);
            let shared = ExecutionContext::unlimited().into_shared();
            let par = plan.execute_parallel(&p, &d, &shared, &pool).unwrap();
            assert_eq!(par.canonical_rows(), serial.canonical_rows(), "degree {t}");
        }
    }

    #[test]
    fn invalid_programs_surface_typed_errors_through_the_plan() {
        let p = parse_datalog("G(x) :- E(y, y). ?- G").unwrap();
        let plan = plan_datalog(&p, &PlannerOptions::default());
        assert!(plan.analysis.has_errors());
        let err = plan.execute(&p, &db(3)).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Query(pq_query::QueryError::UnsafeRule { .. })
        ));
    }
}
