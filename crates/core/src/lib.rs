//! `pq-core` — the reproduction of Papadimitriou & Yannakakis, *On the
//! Complexity of Database Queries* (PODS 1997 / JCSS 1999), as a usable
//! library.
//!
//! The paper's two messages become two entry points:
//!
//! * [`classify`](fn@classify) places an extended conjunctive query in the paper's
//!   complexity landscape: acyclic (polynomial, Yannakakis \[18\]); acyclic
//!   with `≠` (**fixed-parameter tractable** — Theorem 2, the paper's
//!   algorithmic contribution); acyclic with `<` (W\[1\]-complete — Theorem
//!   3); cyclic (W\[1\]-complete — Theorem 1).
//! * [`evaluate`] / [`is_nonempty`] / [`decide`] run the query with the
//!   engine that classification recommends.
//!
//! The substrate crates are re-exported: [`data`] (relations and algebra),
//! [`hypergraph`] (GYO, join trees), [`query`] (ASTs and parser),
//! [`engine`] (all evaluators), [`analyze`] (the static analyzer the
//! planner consumes), [`wtheory`] (W hierarchy, reductions).
//!
//! ```
//! use pq_core::{classify, evaluate, PlannerOptions};
//! use pq_query::parse_cq;
//! use pq_data::{tuple, Database};
//!
//! let mut db = Database::new();
//! db.add_table("EP", ["e", "p"],
//!     [tuple!["ann", "p1"], tuple!["ann", "p2"], tuple!["bob", "p1"]]).unwrap();
//! // The paper's Section 5 example: employees on more than one project.
//! let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
//! assert_eq!(classify(&q).summary,
//!     "acyclic with ≠: fixed-parameter tractable by color coding (Theorem 2)");
//! let answer = evaluate(&q, &db, &PlannerOptions::default()).unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod count_planner;
pub mod datalog;
pub mod planner;

pub use classify::{classification_of, classify, Classification, CqClass};
pub use count_planner::{
    count_at_least, count_relation, count_with_fallback, plan_count, CountChoice, CountOutcome,
    CountPlan,
};
pub use datalog::{evaluate_datalog, plan_datalog, DatalogPlan};
pub use planner::{
    decide, evaluate, evaluate_with_fallback, is_nonempty, plan, view_scan, EngineChoice,
    FallbackAttempt, FallbackOutcome, Plan, PlannerOptions,
};

pub use pq_analyze as analyze;
pub use pq_data as data;
pub use pq_engine as engine;
pub use pq_hypergraph as hypergraph;
pub use pq_query as query;
pub use pq_wtheory as wtheory;
