//! The count planner: dispatch `COUNT(Q)` to the cheapest exact strategy.
//!
//! Mirrors [`crate::planner`] for the counting problem: the analyzer's
//! `PQA7xx` pass (Chen–Mengel) decides whether the query admits counting
//! *without enumeration* — the semiring sweep over a join tree
//! (`count-yannakakis`) or over hypertree bags (`count-hypertree`) — and
//! otherwise the plan degrades to enumerate-then-count through the regular
//! engine chain. A [`CountPlan`] is reusable across databases, and
//! [`count_with_fallback`] is the governed degradation chain.

use pq_analyze::{analyze, Analysis, AnalyzeOptions};
use pq_count::{CountError, CountedRelation, QueryCount};
use pq_data::{Database, Relation, Tuple};
use pq_engine::governor::{ExecutionContext, SharedContext};
use pq_engine::EngineError;
use pq_exec::Pool;
use pq_hypergraph::HypertreeDecomposition;
use pq_query::ConjunctiveQuery;

use crate::classify::{classification_of, Classification, CqClass};
use crate::planner::{FallbackAttempt, PlannerOptions};

/// The counting strategy a [`CountPlan`] commits to.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CountChoice {
    /// The semiring sweep over the GYO join tree (acyclic pure queries).
    Acyclic,
    /// The semiring sweep over the bags of this hypertree decomposition
    /// (cyclic pure queries of bounded width).
    Hypertree(HypertreeDecomposition),
    /// The query is provably empty on every database: the count is 0.
    ConstantEmpty,
    /// Counting is as hard as enumeration here (≠/comparison atoms, or no
    /// decomposition within the width limit): evaluate with the regular
    /// planner and count the answer set. On this path only the `distinct`
    /// count is native; `assignments` is reported equal to it, because the
    /// enumerating engines return set-semantics answers.
    EnumerateThenCount,
}

/// The engine label a hypertree count plan advertises.
fn count_hypertree_label(width: usize) -> &'static str {
    match width {
        1 => "count-hypertree (width 1)",
        2 => "count-hypertree (width 2)",
        3 => "count-hypertree (width 3)",
        _ => "count-hypertree",
    }
}

/// The outcome of count planning: which counting strategy will run and why.
/// Like [`crate::Plan`], it captures everything derived from the query
/// alone, so one plan serves many databases.
#[derive(Debug, Clone)]
pub struct CountPlan {
    /// The classification that framed the choice.
    pub classification: Classification,
    /// Human-readable engine name.
    pub engine: &'static str,
    /// The committed counting strategy.
    pub choice: CountChoice,
    /// The full static analysis, run with the counting pass on: the
    /// `PQA7xx` diagnostic explaining this plan is in here.
    pub analysis: Analysis,
    /// The intra-query parallelism degree this plan asks for (same
    /// contract as [`crate::Plan::parallelism`]).
    pub parallelism: usize,
}

/// Choose a counting strategy for the query.
///
/// Runs the static analyzer with the counting-tractability pass enabled
/// (so the plan's diagnostics include the `PQA7xx` classification), then
/// routes: provably empty → constant 0; acyclic pure → the join-tree
/// sweep; bounded-width cyclic pure → the bag sweep; everything else →
/// enumerate-then-count.
pub fn plan_count(q: &ConjunctiveQuery, opts: &PlannerOptions) -> CountPlan {
    let analysis = analyze(
        q,
        &AnalyzeOptions {
            counting: true,
            ..opts.analysis.clone()
        },
    );
    let classification = classification_of(&analysis.report);
    let (engine, choice) =
        if analysis.provably_empty() || classification.class == CqClass::InconsistentComparisons {
            ("constant (count 0)", CountChoice::ConstantEmpty)
        } else {
            match classification.class {
                CqClass::AcyclicPure => ("count-yannakakis", CountChoice::Acyclic),
                CqClass::CyclicBoundedWidth => match analysis.report.decomposition.clone() {
                    Some(d) => (count_hypertree_label(d.width()), CountChoice::Hypertree(d)),
                    None => ("enumerate-then-count", CountChoice::EnumerateThenCount),
                },
                _ => ("enumerate-then-count", CountChoice::EnumerateThenCount),
            }
        };
    let parallelism = match &choice {
        CountChoice::ConstantEmpty => 1,
        _ if analysis.effective(q).atoms.len() <= 1 => 1,
        _ => opts.max_parallelism.max(1),
    };
    CountPlan {
        classification,
        engine,
        choice,
        analysis,
        parallelism,
    }
}

/// Group an enumerated answer set: +1 per distinct answer tuple, keyed by
/// its projection onto `groups`.
fn group_enumerated(
    rows: &Relation,
    groups: &[String],
    engine: &'static str,
) -> pq_count::Result<CountedRelation> {
    let positions: Vec<usize> = groups
        .iter()
        .map(|g| {
            rows.attr_pos(g).ok_or_else(|| {
                CountError::Engine(EngineError::Unsupported(format!(
                    "GROUP BY variable `{g}` is not an answer attribute"
                )))
            })
        })
        .collect::<pq_count::Result<_>>()?;
    let mut out = CountedRelation::new(groups.iter().map(String::clone))?;
    for t in rows.iter() {
        out.insert_add(t.project(&positions), 1, engine)?;
    }
    Ok(out)
}

/// Validate `groups` against the head (shared with the grouped execute
/// paths): distinct head variables, order preserved.
fn checked_groups(q: &ConjunctiveQuery, groups: &[String]) -> pq_count::Result<Vec<String>> {
    let head: std::collections::BTreeSet<&str> = q.head_variables().into_iter().collect();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for g in groups {
        if !head.contains(g.as_str()) {
            return Err(CountError::Engine(EngineError::Unsupported(format!(
                "GROUP BY variable `{g}` is not a head variable of {q}"
            ))));
        }
        if seen.insert(g.as_str()) {
            out.push(g.clone());
        }
    }
    Ok(out)
}

impl CountPlan {
    /// Count `Q(d)` with the committed strategy under the limits of `ctx`.
    pub fn execute_governed(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        ctx: &ExecutionContext,
    ) -> pq_count::Result<QueryCount> {
        let q = self.analysis.effective(q);
        match &self.choice {
            CountChoice::Acyclic => pq_count::count_governed(q, db, ctx),
            CountChoice::Hypertree(d) => pq_count::count_decomposed(q, db, d, ctx),
            CountChoice::ConstantEmpty => Ok(QueryCount {
                distinct: 0,
                assignments: 0,
            }),
            CountChoice::EnumerateThenCount => {
                let rows = crate::planner::plan(q, &PlannerOptions::default())
                    .execute_governed(q, db, ctx)?;
                let n = rows.len() as u128;
                Ok(QueryCount {
                    distinct: n,
                    assignments: n,
                })
            }
        }
    }

    /// [`CountPlan::execute_governed`] with the committed strategy's
    /// parallel path; counts are byte-identical at any pool size.
    pub fn execute_parallel(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        shared: &SharedContext,
        pool: &Pool,
    ) -> pq_count::Result<QueryCount> {
        let q = self.analysis.effective(q);
        match &self.choice {
            CountChoice::Acyclic => pq_count::count_parallel(q, db, shared, pool),
            CountChoice::Hypertree(d) => {
                pq_count::count_decomposed_parallel(q, db, d, shared, pool)
            }
            CountChoice::ConstantEmpty => Ok(QueryCount {
                distinct: 0,
                assignments: 0,
            }),
            CountChoice::EnumerateThenCount => {
                let rows = crate::planner::plan(q, &PlannerOptions::default())
                    .execute_parallel(q, db, shared, pool)?;
                let n = rows.len() as u128;
                Ok(QueryCount {
                    distinct: n,
                    assignments: n,
                })
            }
        }
    }

    /// Grouped counts `COUNT(Q) GROUP BY groups` with the committed
    /// strategy under the limits of `ctx`: one row per assignment of the
    /// group variables (which must be head variables), carrying the number
    /// of distinct answer tuples in that group.
    pub fn execute_by_governed(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        groups: &[String],
        ctx: &ExecutionContext,
    ) -> pq_count::Result<CountedRelation> {
        let q = self.analysis.effective(q);
        match &self.choice {
            CountChoice::Acyclic => pq_count::count_by_governed(q, db, groups, ctx),
            CountChoice::Hypertree(d) => pq_count::count_by_decomposed(q, db, d, groups, ctx),
            CountChoice::ConstantEmpty => {
                CountedRelation::new(checked_groups(q, groups)?.iter().map(String::clone))
            }
            CountChoice::EnumerateThenCount => {
                let groups = checked_groups(q, groups)?;
                let rows = crate::planner::plan(q, &PlannerOptions::default())
                    .execute_governed(q, db, ctx)?;
                group_enumerated(&rows, &groups, self.engine)
            }
        }
    }

    /// [`CountPlan::execute_by_governed`] on the parallel path.
    pub fn execute_by_parallel(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        groups: &[String],
        shared: &SharedContext,
        pool: &Pool,
    ) -> pq_count::Result<CountedRelation> {
        let q = self.analysis.effective(q);
        match &self.choice {
            CountChoice::Acyclic => pq_count::count_by_parallel(q, db, groups, shared, pool),
            CountChoice::Hypertree(d) => {
                pq_count::count_by_decomposed_parallel(q, db, d, groups, shared, pool)
            }
            CountChoice::ConstantEmpty => {
                CountedRelation::new(checked_groups(q, groups)?.iter().map(String::clone))
            }
            CountChoice::EnumerateThenCount => {
                let groups = checked_groups(q, groups)?;
                let rows = crate::planner::plan(q, &PlannerOptions::default())
                    .execute_parallel(q, db, shared, pool)?;
                group_enumerated(&rows, &groups, self.engine)
            }
        }
    }

    /// The base relations this plan reads (same contract as
    /// [`crate::Plan::mentioned_relations`]).
    pub fn mentioned_relations(&self, q: &ConjunctiveQuery) -> Vec<String> {
        if matches!(self.choice, CountChoice::ConstantEmpty) {
            return Vec::new();
        }
        let mut names: Vec<String> = self
            .analysis
            .effective(q)
            .atoms
            .iter()
            .map(|a| a.relation.clone())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Count `Q(d)` with the strategy the classification recommends.
pub fn count(
    q: &ConjunctiveQuery,
    db: &Database,
    opts: &PlannerOptions,
) -> pq_count::Result<QueryCount> {
    plan_count(q, opts).execute_governed(q, db, &ExecutionContext::unlimited())
}

/// The outcome of a graceful-degradation count: the counts plus the trail
/// of strategies tried.
#[derive(Debug)]
pub struct CountOutcome {
    /// The exact counts.
    pub count: QueryCount,
    /// The classification that framed the chain.
    pub classification: Classification,
    /// Attempts in order; the last entry is the one that succeeded.
    pub attempts: Vec<FallbackAttempt>,
}

/// May the counting chain move past `e`? Overflow never: the true count
/// exceeds `u128` on *every* strategy (enumeration least of all), so
/// retrying cannot help. Engine errors follow the same rules as the
/// evaluation chain (`Unsupported` and recoverable exhaustion advance).
fn retryable(e: &CountError) -> bool {
    match e {
        CountError::Overflow { .. } => false,
        CountError::Engine(e) => crate::planner::retryable_engine_error(e),
        _ => false,
    }
}

/// Count `Q(d)` with graceful degradation under the limits of `ctx`.
///
/// Tries **count-yannakakis → count-hypertree → enumerate-then-count**,
/// advancing past strategies that reject the query or give up on a
/// recoverable limit — every attempt sharing `ctx`, like
/// [`crate::evaluate_with_fallback`], whose chain the final enumeration
/// step reuses wholesale (its inner attempts are appended to the trail).
pub fn count_with_fallback(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> pq_count::Result<CountOutcome> {
    let analysis = analyze(
        q,
        &AnalyzeOptions {
            minimize: false,
            counting: true,
            ..Default::default()
        },
    );
    let classification = classification_of(&analysis.report);
    if analysis.provably_empty() || classification.class == CqClass::InconsistentComparisons {
        return Ok(CountOutcome {
            count: QueryCount {
                distinct: 0,
                assignments: 0,
            },
            classification,
            attempts: vec![FallbackAttempt {
                engine: "constant (count 0)",
                error: None,
            }],
        });
    }
    let mut attempts = Vec::new();
    // 1. The join-tree sweep.
    match pq_count::count_governed(q, db, ctx) {
        Ok(count) => {
            attempts.push(FallbackAttempt {
                engine: "count-yannakakis",
                error: None,
            });
            return Ok(CountOutcome {
                count,
                classification,
                attempts,
            });
        }
        Err(e) if retryable(&e) => attempts.push(FallbackAttempt {
            engine: "count-yannakakis",
            error: Some(e.to_string()),
        }),
        Err(e) => return Err(e),
    }
    // 2. The bag sweep, when the analyzer found a decomposition in budget.
    let decomposed = match analysis.report.decomposition.as_ref() {
        Some(d) => pq_count::count_decomposed(q, db, d, ctx),
        None => Err(CountError::Engine(EngineError::Unsupported(
            "no hypertree decomposition within the width limit".into(),
        ))),
    };
    match decomposed {
        Ok(count) => {
            attempts.push(FallbackAttempt {
                engine: "count-hypertree",
                error: None,
            });
            return Ok(CountOutcome {
                count,
                classification,
                attempts,
            });
        }
        Err(e) if retryable(&e) => attempts.push(FallbackAttempt {
            engine: "count-hypertree",
            error: Some(e.to_string()),
        }),
        Err(e) => return Err(e),
    }
    // 3. Enumerate-then-count through the evaluation chain.
    let out = crate::planner::evaluate_with_fallback(q, db, ctx).map_err(CountError::Engine)?;
    attempts.extend(out.attempts);
    let n = out.result.len() as u128;
    Ok(CountOutcome {
        count: QueryCount {
            distinct: n,
            assignments: n,
        },
        classification,
        attempts,
    })
}

/// The counting decision problem `COUNT(Q)(d) ≥ k` without materializing
/// counts beyond `u128`: a convenience over [`count`].
pub fn count_at_least(
    q: &ConjunctiveQuery,
    db: &Database,
    k: u128,
    opts: &PlannerOptions,
) -> pq_count::Result<bool> {
    Ok(count(q, db, opts)?.distinct >= k)
}

/// Render a [`QueryCount`]'s distinct count as a one-row relation with the
/// single attribute `count` — the shape the service caches and ships for
/// `@count`.
pub fn count_relation(c: &QueryCount) -> pq_count::Result<Relation> {
    let mut out = Relation::new(["count"]).map_err(EngineError::Data)?;
    out.insert(Tuple::new(vec![pq_count::count_value(c.distinct)]))
        .map_err(EngineError::Data)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_engine::naive;
    use pq_query::parse_cq;

    fn db() -> Database {
        let mut d = Database::new();
        d.add_table(
            "EP",
            ["e", "p"],
            [
                tuple!["ann", "p1"],
                tuple!["ann", "p2"],
                tuple!["bob", "p1"],
            ],
        )
        .unwrap();
        d.add_table("R", ["a", "b"], [tuple![1, 2], tuple![2, 3], tuple![2, 4]])
            .unwrap();
        d.add_table("S", ["b", "c"], [tuple![2, 9], tuple![3, 9], tuple![4, 8]])
            .unwrap();
        d
    }

    #[test]
    fn count_plans_name_their_engines() {
        let opts = PlannerOptions::default();
        let p = plan_count(&parse_cq("G(x, y, z) :- R(x, y), S(y, z).").unwrap(), &opts);
        assert_eq!(p.engine, "count-yannakakis");
        assert_eq!(p.choice, CountChoice::Acyclic);
        let p = plan_count(&parse_cq("G :- R(x, y), R(y, z), R(z, x).").unwrap(), &opts);
        assert_eq!(p.engine, "count-hypertree (width 2)");
        assert!(matches!(p.choice, CountChoice::Hypertree(_)));
        let p = plan_count(
            &parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap(),
            &opts,
        );
        assert_eq!(p.choice, CountChoice::EnumerateThenCount);
        let p = plan_count(&parse_cq("G(x) :- R(x, y), x != x.").unwrap(), &opts);
        assert_eq!(p.choice, CountChoice::ConstantEmpty);
        assert_eq!(p.engine, "constant (count 0)");
    }

    #[test]
    fn count_plans_carry_the_pqa7_diagnostic() {
        let opts = PlannerOptions::default();
        let p = plan_count(&parse_cq("G(x, y, z) :- R(x, y), S(y, z).").unwrap(), &opts);
        assert!(p
            .analysis
            .diagnostics
            .iter()
            .any(|d| d.code.code() == "PQA701"));
        let p = plan_count(
            &parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap(),
            &opts,
        );
        assert!(p
            .analysis
            .diagnostics
            .iter()
            .any(|d| d.code.code() == "PQA703"));
    }

    #[test]
    fn every_strategy_agrees_with_the_naive_oracle() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, y, z) :- R(x, y), S(y, z).", // acyclic, quantifier-free
            "G(x) :- R(x, y), S(y, z).",       // acyclic, projected
            "G(x, y, z) :- R(x, y), R(y, z), R(z, x).", // cyclic bounded width
            "G(e) :- EP(e, p), EP(e, p2), p != p2.", // impure → enumerate
            "G(x) :- R(x, y), x < y.",         // comparisons → enumerate
            "G(x) :- R(x, y), x != x.",        // provably empty
        ] {
            let q = parse_cq(src).unwrap();
            let oracle = naive::evaluate(&q, &d).unwrap().len() as u128;
            let p = plan_count(&q, &opts);
            let ctx = ExecutionContext::unlimited();
            let c = p.execute_governed(&q, &d, &ctx).unwrap();
            assert_eq!(c.distinct, oracle, "{src}");
            for threads in [1, 4] {
                let pool = Pool::new(threads);
                let shared = ExecutionContext::unlimited().into_shared();
                let par = p.execute_parallel(&q, &d, &shared, &pool).unwrap();
                assert_eq!(par, c, "{src} at {threads} threads");
            }
            // The fallback chain lands on the same number.
            let out = count_with_fallback(&q, &d, &ExecutionContext::unlimited()).unwrap();
            assert_eq!(out.count.distinct, oracle, "{src}");
            assert!(out.attempts.last().unwrap().error.is_none(), "{src}");
        }
    }

    #[test]
    fn grouped_counts_agree_across_strategies() {
        let opts = PlannerOptions::default();
        let d = db();
        for src in [
            "G(x, z) :- R(x, y), S(y, z).",
            "G(e) :- EP(e, p), EP(e, p2), p != p2.",
        ] {
            let q = parse_cq(src).unwrap();
            let group = q.head_variables()[0].to_string();
            let p = plan_count(&q, &opts);
            let ctx = ExecutionContext::unlimited();
            let by = p
                .execute_by_governed(&q, &d, std::slice::from_ref(&group), &ctx)
                .unwrap();
            // Oracle: enumerate naively and group by hand.
            let rows = naive::evaluate(&q, &d).unwrap();
            let pos = rows.attr_pos(&group).unwrap();
            let mut expected: std::collections::BTreeMap<Tuple, u128> = Default::default();
            for t in rows.iter() {
                *expected.entry(t.project(&[pos])).or_insert(0) += 1;
            }
            assert_eq!(by.len(), expected.len(), "{src}");
            for (t, c) in by.iter() {
                assert_eq!(expected.get(t).copied(), Some(c), "{src} group {t}");
            }
            let pool = Pool::new(3);
            let shared = ExecutionContext::unlimited().into_shared();
            let par = p
                .execute_by_parallel(&q, &d, &[group], &shared, &pool)
                .unwrap();
            assert_eq!(par, by, "{src}");
        }
    }

    #[test]
    fn fallback_chain_reports_its_trail() {
        let d = db();
        // Cyclic: count-yannakakis rejects, count-hypertree succeeds.
        let q = parse_cq("G(x, y, z) :- R(x, y), R(y, z), R(z, x).").unwrap();
        let out = count_with_fallback(&q, &d, &ExecutionContext::unlimited()).unwrap();
        let engines: Vec<_> = out.attempts.iter().map(|a| a.engine).collect();
        assert_eq!(engines, vec!["count-yannakakis", "count-hypertree"]);
        // Impure: both sweeps reject, enumeration chain takes over.
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let out = count_with_fallback(&q, &d, &ExecutionContext::unlimited()).unwrap();
        let engines: Vec<_> = out.attempts.iter().map(|a| a.engine).collect();
        assert_eq!(
            engines,
            vec!["count-yannakakis", "count-hypertree", "color-coding"]
        );
    }

    #[test]
    fn count_relation_renders_the_distinct_count() {
        let r = count_relation(&QueryCount {
            distinct: 7,
            assignments: 12,
        })
        .unwrap();
        assert_eq!(r.attrs(), ["count".to_string()]);
        assert!(r.contains(&tuple![7]));
        // Beyond i64: the exact decimal string survives.
        let big = (i64::MAX as u128) + 1;
        let r = count_relation(&QueryCount {
            distinct: big,
            assignments: big,
        })
        .unwrap();
        assert!(r.contains(&Tuple::new(vec![pq_data::Value::str(big.to_string())])));
    }

    #[test]
    fn count_at_least_thresholds() {
        let d = db();
        let opts = PlannerOptions::default();
        let q = parse_cq("G(x, y, z) :- R(x, y), S(y, z).").unwrap();
        assert!(count_at_least(&q, &d, 3, &opts).unwrap());
        assert!(!count_at_least(&q, &d, 4, &opts).unwrap());
    }
}
