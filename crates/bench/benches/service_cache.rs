//! E10 — service cache levels on the Theorem 2 acyclic workload.
//!
//! Three configurations of `pq-service`, same chain query, same database:
//!
//! * `cold`        — both cache levels disabled: parse + classify + plan +
//!   evaluate on every request (the one-shot library path, plus service
//!   overhead);
//! * `plan_warm`   — plan cache only: evaluation still runs, but from the
//!   stored plan (no re-parse, no re-classification);
//! * `result_warm` — both levels on and pre-warmed: the request is answered
//!   from the result cache without touching the worker pool.
//!
//! The acceptance bar from ISSUE 2: `result_warm` at least 10× below
//! `cold`. `repro` checks the same ratio programmatically; this bench
//! exposes the raw latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use pq_bench::workloads::chain_database;
use pq_service::{CacheOutcome, QueryService, RequestLimits, ServiceConfig};

/// Source text of the acyclic chain query (the service caches by text, so
/// the bench goes through the full front door, unlike the AST-level
/// workload helpers).
fn chain_query_src(len: usize) -> String {
    let body: Vec<String> = (0..len)
        .map(|i| format!("R{i}(x{i}, x{})", i + 1))
        .collect();
    format!("G(x0, x{len}) :- {}.", body.join(", "))
}

fn service(plan_cache: usize, result_cache: usize) -> QueryService {
    QueryService::new(ServiceConfig {
        workers: 2,
        queue_depth: 16,
        plan_cache_capacity: plan_cache,
        result_cache_capacity: result_cache,
        ..ServiceConfig::default()
    })
}

fn cache_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/cache_levels_chain6");
    group.sample_size(20);
    let db = chain_database(6, 300, 50, 7);
    let src = chain_query_src(6);
    let limits = RequestLimits::default();

    let cold = service(0, 0);
    cold.load_database("d", db.clone()).unwrap();
    group.bench_function("cold", |b| {
        b.iter(|| {
            let resp = cold.query("d", &src, limits).unwrap();
            assert_eq!(resp.cache, CacheOutcome::Miss);
            resp.rows.len()
        })
    });
    cold.shutdown();

    let plan_warm = service(256, 0);
    plan_warm.load_database("d", db.clone()).unwrap();
    plan_warm.query("d", &src, limits).unwrap(); // warm the plan cache
    group.bench_function("plan_warm", |b| {
        b.iter(|| {
            let resp = plan_warm.query("d", &src, limits).unwrap();
            assert_eq!(resp.cache, CacheOutcome::PlanHit);
            resp.rows.len()
        })
    });
    plan_warm.shutdown();

    let result_warm = service(256, 1024);
    result_warm.load_database("d", db).unwrap();
    result_warm.query("d", &src, limits).unwrap(); // warm both levels
    group.bench_function("result_warm", |b| {
        b.iter(|| {
            let resp = result_warm.query("d", &src, limits).unwrap();
            assert_eq!(resp.cache, CacheOutcome::ResultHit);
            resp.rows.len()
        })
    });
    result_warm.shutdown();

    group.finish();
}

criterion_group!(benches, cache_levels);
criterion_main!(benches);
