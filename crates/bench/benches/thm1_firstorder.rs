//! E4 — Theorem 1, row "First-order": the R7 θ-tower queries evaluated over
//! wiring databases of alternating monotone circuits, swept over circuit
//! size (more gates → larger active domain `n`) and weight `k` (more
//! variables → larger `v` exponent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_engine::fo_eval;
use pq_wtheory::circuit::{Circuit, Gate};
use pq_wtheory::reductions::circuit_to_fo;

/// A layered monotone circuit with `width` AND/OR pairs per layer.
fn layered_circuit(width: usize, layers: usize) -> Circuit {
    let inputs = width + 1;
    let mut gates: Vec<Gate> = (0..inputs).map(Gate::Input).collect();
    let mut prev: Vec<usize> = (0..inputs).collect();
    for l in 0..layers {
        let mut next = Vec::new();
        for w in 0..width {
            let a = prev[w % prev.len()];
            let b = prev[(w + 1) % prev.len()];
            let idx = gates.len();
            if l % 2 == 0 {
                gates.push(Gate::And(vec![a, b]));
            } else {
                gates.push(Gate::Or(vec![a, b]));
            }
            next.push(idx);
        }
        prev = next;
    }
    let out = gates.len();
    gates.push(Gate::Or(prev));
    Circuit::new(inputs, gates, out)
}

fn fo_theta_tower_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/fo_theta_tower");
    group.sample_size(10);
    for width in [3usize, 5] {
        for k in [1usize, 2] {
            let circuit = layered_circuit(width, 3);
            let inst = circuit_to_fo::reduce(&circuit, k).expect("monotone, k ≤ inputs");
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), width), &width, |b, _| {
                b.iter(|| fo_eval::query_holds(&inst.query, &inst.database).unwrap())
            });
        }
    }
    group.finish();
}

fn alternating_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/circuit_alternation");
    group.sample_size(20);
    for layers in [2usize, 4, 6] {
        let circuit = layered_circuit(4, layers);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            b.iter(|| circuit.to_alternating().unwrap().circuit.len())
        });
    }
    group.finish();
}

criterion_group!(benches, fo_theta_tower_eval, alternating_normalization);
criterion_main!(benches);
