//! E17 — counting without enumeration: the weighted-semiring Yannakakis
//! sweep (`pq-count`) vs enumerate-then-count on the quantifier-free chain
//! family, whose answer set grows as `base^(len+1)` while the counting
//! sweep stays linear in the input. Also covers the projected-head
//! (COUNT DISTINCT) and grouped variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{chain_full_query, chain_query, complete_chain_database};
use pq_engine::yannakakis;

fn count_vs_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("count/chain_vs_enumerate");
    group.sample_size(10);
    for len in [6usize, 8, 10] {
        let q = chain_full_query(len);
        let db = complete_chain_database(len, 3);
        group.bench_with_input(BenchmarkId::new("count", len), &len, |b, _| {
            b.iter(|| pq_count::count(&q, &db).unwrap().distinct)
        });
        group.bench_with_input(BenchmarkId::new("enumerate", len), &len, |b, _| {
            b.iter(|| yannakakis::evaluate(&q, &db).unwrap().len())
        });
    }
    group.finish();
}

fn projected_count_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("count/projected_head");
    group.sample_size(10);
    for len in [6usize, 8, 10] {
        // Endpoints-only head: the count is COUNT DISTINCT over the
        // projection, which the sweep carries as per-projection counts.
        let q = chain_query(len);
        let db = complete_chain_database(len, 3);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| pq_count::count(&q, &db).unwrap().distinct)
        });
    }
    group.finish();
}

fn grouped_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("count/grouped");
    group.sample_size(10);
    for len in [6usize, 8] {
        let q = chain_full_query(len);
        let db = complete_chain_database(len, 3);
        let groups = ["x0".to_string()];
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| pq_count::count_by(&q, &db, &groups).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    count_vs_enumerate,
    projected_count_distinct,
    grouped_counts
);
criterion_main!(benches);
