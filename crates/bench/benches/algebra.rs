//! A5 — substrate ablation: hash join vs sort-merge join in the relational
//! algebra every engine is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_data::{tuple, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rel(n: usize, vals: i64, attrs: [&str; 2], seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::with_tuples(
        attrs,
        (0..n).map(|_| tuple![rng.gen_range(0..vals), rng.gen_range(0..vals)]),
    )
    .unwrap()
}

fn join_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("algebra/join_hash_vs_sortmerge");
    group.sample_size(10);
    for n in [1000usize, 4000] {
        let r = rel(n, (n as i64) / 2, ["a", "b"], 1);
        let s = rel(n, (n as i64) / 2, ["b", "c"], 2);
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |b, _| {
            b.iter(|| r.natural_join(&s).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, _| {
            b.iter(|| r.natural_join_sort_merge(&s).unwrap().len())
        });
    }
    group.finish();
}

fn semijoin_and_project(c: &mut Criterion) {
    let mut group = c.benchmark_group("algebra/semijoin_project");
    group.sample_size(10);
    for n in [1000usize, 4000] {
        let r = rel(n, (n as i64) / 2, ["a", "b"], 3);
        let s = rel(n, (n as i64) / 2, ["b", "c"], 4);
        group.bench_with_input(BenchmarkId::new("semijoin", n), &n, |b, _| {
            b.iter(|| r.semijoin(&s).len())
        });
        group.bench_with_input(BenchmarkId::new("project", n), &n, |b, _| {
            b.iter(|| r.project(&["a"]).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, join_implementations, semijoin_and_project);
criterion_main!(benches);
