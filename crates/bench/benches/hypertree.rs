//! E16 — bounded hypertree width beyond Fig. 1: the width-2 cycle family
//! evaluated by bag materialization + Yannakakis over the bag tree
//! (Gottlob–Leone–Scarcello), vs the naive `n^q` backtracker, plus the
//! cost of the decomposition search itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{cycle_database, cycle_query, triangle_database, triangle_query};
use pq_engine::{hypertree, naive};
use pq_hypergraph::decompose;

fn triangle_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypertree/triangle_vs_naive");
    group.sample_size(10);
    let q = triangle_query();
    for n in [600usize, 1200, 2400] {
        let db = triangle_database(n, (n as i64) / 4, 29);
        group.bench_with_input(BenchmarkId::new("hypertree", n), &n, |b, _| {
            b.iter(|| hypertree::evaluate(&q, &db).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive::evaluate(&q, &db).unwrap().len())
        });
    }
    group.finish();
}

fn cycle_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypertree/cycle_vs_naive");
    group.sample_size(10);
    let q = cycle_query(6);
    for n in [100usize, 200, 400] {
        let db = cycle_database(6, n, (n as i64) / 4, 29);
        group.bench_with_input(BenchmarkId::new("hypertree", n), &n, |b, _| {
            b.iter(|| hypertree::evaluate(&q, &db).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive::evaluate(&q, &db).unwrap().len())
        });
    }
    group.finish();
}

fn emptiness_is_cheaper(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypertree/emptiness");
    group.sample_size(10);
    let q = cycle_query(6);
    for n in [200usize, 800] {
        let db = cycle_database(6, n, (n as i64) / 4, 31);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hypertree::is_nonempty(&q, &db).unwrap())
        });
    }
    group.finish();
}

fn decomposition_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypertree/decomposition_search");
    group.sample_size(10);
    for len in [4usize, 6, 8] {
        let hg = cycle_query(len).hypergraph();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| decompose(&hg, 3).expect("cycles have width 2").width())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    triangle_vs_naive,
    cycle_vs_naive,
    emptiness_is_cheaper,
    decomposition_search
);
criterion_main!(benches);
