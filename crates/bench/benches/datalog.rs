//! E8 — Section 4's recursive languages: bottom-up Datalog, naive vs
//! semi-naive (ablation A4), on transitive closure over random DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{dag_database, tc_program};
use pq_engine::datalog_eval::{self, Strategy};

fn transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog/tc");
    group.sample_size(10);
    let p = tc_program();
    for n in [40usize, 80, 160] {
        let db = dag_database(n, 2.5, 19);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                datalog_eval::evaluate(&p, &db, Strategy::Naive)
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| {
                datalog_eval::evaluate(&p, &db, Strategy::SemiNaive)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, transitive_closure);
criterion_main!(benches);
