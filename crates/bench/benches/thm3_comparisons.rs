//! E7 — Theorem 3: acyclic conjunctive queries with `<` comparisons are
//! W[1]-complete, so the best general engine is the `n^q` naive evaluator.
//! Series: the R9 clique-encoding instances swept over graph size, plus the
//! consistency-collapse preprocessing itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::comparison_instance;
use pq_engine::{comparisons, naive};
use pq_query::parse_cq;

fn theorem3_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3/r9_naive_eval");
    group.sample_size(10);
    for n in [6usize, 9, 12] {
        let (db, q) = comparison_instance(n, 0.4, 2, 17);
        group.bench_with_input(BenchmarkId::new("k2", n), &n, |b, _| {
            b.iter(|| naive::is_nonempty(&q, &db).unwrap())
        });
    }
    for n in [5usize, 6] {
        let (db, q) = comparison_instance(n, 0.6, 3, 18);
        group.bench_with_input(BenchmarkId::new("k3", n), &n, |b, _| {
            b.iter(|| naive::is_nonempty(&q, &db).unwrap())
        });
    }
    group.finish();
}

fn consistency_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm3/collapse_preprocessing");
    group.sample_size(30);
    // A long weak-equality chain: collapse merges everything.
    let mut body = String::from("R(s0, s1)");
    let mut comps = Vec::new();
    for i in 0..20 {
        comps.push(format!("s{i} <= s{}", i + 1));
        comps.push(format!("s{} <= s{i}", i + 1));
        if i > 0 {
            body.push_str(&format!(", R(s{i}, s{})", i + 1));
        }
    }
    let src = format!("G :- {body}, {}.", comps.join(", "));
    let q = parse_cq(&src).unwrap();
    group.bench_function("chain20", |b| {
        b.iter(|| comparisons::collapse_query(&q).unwrap().is_some())
    });
    group.finish();
}

criterion_group!(benches, theorem3_instances, consistency_preprocessing);
criterion_main!(benches);
