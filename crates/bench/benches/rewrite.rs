//! E18 — answering queries from views: the `PQA8xx` containment pass.
//!
//! Three ways to answer the triangle query (the paper's canonical cyclic
//! shape) over the same database, all through the service front door:
//!
//! * `cold`          — no views, no caches: the width-2 hypertree engine
//!   re-materializes its Θ(n²) bags on every request;
//! * `view_scan`     — an alpha-renamed view is subscribed and the result
//!   cache is off: every request pays the honest semantic-rewrite path
//!   (containment match against the registry + projection copy of the
//!   materialization);
//! * `semantic_warm` — result cache on, pre-warmed through a *different*
//!   spelling of the query: the request hits the result cache purely via
//!   the `PQA803` equivalence-class key.
//!
//! The acceptance bar from ISSUE 10 (`view_scan` at least 10× below
//! `cold`) is checked programmatically by `repro rewrite`; this bench
//! exposes the raw latencies of all three levels.

use criterion::{criterion_group, criterion_main, Criterion};
use pq_bench::workloads::triangle_database;
use pq_service::{CacheOutcome, QueryService, RequestLimits, ServiceConfig};

const QUERY: &str = "G(x) :- E(x, y), E(y, z), E(z, x).";
const QUERY_RENAMED: &str = "G(u) :- E(u, v), E(v, w), E(w, u).";
const VIEW: &str = "V(a) :- E(a, b), E(b, c), E(c, a).";

fn service(plan_cache: usize, result_cache: usize) -> QueryService {
    QueryService::new(ServiceConfig {
        workers: 2,
        queue_depth: 16,
        plan_cache_capacity: plan_cache,
        result_cache_capacity: result_cache,
        ..ServiceConfig::default()
    })
}

fn rewrite_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite/triangle_2400");
    group.sample_size(20);
    let db = triangle_database(2400, 600, 29);
    let limits = RequestLimits::default();

    let cold = service(0, 0);
    cold.load_database("d", db.clone()).unwrap();
    group.bench_function("cold", |b| {
        b.iter(|| {
            let resp = cold.query("d", QUERY, limits).unwrap();
            assert_eq!(resp.cache, CacheOutcome::Miss);
            resp.rows.len()
        })
    });
    cold.shutdown();

    let viewed = service(256, 0);
    viewed.load_database("d", db.clone()).unwrap();
    viewed.subscribe("d", VIEW).unwrap();
    group.bench_function("view_scan", |b| {
        b.iter(|| {
            let resp = viewed.query("d", QUERY, limits).unwrap();
            assert_eq!(resp.engine, "view-scan");
            resp.rows.len()
        })
    });
    viewed.shutdown();

    let semantic = service(256, 1024);
    semantic.load_database("d", db).unwrap();
    semantic.query("d", QUERY_RENAMED, limits).unwrap(); // warm via the other spelling
    group.bench_function("semantic_warm", |b| {
        b.iter(|| {
            let resp = semantic.query("d", QUERY, limits).unwrap();
            assert_eq!(resp.cache, CacheOutcome::ResultHit);
            resp.rows.len()
        })
    });
    semantic.shutdown();

    group.finish();
}

criterion_group!(benches, rewrite_levels);
criterion_main!(benches);
