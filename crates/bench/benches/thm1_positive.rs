//! E3 — Theorem 1, row "Positive": the R5 instances (weighted formula sat
//! as a positive query over the EQ/NEQ database) evaluated via the paper's
//! union-of-CQs route, swept over domain size `n` and weight `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_engine::positive_eval;
use pq_wtheory::formula::BoolFormula;
use pq_wtheory::reductions::wformula_positive::wformula_to_positive;

/// A CNF-ish formula: (x0 ∨ x1) ∧ (x1 ∨ x2) ∧ … over `n` variables.
fn band_formula(n: usize) -> BoolFormula {
    BoolFormula::And(
        (0..n - 1)
            .map(|i| BoolFormula::Or(vec![BoolFormula::var(i), BoolFormula::var(i + 1)]))
            .collect(),
    )
}

fn positive_query_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/positive_r5_eval");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let phi = band_formula(n);
        for k in [2usize, 3] {
            let inst = wformula_to_positive(&phi, n, k).expect("n covers φ");
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
                b.iter(|| positive_eval::query_holds(&inst.query, &inst.database).unwrap())
            });
        }
    }
    group.finish();
}

fn union_of_cqs_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/positive_dnf_expansion");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let phi = band_formula(n);
        let inst = wformula_to_positive(&phi, n, 2).expect("n covers φ");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| inst.query.to_union_of_cqs().len())
        });
    }
    group.finish();
}

criterion_group!(benches, positive_query_evaluation, union_of_cqs_expansion);
criterion_main!(benches);
