//! E12 — intra-query parallel execution (`pq-exec`): four workloads at
//! 1/2/4/8 threads. The reproduction target is the *shape*: identical
//! answers at every degree, near-flat cost on a single core (the morsel
//! machinery must not tax the serial path), and speedup proportional to
//! physical cores when they exist.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{chain_database, chain_query, clique_instance, dag_database, tc_program};
use pq_engine::colorcoding::{self, ColorCodingOptions};
use pq_engine::datalog_eval::{self, Strategy};
use pq_engine::governor::SharedContext;
use pq_engine::{naive, yannakakis, ExecutionContext};
use pq_exec::Pool;

const DEGREES: [usize; 4] = [1, 2, 4, 8];

fn shared() -> SharedContext {
    ExecutionContext::unlimited().into_shared()
}

fn clique_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/clique_join");
    group.sample_size(10);
    let (db, q) = clique_instance(48, 0.5, 3, 7);
    for threads in DEGREES {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                naive::evaluate_parallel(&q, &db, &shared(), &pool)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn acyclic_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/acyclic_path");
    group.sample_size(10);
    let q = chain_query(5);
    let db = chain_database(5, 1500, 300, 11);
    for threads in DEGREES {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                yannakakis::evaluate_parallel(&q, &db, Default::default(), &shared(), &pool)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn color_coding_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/color_coding");
    group.sample_size(10);
    let q =
        pq_query::parse_cq("G(x0, x3) :- R0(x0, x1), R1(x1, x2), R2(x2, x3), x0 != x2.").unwrap();
    let db = chain_database(3, 400, 80, 13);
    let opts = ColorCodingOptions::default();
    for threads in DEGREES {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                colorcoding::evaluate_parallel(&q, &db, &opts, &shared(), &pool)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn datalog_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/datalog_tc");
    group.sample_size(10);
    let p = tc_program();
    let db = dag_database(160, 3.0, 17);
    for threads in DEGREES {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                datalog_eval::evaluate_parallel(&p, &db, Strategy::SemiNaive, &shared(), &pool)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    clique_join,
    acyclic_path,
    color_coding_trials,
    datalog_tc
);
criterion_main!(benches);
