//! E6 — the Yannakakis baseline [18] that Theorem 2 extends: acyclic pure
//! CQs in poly(input + output), vs the naive evaluator, plus ablation A3
//! (the top-down dangling-tuple pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{chain_database, chain_query};
use pq_engine::naive;
use pq_engine::yannakakis::{self, EvalOptions};

fn chain_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("yannakakis/chain_vs_naive");
    group.sample_size(10);
    let q = chain_query(4);
    for n in [300usize, 600, 1200] {
        let db = chain_database(4, n, (n as i64) / 4, 21);
        group.bench_with_input(BenchmarkId::new("yannakakis", n), &n, |b, _| {
            b.iter(|| yannakakis::evaluate(&q, &db).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive::evaluate(&q, &db).unwrap().len())
        });
    }
    group.finish();
}

fn emptiness_is_cheaper(c: &mut Criterion) {
    let mut group = c.benchmark_group("yannakakis/emptiness");
    group.sample_size(10);
    let q = chain_query(6);
    for n in [500usize, 2000] {
        let db = chain_database(6, n, (n as i64) / 4, 23);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| yannakakis::is_nonempty(&q, &db).unwrap())
        });
    }
    group.finish();
}

fn ablation_a3_downward_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("yannakakis/ablation_a3_downward");
    group.sample_size(10);
    // Skewed data: many dangling tuples in the middle relations.
    let q = chain_query(5);
    let db = chain_database(5, 1500, 60, 31);
    for (label, downward) in [("with_downward", true), ("without_downward", false)] {
        let opts = EvalOptions {
            downward_pass: downward,
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                yannakakis::evaluate_with_options(&q, &db, opts)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    chain_queries,
    emptiness_is_cheaper,
    ablation_a3_downward_pass
);
criterion_main!(benches);
