//! E5 — Theorem 2: the color-coding engine for acyclic CQs with `≠`.
//!
//! Four series:
//! * `n_sweep`  — fixed `k`, growing database: near-linear (the paper's
//!   `g(v)·q·n·log n`);
//! * `k_sweep`  — fixed database, growing number of `I1` inequalities:
//!   exponential in `k`, but only in the constant factor, never in the
//!   `n`-exponent;
//! * `crossover` — color coding vs the naive `n^q` evaluator on the
//!   university workload (E9's query);
//! * ablations — A1 (minimized `W_j` attribute sets vs wide) and A2
//!   (randomized vs deterministic k-perfect family).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::{
    chain_database, chain_neq_query, outside_department_query, university_database,
};
use pq_engine::colorcoding::{self, ColorCodingOptions, HashFamily};
use pq_engine::naive;

fn n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2/n_sweep_k2");
    group.sample_size(10);
    let q = chain_neq_query(3, 1); // one I1 pair → k = 2
    for n in [500usize, 1000, 2000, 4000] {
        let db = chain_database(3, n, (n as i64) / 4, 5);
        let opts = ColorCodingOptions::randomized_trials(12, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| colorcoding::is_nonempty(&q, &db, &opts).unwrap())
        });
    }
    group.finish();
}

fn k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2/k_sweep_fixed_n");
    group.sample_size(10);
    let len = 6;
    let db = chain_database(len, 600, 40, 9);
    for span in [1usize, 2, 3, 4] {
        let q = chain_neq_query(len, span);
        let hg = q.hypergraph();
        let k = pq_engine::colorcoding::NeqPartition::build(&q, &hg).k();
        // Paper-faithful randomized trial count ⌈3·e^k⌉.
        let opts = ColorCodingOptions::randomized(k, 3.0, 2);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| colorcoding::is_nonempty(&q, &db, &opts).unwrap())
        });
    }
    group.finish();
}

fn crossover_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2/crossover_university");
    group.sample_size(10);
    let q = outside_department_query();
    for n in [200usize, 800] {
        let db = university_database(n, 40, 3);
        group.bench_with_input(BenchmarkId::new("colorcoding", n), &n, |b, _| {
            b.iter(|| {
                colorcoding::evaluate(&q, &db, &ColorCodingOptions::default())
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive::evaluate(&q, &db).unwrap().len())
        });
    }
    group.finish();
}

fn ablation_a1_attribute_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2/ablation_a1_wj");
    group.sample_size(10);
    let q = chain_neq_query(6, 3);
    let db = chain_database(6, 800, 50, 4);
    for (label, minimize) in [("minimized", true), ("wide", false)] {
        let opts = ColorCodingOptions {
            family: HashFamily::Random {
                trials: 20,
                seed: 8,
            },
            minimize_hashed_attrs: minimize,
        };
        group.bench_function(label, |b| {
            b.iter(|| colorcoding::is_nonempty(&q, &db, &opts).unwrap())
        });
    }
    group.finish();
}

fn ablation_a2_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2/ablation_a2_family");
    group.sample_size(10);
    let q = chain_neq_query(3, 1); // k = 2: deterministic family is feasible
    let db = chain_database(3, 300, 30, 6);
    group.bench_function("randomized_c3", |b| {
        let opts = ColorCodingOptions::randomized(2, 3.0, 7);
        b.iter(|| colorcoding::is_nonempty(&q, &db, &opts).unwrap())
    });
    group.bench_function("deterministic_perfect", |b| {
        let opts = ColorCodingOptions::default();
        b.iter(|| colorcoding::is_nonempty(&q, &db, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    n_sweep,
    k_sweep,
    crossover_vs_naive,
    ablation_a1_attribute_minimization,
    ablation_a2_family
);
criterion_main!(benches);
