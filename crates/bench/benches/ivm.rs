//! E15 — incremental view maintenance vs full recompute.
//!
//! Two views, each hit with a single-row insertion (applied before timing,
//! undone after):
//!
//! * `join` — a chain-join CQ view maintained by counting: the Δ-rule pass
//!   touches only tuples that join the new row;
//! * `tc`   — recursive transitive closure maintained by semi-naive delta
//!   propagation: work is proportional to the *new* closure tuples, not the
//!   closure.
//!
//! Each is benchmarked against the from-scratch recompute the maintenance
//! replaces. The acceptance bar from ISSUE 7 (checked programmatically by
//! `repro ivm`): maintenance at least 10× below recompute for single-row
//! mutations at the largest size.

use criterion::{criterion_group, criterion_main, Criterion};
use pq_bench::workloads::{chain_database, chain_query, dag_database, tc_program};
use pq_data::{tuple, Database, Tuple};
use pq_engine::datalog_eval::{self, Strategy};
use pq_engine::governor::ExecutionContext;
use pq_engine::naive;
use pq_ivm::{RelationDelta, ViewQuery, ViewRegistry};

fn unlimited() -> ExecutionContext {
    ExecutionContext::unlimited()
}

/// One maintained insert + its undo, so repeated iterations see the same
/// state. The timed unit is intentionally the *pair*: a self-contained
/// maintenance transaction.
fn maintain_roundtrip(reg: &mut ViewRegistry, db: &mut Database, rel: &str, row: &Tuple) {
    let added = db.insert_rows(rel, [row.clone()]).unwrap();
    reg.maintain(
        db,
        &[RelationDelta {
            relation: rel.to_string(),
            added,
            removed: Vec::new(),
        }],
        unlimited,
    );
    let removed = db.delete_rows(rel, std::slice::from_ref(row)).unwrap();
    reg.maintain(
        db,
        &[RelationDelta {
            relation: rel.to_string(),
            added: Vec::new(),
            removed,
        }],
        unlimited,
    );
}

fn join_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivm/join_chain4_single_row");
    group.sample_size(20);
    let len = 4;
    let mut db = chain_database(len, 2000, 60, 7);
    let cq = chain_query(len);
    let row = tuple![1000, 1]; // fresh head value, joins into the chain

    let mut reg = ViewRegistry::new();
    reg.register("v", ViewQuery::Cq(cq.clone()), &db, &unlimited())
        .unwrap();
    group.bench_function("maintain", |b| {
        b.iter(|| maintain_roundtrip(&mut reg, &mut db, "R0", &row))
    });
    group.bench_function("recompute", |b| {
        b.iter(|| naive::evaluate(&cq, &db).unwrap().len())
    });
    group.finish();
}

fn tc_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivm/tc_dag240_single_row");
    group.sample_size(10);
    let n = 240;
    let mut db = dag_database(n, 3.0, 11);
    let prog = tc_program();
    let row = tuple![n as i64, 0]; // a new source reaching 0's cone

    let mut reg = ViewRegistry::new();
    reg.register("t", ViewQuery::Program(prog.clone()), &db, &unlimited())
        .unwrap();
    group.bench_function("maintain", |b| {
        b.iter(|| maintain_roundtrip(&mut reg, &mut db, "E", &row))
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            datalog_eval::evaluate(&prog, &db, Strategy::SemiNaive)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, join_view, tc_view);
criterion_main!(benches);
