//! E2 — Theorem 1, row "Conjunctive": the clique query under the generic
//! evaluator scales as `n^k` (the parameter in the exponent), and the R2
//! machinery (CQ → weighted 2-CNF) is exercised at benchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_bench::workloads::clique_instance;
use pq_engine::{naive, naive_indexed};
use pq_wtheory::reductions::cq_to_w2cnf;

fn clique_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/cq_clique_naive");
    group.sample_size(10);
    for k in [2usize, 3] {
        for n in [24usize, 48, 96] {
            let (db, q) = clique_instance(n, 0.3, k, 42);
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
                b.iter(|| naive::is_nonempty(&q, &db).unwrap())
            });
        }
    }
    group.finish();
}

/// The engineering ablation: hash-indexed probes cut constants, but the
/// exponent (slope across n) stays — the paper's "inherently in the
/// exponent" claim, benchmarked.
fn clique_query_scaling_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/cq_clique_indexed");
    group.sample_size(10);
    for k in [2usize, 3] {
        for n in [24usize, 48, 96] {
            let (db, q) = clique_instance(n, 0.3, k, 5);
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
                b.iter(|| naive_indexed::evaluate(&q, &db).unwrap().len())
            });
        }
    }
    group.finish();
}

fn cq_to_w2cnf_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/cq_to_w2cnf");
    group.sample_size(10);
    for n in [16usize, 32] {
        let (db, q) = clique_instance(n, 0.3, 3, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| cq_to_w2cnf::reduce(&q, &db).unwrap())
        });
    }
    group.finish();
}

fn bounded_variable_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1/bounded_var_transform");
    group.sample_size(10);
    for n in [24usize, 48, 96] {
        let (db, q) = clique_instance(n, 0.3, 3, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| pq_engine::bounded_var::transform(&q, &db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    clique_query_scaling,
    clique_query_scaling_indexed,
    cq_to_w2cnf_reduction,
    bounded_variable_transform
);
criterion_main!(benches);
