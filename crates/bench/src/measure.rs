//! Timing and scaling-fit helpers for the `repro` binary.

use std::time::{Duration, Instant};

/// Time one invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Time the minimum over `reps` invocations (robust against scheduler
/// noise for fast operations).
pub fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let _ = f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Least-squares slope of `ln(y)` against `ln(x)`: the fitted polynomial
/// exponent of a scaling series. This is how the `repro` binary reports
/// "naive evaluation of the clique-k query grows like n^{slope}".
pub fn fit_log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| (x.ln(), y.max(1e-12).ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Format a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_recovers_known_exponents() {
        let quad: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powi(2)))
            .collect();
        assert!((fit_log_log_slope(&quad) - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 100.0, 7.0 * i as f64 * 100.0))
            .collect();
        assert!((fit_log_log_slope(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert!(fmt_duration(Duration::from_micros(3)).ends_with("µs"));
    }

    #[test]
    fn time_helpers_run() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
        let m = time_min(3, || std::hint::black_box(1 + 1));
        assert!(m.as_nanos() < 1_000_000_000);
    }
}
