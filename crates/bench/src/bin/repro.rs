//! `repro` — regenerate every table and figure of Papadimitriou &
//! Yannakakis, *On the Complexity of Database Queries* (PODS 1997).
//!
//! ```text
//! repro fig1         Fig. 1: the four parameterizations and Proposition 1
//! repro thm1         Theorem 1: the classification table, each cell verified
//! repro thm2         Theorem 2: f.p. tractability of acyclic CQs with ≠
//! repro thm3         Theorem 3: W[1]-completeness with < comparisons
//! repro yannakakis   The acyclic baseline [18] that Theorem 2 extends
//! repro datalog      Section 4: fixed-arity Datalog / bottom-up evaluation
//! repro extensions   The closing remarks: formula-≠, AW[P], AW[SAT], Datalog/W[1]
//! repro service      pq-service cache levels: cold vs plan-warm vs result-warm
//! repro analyze      pq-analyze: core minimization on redundant-atom workloads
//! repro analyze-datalog  pq-analyze: whole-program rewrite (dead-rule pruning +
//!                    rule minimization) vs evaluating the program as written
//! repro parallel     pq-exec: intra-query parallel speedup at 1/2/4/8 threads
//! repro recovery     pq-service: crash-recovery time vs WAL length and
//!                    snapshot cadence
//! repro ivm          pq-ivm: single-row delta maintenance vs full recompute
//!                    for live transitive-closure and join views
//! repro hypertree    pq-engine::hypertree: bounded-width cyclic CQs vs the
//!                    naive engine, recorded in BENCH_hypertree.json
//! repro count        pq-count: exact answer counting without enumeration vs
//!                    enumerate-then-count on chains with exponential answer
//!                    sets, recorded in BENCH_count.json
//! repro rewrite      pq-analyze/pq-service: answering queries from
//!                    materialized views (the PQA8xx containment pass) vs
//!                    cold evaluation, recorded in BENCH_rewrite.json
//! repro all          Everything above, in order
//! ```
//!
//! Absolute numbers are machine-dependent; the *shapes* (who wins, fitted
//! exponents, where crossovers fall) are the reproduction targets recorded
//! in EXPERIMENTS.md.

use std::time::Duration;

use pq_bench::measure::{fit_log_log_slope, fmt_duration, time_min, time_once};
use pq_bench::workloads;
use pq_data::Database;
use pq_engine::colorcoding::{self, ColorCodingOptions};
use pq_engine::datalog_eval::{self, Strategy};
use pq_engine::{fo_eval, naive, positive_eval, yannakakis};
use pq_query::QueryMetrics;
use pq_wtheory::formula::BoolFormula;
use pq_wtheory::graphs::random_graph;
use pq_wtheory::parametric::{theorem1_table, ParamVariant};
use pq_wtheory::reductions::{
    circuit_to_fo, clique_to_comparisons, clique_to_cq, cq_to_w2cnf, hampath_to_neq,
    wformula_positive,
};
use pq_wtheory::weighted_sat::{has_weighted_cnf_sat, weighted_formula_sat_n};
use pq_wtheory::{Circuit, Gate};

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "fig1" => fig1(),
        "thm1" => thm1(),
        "thm2" => thm2(),
        "thm3" => thm3(),
        "yannakakis" => yannakakis_exp(),
        "datalog" => datalog_exp(),
        "extensions" => extensions(),
        "service" => service_exp(),
        "analyze" => analyze_exp(),
        "analyze-datalog" => analyze_datalog_exp(),
        "parallel" => parallel_exp(),
        "recovery" => recovery_exp(),
        "ivm" => ivm_exp(),
        "hypertree" => hypertree_exp(),
        "count" => count_exp(),
        "rewrite" => rewrite_exp(),
        "all" => {
            fig1();
            thm1();
            thm2();
            thm3();
            yannakakis_exp();
            datalog_exp();
            extensions();
            service_exp();
            analyze_exp();
            analyze_datalog_exp();
            parallel_exp();
            recovery_exp();
            ivm_exp();
            hypertree_exp();
            count_exp();
            rewrite_exp();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

// ------------------------------------------------------------------ fig1 --

fn fig1() {
    header("Fig. 1 — the four parameterized query-evaluation problems (E1)");
    println!(
        r#"
              (v, variable schema)          <- most general
               /                \
   (q, variable schema)   (v, fixed schema)
               \                /
              (q, fixed schema)             <- hardness proved here suffices
"#
    );
    println!("Proposition 1: the identity map is a parametric reduction along every");
    println!("upward arc (v(Q) <= q(Q); a fixed-schema instance is a variable-schema");
    println!("instance). Checking upward closure of hardness over all 16 ordered");
    println!("pairs with the Theorem 1 hardness predicate (all four variants W[1]-");
    println!("hard for conjunctive queries):");
    let violations = ParamVariant::proposition1_violations(|_| true);
    println!("  violations found: {}  (expected 0)", violations.len());

    // Demonstrate the identity reduction concretely: one hard instance
    // replayed across the variants, parameters reported.
    let g = random_graph(12, 0.4, 1);
    let (db, q) = clique_to_cq::reduce(&g, 3);
    let ans = naive::is_nonempty(&q, &db).unwrap();
    println!("\nSample instance: clique-3 query on G(12, .4); answer {ans}.");
    println!("  as (q, .): parameter q = {}", q.size());
    println!(
        "  as (v, .): parameter v = {}  (v <= q ok)",
        q.num_variables()
    );
    println!("  schema: 1 binary relation — already fixed-schema");
}

// ------------------------------------------------------------------ thm1 --

fn thm1() {
    header("Theorem 1 — the classification table (E2, E3, E4)");
    println!("\nPaper's table:");
    println!(
        "{:>14} | {:^22} | {:^22}",
        "language", "parameter q", "parameter v"
    );
    println!("{:-<14}-+-{:-<22}-+-{:-<22}", "", "", "");
    for row in theorem1_table() {
        println!(
            "{:>14} | {:^22} | {:^22}",
            row.language, row.param_q, row.param_v
        );
    }

    // --- Row 1: conjunctive (E2) -----------------------------------------
    // R1 is cheap to verify at k = 4; the R2 ground truth enumerates
    // C(vars, k) weight-k assignments, so its battery stays at k ≤ 3 on
    // 6-vertex graphs (the exhaustive solver *is* the n^k phenomenon).
    println!("\n[Conjunctive] R1 (clique -> CQ) on G(8, .45), k = 2..4, and");
    println!("R2 (CQ -> weighted 2-CNF) on G(6, .45), k = 2..3:");
    let mut r1_ok = 0;
    let mut r1_total = 0;
    for seed in 0..20u64 {
        let g = random_graph(8, 0.45, seed);
        for k in 2..=4 {
            r1_total += 1;
            let (db, q) = clique_to_cq::reduce(&g, k);
            if naive::is_nonempty(&q, &db).unwrap() == g.has_clique(k) {
                r1_ok += 1;
            }
        }
    }
    let mut r2_ok = 0;
    let mut r2_total = 0;
    for seed in 0..20u64 {
        let g = random_graph(6, 0.45, seed);
        for k in 2..=3 {
            r2_total += 1;
            let (db, q) = clique_to_cq::reduce(&g, k);
            let inst = cq_to_w2cnf::reduce(&q, &db).unwrap();
            if has_weighted_cnf_sat(&inst.cnf, inst.k) == g.has_clique(k) {
                r2_ok += 1;
            }
        }
    }
    println!("  R1 agreement: {r1_ok}/{r1_total}   R2 agreement: {r2_ok}/{r2_total}");

    println!("\n  n^k scaling of the generic evaluator on the clique query");
    println!("  (full enumeration — every satisfying instantiation is found;");
    println!("  fitted log-log slope of time vs n should grow with k):");
    for k in [2usize, 3] {
        let mut pts = Vec::new();
        let sizes: &[usize] = if k == 2 {
            &[24, 48, 96, 192]
        } else {
            &[24, 48, 96]
        };
        for &n in sizes {
            let (db, q) = workloads::clique_instance(n, 0.3, k, 5);
            let d = time_min(2, || naive::evaluate(&q, &db).unwrap().len());
            pts.push((n as f64, d.as_secs_f64()));
        }
        println!(
            "    k = {k}: slope = {:+.2}   ({})",
            fit_log_log_slope(&pts),
            pts.iter()
                .map(|(n, t)| format!("n={n}: {}", fmt_duration(Duration::from_secs_f64(*t))))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // --- Row 2: positive (E3) --------------------------------------------
    println!("\n[Positive] R5 (weighted formula sat -> positive query) on random");
    println!("NNF formulas, and R6 (prenex positive -> weighted formula sat):");
    let mut r5_ok = 0;
    let mut r6_ok = 0;
    let mut total = 0;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..12 {
        let n = rng.gen_range(2..5usize);
        let phi = random_nnf(n, 2, &mut rng);
        for k in 1..=2.min(n) {
            total += 1;
            let truth = weighted_formula_sat_n(&phi, n, k).is_some();
            let inst = wformula_positive::wformula_to_positive(&phi, n, k).expect("n covers φ");
            let via_query = positive_eval::query_holds(&inst.query, &inst.database).unwrap();
            if via_query == truth {
                r5_ok += 1;
            }
            let back = wformula_positive::prenex_positive_to_wformula(&inst.query, &inst.database)
                .unwrap();
            if weighted_formula_sat_n(&back.formula, back.num_vars, back.k).is_some() == truth {
                r6_ok += 1;
            }
        }
    }
    println!("  R5 agreement: {r5_ok}/{total}   R6 agreement: {r6_ok}/{total}");

    // --- Row 3: first-order (E4) ------------------------------------------
    println!("\n[First-order] R7 (monotone circuit sat -> FO theta-tower query):");
    let mut r7_ok = 0;
    let mut total = 0;
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..8 {
        let n = rng.gen_range(2..4usize);
        let c = random_monotone_circuit(n, &mut rng);
        for k in 1..=n {
            total += 1;
            let inst = circuit_to_fo::reduce(&c, k).expect("monotone");
            let lhs = pq_wtheory::weighted_sat::has_weighted_circuit_sat(&c, k);
            let rhs = fo_eval::query_holds(&inst.query, &inst.database).unwrap();
            if lhs == rhs {
                r7_ok += 1;
            }
        }
    }
    println!("  R7 agreement: {r7_ok}/{total}");
    let c = deep_circuit(6);
    for k in [1usize, 2] {
        let inst = circuit_to_fo::reduce(&c, k).unwrap();
        println!(
            "  depth-{} circuit, k = {k}: query size {} (grows with t), variables {} (= k + 2)",
            c.depth(),
            inst.query.size(),
            inst.query.num_variables()
        );
    }
}

fn random_nnf(n: usize, depth: usize, rng: &mut rand::rngs::StdRng) -> BoolFormula {
    use rand::Rng;
    if depth == 0 || rng.gen_bool(0.3) {
        return BoolFormula::Lit(rng.gen_range(0..n), rng.gen_bool(0.6));
    }
    let kids: Vec<BoolFormula> = (0..rng.gen_range(2..4))
        .map(|_| random_nnf(n, depth - 1, rng))
        .collect();
    if rng.gen_bool(0.5) {
        BoolFormula::And(kids)
    } else {
        BoolFormula::Or(kids)
    }
}

fn random_monotone_circuit(n: usize, rng: &mut rand::rngs::StdRng) -> Circuit {
    use rand::Rng;
    let mut gates: Vec<Gate> = (0..n).map(Gate::Input).collect();
    for _ in 0..rng.gen_range(2..5) {
        let width = rng.gen_range(2..4).min(gates.len());
        let mut ops = Vec::new();
        while ops.len() < width {
            let o = rng.gen_range(0..gates.len());
            if !ops.contains(&o) {
                ops.push(o);
            }
        }
        if rng.gen_bool(0.5) {
            gates.push(Gate::And(ops));
        } else {
            gates.push(Gate::Or(ops));
        }
    }
    let out = gates.len() - 1;
    Circuit::new(n, gates, out)
}

fn deep_circuit(layers: usize) -> Circuit {
    let mut gates: Vec<Gate> = vec![Gate::Input(0), Gate::Input(1)];
    let mut prev = 0;
    for i in 0..layers {
        let next = gates.len();
        if i % 2 == 0 {
            gates.push(Gate::And(vec![prev, 1]));
        } else {
            gates.push(Gate::Or(vec![prev, 1]));
        }
        prev = next;
    }
    let out = gates.len();
    gates.push(Gate::Or(vec![prev]));
    Circuit::new(2, gates, out)
}

// ------------------------------------------------------------------ thm2 --

fn thm2() {
    header("Theorem 2 — acyclic CQs with != are f.p. tractable (E5)");

    // (a) correctness spot check against the oracle.
    let q = workloads::outside_department_query();
    let db = workloads::university_database(300, 40, 2);
    let fast = colorcoding::evaluate(&q, &db, &ColorCodingOptions::default()).unwrap();
    let slow = naive::evaluate(&q, &db).unwrap();
    println!("\nSection 5 query: {q}");
    println!(
        "correctness vs naive oracle on 300-student university: {} ({} answers)",
        if fast == slow { "agree" } else { "DISAGREE" },
        fast.len()
    );

    // (b) n-sweep at fixed k = 2: near-linear (slope ~ 1).
    println!("\nn-sweep (k = 2, deterministic log-size 2-perfect family):");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "students", "colorcoding", "naive", "answers"
    );
    let mut pts_cc = Vec::new();
    let mut pts_nv = Vec::new();
    for n in [400usize, 800, 1600, 3200] {
        let db = workloads::university_database(n, 40, 42);
        let (out, d_cc) =
            time_once(|| colorcoding::evaluate(&q, &db, &ColorCodingOptions::default()).unwrap());
        let d_nv = time_min(1, || naive::evaluate(&q, &db).unwrap());
        pts_cc.push((n as f64, d_cc.as_secs_f64()));
        pts_nv.push((n as f64, d_nv.as_secs_f64()));
        println!(
            "{:>10} {:>12} {:>12} {:>8}",
            n,
            fmt_duration(d_cc),
            fmt_duration(d_nv),
            out.len()
        );
    }
    println!(
        "fitted n-exponent: colorcoding = {:+.2}, naive = {:+.2}",
        fit_log_log_slope(&pts_cc),
        fit_log_log_slope(&pts_nv)
    );

    // (c) k-sweep at fixed n: exponential in k, flat in the n-exponent.
    println!("\nk-sweep (chain of 6 relations, 600 tuples each, randomized ceil(3e^k) trials):");
    println!("{:>4} {:>8} {:>14}", "k", "trials", "emptiness time");
    for span in [1usize, 2, 3, 4] {
        let q = workloads::chain_neq_query(6, span);
        let hg = q.hypergraph();
        let k = pq_engine::colorcoding::NeqPartition::build(&q, &hg).k();
        let trials = pq_engine::colorcoding::HashFamily::suggested_trials(k, 3.0);
        let db = workloads::chain_database(6, 600, 40, 9);
        let opts = ColorCodingOptions::randomized(k, 3.0, 2);
        let d = time_min(2, || colorcoding::is_nonempty(&q, &db, &opts).unwrap());
        println!("{:>4} {:>8} {:>14}", k, trials, fmt_duration(d));
    }

    // (d) the combined-complexity context: Hamiltonian path (R8).
    println!("\nCombined-complexity context (R8): Hamiltonian path as an acyclic !=");
    println!("query — the query grows with the graph, so NP-hardness is expected:");
    let mut agree = 0;
    for seed in 0..6u64 {
        let g = random_graph(6, 0.4, seed + 50);
        let (db, q) = hampath_to_neq::reduce(&g);
        if naive::is_nonempty(&q, &db).unwrap() == g.has_hamiltonian_path() {
            agree += 1;
        }
    }
    println!("  R8 agreement on G(6, .4) battery: {agree}/6");
}

// ------------------------------------------------------------------ thm3 --

fn thm3() {
    header("Theorem 3 — acyclic CQs with < comparisons are W[1]-complete (E7)");
    println!("\nR9 (clique -> acyclic comparison query) verification:");
    let mut agree = 0;
    let mut total = 0;
    for seed in 0..6u64 {
        let g = random_graph(5, 0.4, seed + 7);
        for k in 2..=3 {
            total += 1;
            let (db, q) = clique_to_comparisons::reduce(&g, k);
            debug_assert!(q.is_acyclic());
            if naive::is_nonempty(&q, &db).unwrap() == g.has_clique(k) {
                agree += 1;
            }
        }
    }
    println!("  agreement: {agree}/{total}  (queries acyclic, comparisons strict-only)");

    println!("\nn^k-shaped scaling of the best general algorithm (naive) on R9");
    println!("instances at k = 2:");
    let mut pts = Vec::new();
    for n in [6usize, 9, 12, 18] {
        let (db, q) = workloads::comparison_instance(n, 0.4, 2, 17);
        let d = time_min(2, || naive::is_nonempty(&q, &db).unwrap());
        pts.push((n as f64, d.as_secs_f64()));
        println!("  n = {n:>3}: {}", fmt_duration(d));
    }
    println!(
        "  fitted n-exponent = {:+.2} (super-linear, grows with k)",
        fit_log_log_slope(&pts)
    );
    println!("\nConclusion matches the paper: the != tractability of Theorem 2 does");
    println!("not extend to order comparisons.");
}

// ------------------------------------------------------------ yannakakis --

fn yannakakis_exp() {
    header("Yannakakis baseline [18] — acyclic pure CQs in poly(input+output) (E6)");
    let q = workloads::chain_query(4);
    println!("\nchain query: {q}");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "tuples", "yannakakis", "naive", "answers"
    );
    let mut pts = Vec::new();
    for n in [300usize, 600, 1200, 2400] {
        let db = workloads::chain_database(4, n, (n as i64) / 4, 21);
        let (out, d_y) = time_once(|| yannakakis::evaluate(&q, &db).unwrap());
        let d_n = time_min(1, || naive::evaluate(&q, &db).unwrap());
        pts.push((n as f64, d_y.as_secs_f64()));
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            n,
            fmt_duration(d_y),
            fmt_duration(d_n),
            out.len()
        );
    }
    println!(
        "fitted n-exponent (yannakakis) = {:+.2}",
        fit_log_log_slope(&pts)
    );
    println!("(output size grows with n here, so the poly(input+output) bound");
    println!(" allows a slope above 1; emptiness alone stays near-linear)");
}

// --------------------------------------------------------------- datalog --

fn datalog_exp() {
    header("Section 4 — Datalog: bottom-up fixpoint, fixed arity => W[1] (E8)");
    let p = workloads::tc_program();
    println!("\nprogram:\n{p}\n");
    println!(
        "{:>6} {:>8} {:>10} {:>11} {:>7} {:>7}",
        "nodes", "edges", "naive", "semi-naive", "rounds", "|T|"
    );
    for n in [50usize, 100, 200] {
        let db: Database = workloads::dag_database(n, 2.5, 11);
        let edges = db.relation("E").unwrap().len();
        let (out_n, d_naive) =
            time_once(|| datalog_eval::evaluate(&p, &db, Strategy::Naive).unwrap());
        let ((out_s, stats), d_semi) =
            time_once(|| datalog_eval::evaluate_with_stats(&p, &db, Strategy::SemiNaive).unwrap());
        assert_eq!(out_n.canonical_rows(), out_s.canonical_rows());
        println!(
            "{:>6} {:>8} {:>10} {:>11} {:>7} {:>7}",
            n,
            edges,
            fmt_duration(d_naive),
            fmt_duration(d_semi),
            stats.rounds,
            out_s.len()
        );
    }
    println!("\nEvery stage evaluates bounded-variable CQs (v = 3 for TC); the");
    println!("fixpoint arrives within n^r rounds — the Section 4 W[1] membership");
    println!("argument, executed literally. Vardi's lower bound says unrestricted");
    println!("arity provably forces the query size into the exponent.");
}

// ------------------------------------------------------------ extensions --

/// The paper's closing remarks (Sections 4–5), reproduced: the formula-of-
/// inequalities extension of Theorem 2, the AW\[P\]/AW\[SAT\] alternating
/// classifications, and fixed-arity Datalog evaluated through W\[1\] oracles.
fn extensions() {
    header("Extensions — the paper's closing remarks (X1–X4 of DESIGN.md)");

    // X1: monotone ∨/∧ formulas of ≠ atoms.
    use pq_engine::colorcoding::{formula_neq, HashFamily, NeqFormula};
    use pq_query::{parse_cq, Term};
    let mut db = Database::new();
    {
        use pq_data::tuple;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let rows1: Vec<_> = (0..60)
            .map(|_| tuple![rng.gen_range(0..10i64), rng.gen_range(0..10i64)])
            .collect();
        let rows2: Vec<_> = (0..60)
            .map(|_| tuple![rng.gen_range(0..10i64), rng.gen_range(0..10i64)])
            .collect();
        db.add_table("R", ["a", "b"], rows1).unwrap();
        db.add_table("S", ["b", "c"], rows2).unwrap();
    }
    let q = parse_cq("G(a, c) :- R(a, b), S(b, c).").unwrap();
    let phi = NeqFormula::Or(vec![
        NeqFormula::And(vec![
            NeqFormula::neq(Term::var("a"), Term::var("c")),
            NeqFormula::neq(Term::var("b"), Term::var("c")),
        ]),
        NeqFormula::neq(Term::var("a"), Term::cons(3)),
    ]);
    let fast = formula_neq::evaluate(&q, &phi, &db, &HashFamily::Perfect).unwrap();
    let slow = formula_neq::evaluate_naive(&q, &phi, &db).unwrap();
    println!("\n[X1] acyclic CQ + monotone formula of != atoms (param q):");
    println!("  phi = {phi}");
    println!(
        "  color-coding answers = {}, ground truth = {}: {}",
        fast.len(),
        slow.len(),
        if fast == slow { "agree" } else { "DISAGREE" }
    );

    // X2: AW[P] alternating circuits.
    use pq_wtheory::reductions::alternating::{self, Block, Quant};
    use pq_wtheory::{Circuit, Gate};
    let c = Circuit::new(
        4,
        vec![
            Gate::Input(0),
            Gate::Input(1),
            Gate::Input(2),
            Gate::Input(3),
            Gate::And(vec![0, 2]),
            Gate::And(vec![1, 3]),
            Gate::Or(vec![4, 5]),
        ],
        6,
    );
    println!("\n[X2] AW[P]: exists-block {{x0,x1}} / forall-block {{x2,x3}} over (x0&x2)|(x1&x3):");
    let mut ok = 0;
    let mut total = 0;
    for k1 in 1..=2usize {
        for k2 in 1..=2usize {
            total += 1;
            let blocks = vec![
                Block {
                    quant: Quant::Exists,
                    vars: vec![0, 1],
                    k: k1,
                },
                Block {
                    quant: Quant::Forall,
                    vars: vec![2, 3],
                    k: k2,
                },
            ];
            let inst = alternating::reduce(&c, &blocks).unwrap();
            let lhs = alternating::alternating_circuit_sat(&c, &blocks);
            let rhs = fo_eval::query_holds(&inst.query, &inst.database).unwrap();
            if lhs == rhs {
                ok += 1;
            }
        }
    }
    println!("  FO-query reduction vs alternating solver: {ok}/{total} agree");

    // X3: prenex FO <-> AW[SAT].
    use pq_wtheory::reductions::prenex_fo_awsat;
    let mut db2 = Database::new();
    {
        use pq_data::tuple;
        db2.add_table("E", ["a", "b"], [tuple![1, 2], tuple![2, 3], tuple![3, 1]])
            .unwrap();
        db2.add_table("L", ["a"], [tuple![1], tuple![2]]).unwrap();
    }
    println!("\n[X3] prenex FO (param v) <-> alternating weighted formula sat:");
    let mut ok = 0;
    let specs = [
        "Q := forall x. exists y. E(x, y)",
        "Q := exists x. forall y. E(x, y)",
        "Q := forall x. exists y. (E(x, y) & !L(y) | L(x))",
    ];
    for src in specs {
        let fq = pq_query::parse_fo(src).unwrap();
        let inst = prenex_fo_awsat::reduce(&fq, &db2).unwrap();
        let lhs = fo_eval::query_holds(&fq, &db2).unwrap();
        let rhs = prenex_fo_awsat::alternating_weighted_formula_sat(
            &inst.formula,
            &inst.blocks,
            inst.num_vars,
        );
        if lhs == rhs {
            ok += 1;
        }
    }
    println!(
        "  {ok}/{} prenex specs agree across the reduction",
        specs.len()
    );

    // X4: Datalog through W[1] oracles.
    use pq_wtheory::reductions::datalog_w1;
    let mut db3 = Database::new();
    {
        use pq_data::tuple;
        db3.add_table("E", ["a", "b"], [tuple![0, 1], tuple![1, 2], tuple![2, 3]])
            .unwrap();
    }
    let p = workloads::tc_program();
    let (via_w1, transcript) = datalog_w1::evaluate_via_w1(&p, &db3).unwrap();
    let direct = datalog_eval::evaluate(&p, &db3, Strategy::Naive).unwrap();
    println!("\n[X4] fixed-arity Datalog run entirely through W[1] oracles:");
    println!(
        "  {} weighted-2CNF instances decided over {} rounds (max parameter k = {});",
        transcript.num_instances(),
        transcript.rounds,
        transcript.max_parameter()
    );
    println!(
        "  fixpoint matches direct evaluation: {}",
        via_w1.canonical_rows() == direct.canonical_rows()
    );
}

// --------------------------------------------------------------- service --

/// E10: the service's two cache levels on the Theorem 2 acyclic chain
/// workload, with the ISSUE 2 acceptance check (result-warm ≥ 10× below
/// cold) verified programmatically rather than by eyeballing bench output.
fn service_exp() {
    use pq_service::{CacheOutcome, QueryService, RequestLimits, ServiceConfig};

    header("pq-service — plan/result cache levels on the acyclic chain (E10)");

    let len = 6;
    let db = workloads::chain_database(len, 300, 50, 7);
    let body: Vec<String> = (0..len)
        .map(|i| format!("R{i}(x{i}, x{})", i + 1))
        .collect();
    let src = format!("G(x0, x{len}) :- {}.", body.join(", "));
    let limits = RequestLimits::default();

    let service = |plan: usize, result: usize| {
        QueryService::new(ServiceConfig {
            workers: 2,
            plan_cache_capacity: plan,
            result_cache_capacity: result,
            ..ServiceConfig::default()
        })
    };

    let cold_svc = service(0, 0);
    cold_svc.load_database("d", db.clone()).unwrap();
    let cold = time_min(3, || {
        assert_eq!(
            cold_svc.query("d", &src, limits).unwrap().cache,
            CacheOutcome::Miss
        );
    });
    cold_svc.shutdown();

    let plan_svc = service(256, 0);
    plan_svc.load_database("d", db.clone()).unwrap();
    plan_svc.query("d", &src, limits).unwrap();
    let plan_warm = time_min(3, || {
        assert_eq!(
            plan_svc.query("d", &src, limits).unwrap().cache,
            CacheOutcome::PlanHit
        );
    });
    plan_svc.shutdown();

    let result_svc = service(256, 1024);
    result_svc.load_database("d", db).unwrap();
    result_svc.query("d", &src, limits).unwrap();
    let result_warm = time_min(50, || {
        assert_eq!(
            result_svc.query("d", &src, limits).unwrap().cache,
            CacheOutcome::ResultHit
        );
    });
    result_svc.shutdown();

    println!("\n  chain query, {len} atoms, 300 tuples/relation:");
    println!("  cold        (no caches)      {}", fmt_duration(cold));
    println!("  plan-warm   (plan cache)     {}", fmt_duration(plan_warm));
    println!(
        "  result-warm (both levels)    {}",
        fmt_duration(result_warm)
    );
    let speedup = cold.as_secs_f64() / result_warm.as_secs_f64().max(1e-9);
    println!(
        "  result-warm speedup over cold: {speedup:.0}x  (acceptance bar: >= 10x: {})",
        if speedup >= 10.0 { "PASS" } else { "FAIL" }
    );
}

// --------------------------------------------------------------- analyze --

// -------------------------------------------------------------- parallel --

/// E12: intra-query parallel execution — four workloads at 1/2/4/8 threads,
/// answers checked byte-identical to the serial engines at every degree.
/// Speedup is bounded by physical cores; on a single-core box the target is
/// "no worse than serial", and the determinism checks are the point.
fn parallel_exp() {
    use pq_engine::governor::SharedContext;
    use pq_engine::naive_indexed;
    use pq_engine::ExecutionContext;
    use pq_exec::Pool;

    header("pq-exec — intra-query parallel speedup (E12)");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("\n  physical parallelism available: {cores} core(s)");
    println!("  (speedup at d threads is capped by min(d, cores); answers are");
    println!("   checked identical to the serial engine at every degree)\n");

    let shared = || -> SharedContext { ExecutionContext::unlimited().into_shared() };
    let degrees = [1usize, 2, 4, 8];

    // Workload 1: cyclic clique join on the naive indexed engine.
    let (cdb, cq) = workloads::clique_instance(44, 0.5, 3, 7);
    // Workload 2: acyclic chain on Yannakakis.
    let yq = workloads::chain_query(5);
    let ydb = workloads::chain_database(5, 1500, 300, 11);
    // Workload 3: color-coding trials on a chain with ≠.
    let nq =
        pq_query::parse_cq("G(x0, x3) :- R0(x0, x1), R1(x1, x2), R2(x2, x3), x0 != x2.").unwrap();
    let ndb = workloads::chain_database(3, 400, 80, 13);
    let cc = ColorCodingOptions::default();
    // Workload 4: Datalog transitive closure, semi-naive.
    let tp = workloads::tc_program();
    let tdb = workloads::dag_database(160, 3.0, 17);

    type Workload<'a> = (&'a str, Box<dyn Fn(&Pool) -> usize + 'a>);
    let workloads: Vec<Workload> = vec![
        (
            "clique join (naive indexed)",
            Box::new(|p: &Pool| {
                naive_indexed::evaluate_parallel(&cq, &cdb, &shared(), p)
                    .unwrap()
                    .len()
            }),
        ),
        (
            "acyclic chain (yannakakis)",
            Box::new(|p: &Pool| {
                yannakakis::evaluate_parallel(&yq, &ydb, Default::default(), &shared(), p)
                    .unwrap()
                    .len()
            }),
        ),
        (
            "chain with != (color coding)",
            Box::new(|p: &Pool| {
                colorcoding::evaluate_parallel(&nq, &ndb, &cc, &shared(), p)
                    .unwrap()
                    .len()
            }),
        ),
        (
            "transitive closure (datalog)",
            Box::new(|p: &Pool| {
                datalog_eval::evaluate_parallel(&tp, &tdb, Strategy::SemiNaive, &shared(), p)
                    .unwrap()
                    .len()
            }),
        ),
    ];

    println!(
        "  {:<30} {:>9} {:>9} {:>9} {:>9}  speedup@4",
        "workload", "1t", "2t", "4t", "8t"
    );
    for (name, run) in &workloads {
        let baseline_len = run(&Pool::new(1));
        let mut times = Vec::new();
        for d in degrees {
            let pool = Pool::new(d);
            assert_eq!(run(&pool), baseline_len, "{name}: answer differs at {d}t");
            times.push(time_min(3, || run(&pool)));
        }
        let speedup = times[0].as_secs_f64() / times[2].as_secs_f64().max(1e-9);
        println!(
            "  {:<30} {:>9} {:>9} {:>9} {:>9}  {speedup:>7.2}x",
            name,
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            fmt_duration(times[2]),
            fmt_duration(times[3]),
        );
    }
    println!("\n  acceptance bar (>= 2x at 4 threads) requires >= 4 physical cores;");
    println!(
        "  on {cores} core(s) the expected speedup is ~min(4, {cores})x minus merge overhead."
    );
}

fn analyze_exp() {
    use pq_core::analyze::AnalyzeOptions;
    use pq_core::{plan, PlannerOptions};
    use pq_query::parse_cq;

    header("pq-analyze — core minimization on redundant-atom workloads (E11)");

    // A 4-atom chain with one redundant copy of every chain atom: each
    // R_i(x_i, w_i) folds into R_i(x_i, x_{i+1}) (map w_i ↦ x_{i+1}), so
    // the Chandra–Merlin core is exactly the chain.
    let len = 4;
    let db = workloads::chain_database(len, 1200, 50, 11);
    let chain: Vec<String> = (0..len)
        .map(|i| format!("R{i}(x{i}, x{})", i + 1))
        .collect();
    let redundant: Vec<String> = (0..len).map(|i| format!("R{i}(x{i}, w{i})")).collect();
    let src = format!(
        "G(x0, x{len}) :- {}, {}.",
        chain.join(", "),
        redundant.join(", ")
    );
    let q = parse_cq(&src).unwrap();

    let keep = PlannerOptions {
        analysis: AnalyzeOptions {
            minimize: false,
            ..AnalyzeOptions::default()
        },
        ..PlannerOptions::default()
    };
    let as_written = plan(&q, &keep);
    let minimized = plan(&q, &PlannerOptions::default());
    let core_atoms = minimized.analysis.effective(&q).atoms.len();
    println!(
        "\n  query as written: {} atoms; Chandra–Merlin core: {core_atoms} atoms (engine: {})",
        q.atoms.len(),
        minimized.engine
    );

    let ans_full = std::cell::RefCell::new(None);
    let ans_core = std::cell::RefCell::new(None);
    let full = time_min(2, || {
        *ans_full.borrow_mut() = Some(as_written.execute(&q, &db).unwrap());
    });
    let core = time_min(2, || {
        *ans_core.borrow_mut() = Some(minimized.execute(&q, &db).unwrap());
    });
    assert_eq!(
        ans_full.into_inner(),
        ans_core.into_inner(),
        "minimization must not change the answer"
    );
    println!("  evaluate as written      {}", fmt_duration(full));
    println!("  evaluate minimized core  {}", fmt_duration(core));
    let speedup = full.as_secs_f64() / core.as_secs_f64().max(1e-9);
    println!(
        "  core-minimization speedup: {speedup:.2}x  (answers identical: PASS; bar >= 1.2x: {})",
        if speedup >= 1.2 { "PASS" } else { "FAIL" }
    );
}

/// E13: the whole-program analyzer as a fixpoint optimizer. The workload
/// carries two kinds of waste the analyzer removes statically: a redundant
/// body atom in the live base rule (folds by Chandra–Merlin), and a dead
/// nonlinear transitive closure — two rules deriving `U`, which the goal
/// never reads, so the unrewritten fixpoint computes the entire TC *twice*
/// (once linearly for `T`, once by doubling for `U`).
fn analyze_datalog_exp() {
    use pq_core::{plan_datalog, PlannerOptions};
    use pq_query::parse_datalog;

    header("pq-analyze — whole-program rewrite vs the program as written (E13)");

    let p = parse_datalog(
        "T(x, y) :- E(x, y), E(x, w).\n\
         T(x, z) :- E(x, y), T(y, z).\n\
         U(x, y) :- E(x, y).\n\
         U(x, z) :- U(x, y), U(y, z).\n\
         ?- T",
    )
    .unwrap();
    println!("\nprogram as written:\n{p}\n");

    let plan = plan_datalog(&p, &PlannerOptions::default());
    let r = &plan.analysis.report;
    println!(
        "analysis: rules {}/{} live (dead: {:?}), recursion {}, sccs {}",
        r.rules_live,
        r.rules_total,
        r.dead_rules,
        r.recursion.as_str(),
        r.sccs.len()
    );
    for d in &plan.analysis.diagnostics {
        println!("  {d}");
    }

    println!(
        "\n{:>6} {:>8} {:>12} {:>11} {:>9} {:>7}",
        "nodes", "edges", "as written", "rewritten", "speedup", "|T|"
    );
    let mut speedups = Vec::new();
    for n in [50usize, 100, 200] {
        let db: Database = workloads::dag_database(n, 2.5, 11);
        let edges = db.relation("E").unwrap().len();
        let (out_full, d_full) =
            time_once(|| datalog_eval::evaluate(&p, &db, Strategy::SemiNaive).unwrap());
        let (out_rw, d_rw) = time_once(|| plan.execute(&p, &db).unwrap());
        assert_eq!(
            out_full.canonical_rows(),
            out_rw.canonical_rows(),
            "the rewrite must preserve the goal relation"
        );
        let speedup = d_full.as_secs_f64() / d_rw.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        println!(
            "{:>6} {:>8} {:>12} {:>11} {:>8.2}x {:>7}",
            n,
            edges,
            fmt_duration(d_full),
            fmt_duration(d_rw),
            speedup,
            out_rw.len()
        );
    }
    let best = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\n  dead-rule pruning + rule minimization: answers identical at every\n  \
         size (PASS); best fixpoint speedup {best:.2}x (bar >= 1.5x: {})",
        if best >= 1.5 { "PASS" } else { "FAIL" }
    );
}

// -------------------------------------------------------------- recovery --

/// E14: crash recovery for the durable catalog — replay time as a function
/// of (a) how many WAL records sit past the last snapshot and (b) the
/// snapshot cadence. Each run builds a catalog under `--fsync never`, drops
/// the service *without* draining (simulating a crash: `Drop` takes the
/// abortive shutdown path, so no final snapshot is sealed), then times a
/// cold `QueryService::try_new` over the surviving files. Replay should be
/// linear in the WAL tail, and cadence should bound the tail.
fn recovery_exp() {
    use std::path::Path;

    use pq_service::{DurabilityConfig, FsyncPolicy, QueryService, RecoveryStats, ServiceConfig};

    header("pq-service — crash-recovery time vs WAL length and snapshot cadence (E14)");

    let scratch = std::env::temp_dir().join(format!("pq-repro-recovery-{}", std::process::id()));
    let durable = |dir: &Path, snapshot_every: u64| ServiceConfig {
        workers: 1,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            snapshot_every,
        }),
        ..ServiceConfig::default()
    };

    // Build a catalog and crash: one install plus `appends` journaled
    // updates of a small two-relation chain database.
    let build = |dir: &Path, snapshot_every: u64, appends: u64| {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).expect("scratch dir");
        let svc = QueryService::try_new(durable(dir, snapshot_every)).unwrap();
        svc.load_database("d", workloads::chain_database(2, 60, 30, 11))
            .unwrap();
        for _ in 0..appends {
            // A no-op mutation still journals the post-state record.
            svc.update_database("d", |_| ()).unwrap();
        }
        // Dropping without drain() is the crash: abortive shutdown, no
        // final snapshot, the WAL tail stays on disk.
        drop(svc);
    };

    // Recovery compacts (fresh snapshot, rotated WAL), so each timed
    // replay needs a freshly built directory; report the best of `reps`.
    let timed_recover = |dir: &Path, snapshot_every: u64, appends: u64| {
        let reps = 3;
        let mut best = Duration::MAX;
        let mut stats: Option<RecoveryStats> = None;
        let mut wal_bytes = 0u64;
        for _ in 0..reps {
            build(dir, snapshot_every, appends);
            wal_bytes = std::fs::metadata(dir.join("catalog.wal")).map_or(0, |m| m.len());
            let (svc, dt) = time_once(|| QueryService::try_new(durable(dir, 0)).unwrap());
            if dt < best {
                best = dt;
                stats = svc.recovery_stats();
            }
            drop(svc);
        }
        (stats.expect("durability was configured"), best, wal_bytes)
    };

    println!("\n  (a) WAL length: no snapshot cadence, every record must replay\n");
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "appends", "replayed", "WAL bytes", "recovery"
    );
    let mut points = Vec::new();
    for appends in [0u64, 64, 256, 1024, 4096] {
        let (stats, dt, wal_bytes) = timed_recover(&scratch, 0, appends);
        println!(
            "{:>10} {:>10} {:>10} {:>12}",
            appends,
            stats.replayed_records,
            wal_bytes,
            fmt_duration(dt)
        );
        if appends >= 64 {
            points.push((appends as f64, dt.as_secs_f64()));
        }
    }
    let slope = fit_log_log_slope(&points);
    println!(
        "\n  fitted log-log slope of recovery time vs WAL records: {slope:.2}  \
         (linear replay target ~1: {})",
        if (0.5..=1.5).contains(&slope) {
            "PASS"
        } else {
            "FAIL"
        }
    );

    println!("\n  (b) snapshot cadence: 2000 appends, cadence bounds the replay tail\n");
    println!(
        "{:>10} {:>10} {:>10} {:>12}",
        "cadence", "replayed", "WAL bytes", "recovery"
    );
    for cadence in [0u64, 1024, 256, 64] {
        let (stats, dt, wal_bytes) = timed_recover(&scratch, cadence, 2000);
        let label = if cadence == 0 {
            "never".to_string()
        } else {
            cadence.to_string()
        };
        println!(
            "{label:>10} {:>10} {:>10} {:>12}",
            stats.replayed_records,
            wal_bytes,
            fmt_duration(dt)
        );
    }
    println!(
        "\n  a tighter cadence trades write-path snapshot work for a shorter\n  \
         replay tail; `--fsync` policy bounds what a crash can lose, the\n  \
         cadence bounds how long recovery takes"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

// ------------------------------------------------------------------- ivm --

/// E15: incremental view maintenance — a registered transitive-closure view
/// patched by semi-naive delta propagation (recursive plan) vs recomputing
/// the closure from scratch after every single-row mutation. Maintenance
/// work scales with the *change* to the answer, recompute with the answer;
/// the gap widens with instance size. Acceptance bar: >= 10x at the largest
/// size.
fn ivm_exp() {
    use pq_data::tuple;
    use pq_engine::ExecutionContext;
    use pq_ivm::{RelationDelta, ViewQuery, ViewRegistry};

    header("pq-ivm — delta maintenance vs full recompute for live views (E15)");

    let prog = workloads::tc_program();
    println!("\nview: transitive closure over E (recursive plan, semi-naive deltas);");
    println!("mutation: insert one fresh edge, maintain, delete it, maintain.\n");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "nodes", "edges", "|T|", "maintain", "recompute", "speedup"
    );

    let unlimited = ExecutionContext::unlimited;
    let mut last_speedup = 0.0f64;
    for n in [60usize, 120, 240] {
        let mut db = workloads::dag_database(n, 3.0, 11);
        let edges = db.relation("E").unwrap().len();
        let mut reg = ViewRegistry::new();
        reg.register("t", ViewQuery::Program(prog.clone()), &db, &unlimited())
            .unwrap();
        let tc_len = reg.answer("t").unwrap().len();
        let row = tuple![n as i64, 0];

        // One full insert+delete maintenance round-trip per rep, so every
        // rep starts from the same state; report the best of `reps`.
        let delta = |relation: &str, added: Vec<pq_data::Tuple>, removed: Vec<pq_data::Tuple>| {
            RelationDelta {
                relation: relation.to_string(),
                added,
                removed,
            }
        };
        let mut maintain = Duration::MAX;
        for _ in 0..5 {
            let added = db.insert_rows("E", [row.clone()]).unwrap();
            let (_, d_ins) =
                time_once(|| reg.maintain(&db, &[delta("E", added.clone(), vec![])], unlimited));
            let removed = db.delete_rows("E", std::slice::from_ref(&row)).unwrap();
            let (_, d_del) =
                time_once(|| reg.maintain(&db, &[delta("E", vec![], removed.clone())], unlimited));
            maintain = maintain.min((d_ins + d_del) / 2);
        }
        assert_eq!(
            reg.answer("t").unwrap().len(),
            tc_len,
            "round-trips must restore the view"
        );

        let recompute = time_min(3, || {
            datalog_eval::evaluate(&prog, &db, Strategy::SemiNaive)
                .unwrap()
                .len()
        });
        last_speedup = recompute.as_secs_f64() / maintain.as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>8} {:>8} {:>12} {:>12} {:>8.0}x",
            n,
            edges,
            tc_len,
            fmt_duration(maintain),
            fmt_duration(recompute),
            last_speedup
        );
    }
    println!(
        "\n  single-row maintenance speedup at the largest size: {last_speedup:.0}x  \
         (acceptance bar: >= 10x: {})",
        if last_speedup >= 10.0 { "PASS" } else { "FAIL" }
    );
}

// ------------------------------------------------------------- hypertree --

/// E16: bounded hypertree width beyond the paper's Fig. 1 — the width-2
/// cycle family evaluated by bag materialization + Yannakakis over the bag
/// tree, vs the naive `n^q` backtracker. The results start the perf
/// trajectory in `BENCH_hypertree.json`. Acceptance bar: >= 5x at the
/// largest size.
fn hypertree_exp() {
    use pq_engine::hypertree;
    use pq_hypergraph::decompose;

    header("pq-engine::hypertree — width-2 cyclic CQs vs naive (E16)");

    // One table per family; the acceptance bar reads the headline family.
    let run_family = |name: &str,
                      q: &pq_query::ConjunctiveQuery,
                      instances: &[(usize, Database)]|
     -> (f64, Vec<String>) {
        let d = decompose(&q.hypergraph(), 3).expect("family stays within the width limit");
        println!("\n[{name}] {q}");
        println!(
            "  hypertree width {} ({}), decomposition {}",
            d.width(),
            if d.is_exact() { "exact" } else { "heuristic" },
            d.shape()
        );
        println!(
            "  {:>8} {:>12} {:>12} {:>9} {:>8}",
            "tuples", "hypertree", "naive", "speedup", "answers"
        );
        let mut rows = Vec::new();
        let mut last_speedup = 0.0f64;
        for (n, db) in instances {
            let (out, d_h) = time_once(|| hypertree::evaluate(q, db).unwrap());
            let d_h = d_h.min(time_min(2, || hypertree::evaluate(q, db).unwrap().len()));
            let (out_naive, d_n) = time_once(|| naive::evaluate(q, db).unwrap());
            assert_eq!(out, out_naive, "engines must agree at n = {n}");
            last_speedup = d_n.as_secs_f64() / d_h.as_secs_f64().max(1e-9);
            println!(
                "  {:>8} {:>12} {:>12} {:>8.1}x {:>8}",
                n,
                fmt_duration(d_h),
                fmt_duration(d_n),
                last_speedup,
                out.len()
            );
            rows.push(format!(
                "        {{\"n\": {n}, \"hypertree_secs\": {:.6}, \"naive_secs\": {:.6}, \
                 \"speedup\": {:.2}, \"answers\": {}}}",
                d_h.as_secs_f64(),
                d_n.as_secs_f64(),
                last_speedup,
                out.len()
            ));
        }
        (last_speedup, rows)
    };

    // Headline: the triangle — single width-2 bag, connected cover, so the
    // bag materializes in O(n²/d) against naive's n-deep backtracking.
    let tq = workloads::triangle_query();
    let t_instances: Vec<(usize, Database)> = [600usize, 1200, 2400]
        .iter()
        .map(|&n| (n, workloads::triangle_database(n, (n as i64) / 4, 29)))
        .collect();
    let (t_speedup, t_rows) = run_family("triangle", &tq, &t_instances);

    // Secondary: the 6-cycle — three bags, a real tree sweep, and the
    // disconnected-cover worst case (opposite cycle edges) where bag
    // materialization itself is Θ(n²), the GLS bound for width 2.
    let cq = workloads::cycle_query(6);
    let c_instances: Vec<(usize, Database)> = [200usize, 400, 800]
        .iter()
        .map(|&n| (n, workloads::cycle_database(6, n, (n as i64) / 4, 29)))
        .collect();
    let (c_speedup, c_rows) = run_family("cycle-6", &cq, &c_instances);

    let pass = t_speedup >= 5.0;
    println!(
        "\n  triangle speedup at the largest size: {t_speedup:.1}x  \
         (acceptance bar: >= 5x: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    // Hand-rolled JSON: the perf-trajectory baseline later PRs diff against.
    let family = |name: &str, rows: &[String], speedup: f64| {
        format!(
            "    {{\n      \"family\": \"{name}\",\n      \"points\": [\n{}\n      ],\n      \
             \"largest_speedup\": {speedup:.2}\n    }}",
            rows.join(",\n")
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"E16\",\n  \"width\": 2,\n  \"families\": [\n{},\n{}\n  ],\n  \
         \"bar_5x\": {pass}\n}}\n",
        family("triangle", &t_rows, t_speedup),
        family("cycle-6", &c_rows, c_speedup),
    );
    match std::fs::write("BENCH_hypertree.json", &json) {
        Ok(()) => println!("  wrote BENCH_hypertree.json"),
        Err(e) => println!("  could not write BENCH_hypertree.json: {e}"),
    }
}

// ----------------------------------------------------------------- count --

/// E17: exact answer counting without enumeration — the weighted-semiring
/// Yannakakis sweep (`pq-count`) vs enumerate-then-count on the
/// quantifier-free chain family over complete `3x3` relations, whose
/// answer set is exactly `3^(len+1)` while the input grows by 9 tuples per
/// atom. Counts are cross-checked for byte-identical agreement with the
/// enumeration oracle serially and at 2 and 4 exec threads. Acceptance
/// bar: >= 10x at the largest size, recorded in `BENCH_count.json`.
fn count_exp() {
    use pq_core::{plan_count, PlannerOptions};
    use pq_engine::ExecutionContext;
    use pq_exec::Pool;

    header("pq-count — counting without enumeration vs enumerate-then-count (E17)");

    let base = 3i64;
    println!("\n[chain] quantifier-free head, complete {base}x{base} relations");
    println!(
        "  {:>5} {:>14} {:>12} {:>12} {:>9}",
        "len", "answers", "count", "enumerate", "speedup"
    );
    let mut rows = Vec::new();
    let mut last_speedup = 0.0f64;
    for len in [6usize, 8, 10] {
        let q = workloads::chain_full_query(len);
        let db = workloads::complete_chain_database(len, base);
        let plan = plan_count(&q, &PlannerOptions::default());

        let (count, d_c) = time_once(|| {
            plan.execute_governed(&q, &db, &ExecutionContext::unlimited())
                .unwrap()
        });
        let d_c = d_c.min(time_min(3, || {
            plan.execute_governed(&q, &db, &ExecutionContext::unlimited())
                .unwrap()
                .distinct
        }));
        let (enumerated, d_e) = time_once(|| yannakakis::evaluate(&q, &db).unwrap());

        // Byte-identical agreement with the oracle, at every degree: the
        // acceptance bar is exactness first, speed second.
        assert_eq!(count.distinct, enumerated.len() as u128, "len = {len}");
        assert_eq!(count.assignments, count.distinct, "quantifier-free head");
        assert_eq!(count.distinct, (base as u128).pow(len as u32 + 1));
        for threads in [2usize, 4] {
            let pool = Pool::new(threads);
            let par = plan
                .execute_parallel(&q, &db, &ExecutionContext::unlimited().into_shared(), &pool)
                .unwrap();
            assert_eq!(par, count, "len = {len} at {threads} threads");
        }

        last_speedup = d_e.as_secs_f64() / d_c.as_secs_f64().max(1e-9);
        println!(
            "  {:>5} {:>14} {:>12} {:>12} {:>8.1}x",
            len,
            count.distinct,
            fmt_duration(d_c),
            fmt_duration(d_e),
            last_speedup
        );
        rows.push(format!(
            "        {{\"len\": {len}, \"answers\": {}, \"count_secs\": {:.6}, \
             \"enumerate_secs\": {:.6}, \"speedup\": {:.2}}}",
            count.distinct,
            d_c.as_secs_f64(),
            d_e.as_secs_f64(),
            last_speedup
        ));
    }

    let pass = last_speedup >= 10.0;
    println!(
        "\n  speedup at the largest size: {last_speedup:.1}x  \
         (acceptance bar: >= 10x: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"experiment\": \"E17\",\n  \"base\": {base},\n  \"family\": \"chain \
         quantifier-free\",\n  \"points\": [\n{}\n  ],\n  \"largest_speedup\": \
         {last_speedup:.2},\n  \"bar_10x\": {pass}\n}}\n",
        rows.join(",\n")
    );
    match std::fs::write("BENCH_count.json", &json) {
        Ok(()) => println!("  wrote BENCH_count.json"),
        Err(e) => println!("  could not write BENCH_count.json: {e}"),
    }
}

// --------------------------------------------------------------- rewrite --

/// E18: answering queries from views — the `PQA8xx` containment pass lets
/// the service serve an alpha-renamed triangle query straight from a
/// subscribed view's materialization (`view-scan`: containment match +
/// projection copy) instead of re-joining. The triangle is the paper's
/// canonical cyclic shape: cold evaluation pays the width-2 hypertree
/// engine's Θ(n²) bag materialization on every request, the view service
/// copies the (small) answer column. Both services run with the result
/// cache off, so every repeat pays its honest path. Answers are checked
/// byte-identical before and after a mutation batch. Acceptance bar:
/// >= 10x at the largest size, recorded in `BENCH_rewrite.json`.
fn rewrite_exp() {
    use pq_data::tuple;
    use pq_service::{QueryService, RequestLimits, ServiceConfig};

    header("pq-analyze/pq-service — answering queries from views (E18)");

    let limits = RequestLimits::default();
    let service = |plan: usize| {
        QueryService::new(ServiceConfig {
            workers: 2,
            plan_cache_capacity: plan,
            result_cache_capacity: 0,
            ..ServiceConfig::default()
        })
    };

    println!("\n[triangle] G(x) :- E(x, y), E(y, z), E(z, x), alpha-renamed view");
    println!(
        "  {:>8} {:>10} {:>12} {:>12} {:>9}",
        "tuples", "answers", "view-scan", "cold", "speedup"
    );

    let mut rows_json = Vec::new();
    let mut last_speedup = 0.0f64;
    for n_tuples in [600usize, 1200, 2400] {
        let db = workloads::triangle_database(n_tuples, (n_tuples as i64) / 4, 29);
        let query_src = "G(x) :- E(x, y), E(y, z), E(z, x).";
        // The same shape under fresh variables and another head name: the
        // containment pass must recognize the equivalence (PQA801).
        let view_src = "V(a) :- E(a, b), E(b, c), E(c, a).";

        let cold_svc = service(0);
        cold_svc.load_database("d", db.clone()).unwrap();
        let cold_resp = cold_svc.query("d", query_src, limits).unwrap();
        let cold = time_min(3, || {
            cold_svc.query("d", query_src, limits).unwrap();
        });

        let view_svc = service(256);
        view_svc.load_database("d", db).unwrap();
        let sub = view_svc.subscribe("d", view_src).unwrap();
        let resp = view_svc.query("d", query_src, limits).unwrap();
        assert_eq!(resp.engine, "view-scan", "query not answered from the view");
        assert_eq!(*resp.rows, *cold_resp.rows, "view-scan != cold evaluation");
        let viewed = time_min(10, || {
            assert_eq!(
                view_svc.query("d", query_src, limits).unwrap().engine,
                "view-scan"
            );
        });

        // Currency across mutations: the ack waits for maintenance, so the
        // next view-scan already reflects the batch — and still agrees with
        // cold evaluation byte for byte.
        let batch = vec![tuple![0, 1], tuple![1, 0]];
        view_svc.insert_rows("d", "E", batch.clone()).unwrap();
        cold_svc.insert_rows("d", "E", batch).unwrap();
        let after_view = view_svc.query("d", query_src, limits).unwrap();
        let after_cold = cold_svc.query("d", query_src, limits).unwrap();
        assert_eq!(after_view.engine, "view-scan");
        assert_eq!(*after_view.rows, *after_cold.rows, "stale view answer");

        let stats = view_svc.stats();
        assert!(
            stats.view_answered_queries >= 2,
            "STATS never counted the view path"
        );

        last_speedup = cold.as_secs_f64() / viewed.as_secs_f64().max(1e-9);
        println!(
            "  {:>8} {:>10} {:>12} {:>12} {:>8.1}x",
            n_tuples,
            cold_resp.rows.len(),
            fmt_duration(viewed),
            fmt_duration(cold),
            last_speedup
        );
        rows_json.push(format!(
            "        {{\"tuples\": {n_tuples}, \"answers\": {}, \"view_secs\": {:.6}, \
             \"cold_secs\": {:.6}, \"speedup\": {:.2}}}",
            cold_resp.rows.len(),
            viewed.as_secs_f64(),
            cold.as_secs_f64(),
            last_speedup
        ));

        view_svc.unsubscribe(sub.id);
        view_svc.shutdown();
        cold_svc.shutdown();
    }

    let pass = last_speedup >= 10.0;
    println!(
        "\n  speedup at the largest size: {last_speedup:.1}x  \
         (acceptance bar: >= 10x: {})",
        if pass { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"experiment\": \"E18\",\n  \"family\": \"chain alpha-renamed \
         view\",\n  \"points\": [\n{}\n  ],\n  \"largest_speedup\": \
         {last_speedup:.2},\n  \"bar_10x\": {pass}\n}}\n",
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_rewrite.json", &json) {
        Ok(()) => println!("  wrote BENCH_rewrite.json"),
        Err(e) => println!("  could not write BENCH_rewrite.json: {e}"),
    }
}
