//! Parameterized workload families, one per experiment (DESIGN.md §3).

use pq_data::{tuple, Database};
use pq_query::{parse_cq, ConjunctiveQuery, DatalogProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E2: a clique instance `(d, Q_k)` over a `G(n, p)` random graph.
pub fn clique_instance(n: usize, p: f64, k: usize, seed: u64) -> (Database, ConjunctiveQuery) {
    let g = pq_wtheory::graphs::random_graph(n, p, seed);
    pq_wtheory::reductions::clique_to_cq::reduce(&g, k)
}

/// E5/E6: a chain database `R1(x0,x1), R2(x1,x2), …` with `n_tuples` rows
/// per relation over a value domain of size `n_vals`.
pub fn chain_database(len: usize, n_tuples: usize, n_vals: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..len {
        let rows =
            (0..n_tuples).map(|_| tuple![rng.gen_range(0..n_vals), rng.gen_range(0..n_vals)]);
        db.add_table(
            format!("R{i}"),
            [format!("a{i}"), format!("a{}", i + 1)],
            rows,
        )
        .unwrap();
    }
    db
}

/// E6: the pure acyclic chain query of length `len` returning the
/// endpoints.
pub fn chain_query(len: usize) -> ConjunctiveQuery {
    let mut body = String::new();
    for i in 0..len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("R{i}(x{i}, x{})", i + 1));
    }
    parse_cq(&format!("G(x0, x{len}) :- {body}.")).unwrap()
}

/// E17: the chain query of length `len` with a **quantifier-free** head —
/// every variable is kept, so the answer set is the full set of length-`len`
/// walks. On dense chains it grows exponentially with `len` while the
/// counting sweep stays linear in the input.
pub fn chain_full_query(len: usize) -> ConjunctiveQuery {
    let mut body = String::new();
    for i in 0..len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("R{i}(x{i}, x{})", i + 1));
    }
    let head: Vec<String> = (0..=len).map(|i| format!("x{i}")).collect();
    parse_cq(&format!("G({}) :- {body}.", head.join(", "))).unwrap()
}

/// E17: a chain database whose every relation is the complete `base x base`
/// table over `0..base` — the quantifier-free chain query then has exactly
/// `base^(len+1)` answers, an answer set that doubles-and-more with every
/// extra atom while the instance itself grows by only `base²` tuples.
pub fn complete_chain_database(len: usize, base: i64) -> Database {
    let mut db = Database::new();
    for i in 0..len {
        let rows = (0..base).flat_map(|a| (0..base).map(move |b| tuple![a, b]));
        db.add_table(
            format!("R{i}"),
            [format!("a{i}"), format!("a{}", i + 1)],
            rows,
        )
        .unwrap();
    }
    db
}

/// E5: the chain query with *endpoint inequalities* — every prefix variable
/// `x0..xj` (j = `neq_span`) pairwise-distinct from the final variable,
/// giving `k = |V1|` that grows with `neq_span` while the hypergraph stays
/// an acyclic chain.
pub fn chain_neq_query(len: usize, neq_span: usize) -> ConjunctiveQuery {
    assert!(neq_span < len, "span must leave non-co-occurring pairs");
    let mut body = String::new();
    for i in 0..len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("R{i}(x{i}, x{})", i + 1));
    }
    // x_i ≠ x_{i + 2 + j} pairs: never co-occurring → all in I1.
    let mut neqs = Vec::new();
    for i in 0..neq_span {
        neqs.push(format!("x{i} != x{}", i + 2));
    }
    let q = format!("G(x0, x{len}) :- {body}, {}.", neqs.join(", "));
    parse_cq(&q).unwrap()
}

/// E5/E9: the university database of the students-outside-department
/// example, sized by student count.
pub fn university_database(n_students: usize, n_courses: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let depts = ["cs", "math", "bio", "chem", "phys"];
    let mut db = Database::new();
    db.add_table(
        "CD",
        ["course", "dept"],
        (0..n_courses).map(|c| tuple![format!("c{c}"), depts[rng.gen_range(0..depts.len())]]),
    )
    .unwrap();
    let mut sd = Vec::new();
    let mut sc = Vec::new();
    for s in 0..n_students {
        sd.push(tuple![
            format!("s{s}"),
            depts[rng.gen_range(0..depts.len())]
        ]);
        for _ in 0..rng.gen_range(1..=4) {
            sc.push(tuple![
                format!("s{s}"),
                format!("c{}", rng.gen_range(0..n_courses))
            ]);
        }
    }
    db.add_table("SD", ["student", "dept"], sd).unwrap();
    db.add_table("SC", ["student", "course"], sc).unwrap();
    db
}

/// E16: the pure cyclic chain `R0(x0,x1), …, R{len-1}(x{len-1},x0)`. A
/// length-`len` cycle is the canonical bounded-width family: cyclic (GYO
/// gets stuck immediately) but hypertree width exactly 2, so the hypertree
/// engine evaluates it in polynomial time while the naive engine pays
/// `n^{len}` backtracking.
pub fn cycle_query(len: usize) -> ConjunctiveQuery {
    assert!(len >= 3, "shorter cycles are not cyclic hypergraphs");
    let mut body = String::new();
    for i in 0..len {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&format!("R{i}(x{i}, x{})", (i + 1) % len));
    }
    parse_cq(&format!("G(x0) :- {body}.")).unwrap()
}

/// E16: the matching database — `len` binary relations with `n_tuples`
/// random rows each over a value domain of size `n_vals`.
pub fn cycle_database(len: usize, n_tuples: usize, n_vals: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..len {
        let rows =
            (0..n_tuples).map(|_| tuple![rng.gen_range(0..n_vals), rng.gen_range(0..n_vals)]);
        db.add_table(
            format!("R{i}"),
            [format!("a{i}"), format!("a{}", (i + 1) % len)],
            rows,
        )
        .unwrap();
    }
    db
}

/// E16: the canonical width-2 cyclic query — the triangle.
pub fn triangle_query() -> ConjunctiveQuery {
    parse_cq("G(x) :- E(x, y), E(y, z), E(z, x).").unwrap()
}

/// E16: a random edge relation for [`triangle_query`]: `n_tuples` rows over
/// a value domain of size `n_vals`.
pub fn triangle_database(n_tuples: usize, n_vals: i64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.add_table(
        "E",
        ["a", "b"],
        (0..n_tuples).map(|_| tuple![rng.gen_range(0..n_vals), rng.gen_range(0..n_vals)]),
    )
    .unwrap();
    db
}

/// E9: the students-outside-department query (Section 5).
pub fn outside_department_query() -> ConjunctiveQuery {
    parse_cq("G(s) :- SD(s, d), SC(s, c), CD(c, d2), d != d2.").unwrap()
}

/// E8: a random DAG edge relation for transitive closure.
pub fn dag_database(n: usize, avg_out: f64, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool((avg_out / n as f64).min(1.0)) {
                rows.push(tuple![a, b]);
            }
        }
    }
    let mut db = Database::new();
    db.add_table("E", ["a", "b"], rows).unwrap();
    db
}

/// E8: the transitive-closure program.
pub fn tc_program() -> DatalogProgram {
    pq_query::parse_datalog(
        "T(x, y) :- E(x, y).\n\
         T(x, z) :- E(x, y), T(y, z).\n\
         ?- T",
    )
    .unwrap()
}

/// E7: a Theorem 3 comparison instance over a `G(n, p)` random graph.
pub fn comparison_instance(n: usize, p: f64, k: usize, seed: u64) -> (Database, ConjunctiveQuery) {
    let g = pq_wtheory::graphs::random_graph(n, p, seed);
    pq_wtheory::reductions::clique_to_comparisons::reduce(&g, k)
}

/// E8 (Vardi \[16\]): a Datalog family whose IDB arity grows with `k`. The
/// program derives every `k`-tuple over the active domain reachable through
/// `D`, so the fixpoint materializes `n^k` tuples — the query size is
/// polynomial in `k` but the evaluation provably needs `n^k` work, which is
/// Section 4's point that for recursive languages the parameter is
/// *provably* in the exponent.
pub fn vardi_program(k: usize) -> DatalogProgram {
    assert!(k >= 1);
    let vars: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();
    let head = format!("W({})", vars.join(", "));
    let body: Vec<String> = vars.iter().map(|v| format!("D({v})")).collect();
    let src = format!("{head} :- {body}.\n?- W", body = body.join(", "));
    pq_query::parse_datalog(&src).unwrap()
}

/// The unary domain relation for [`vardi_program`].
pub fn vardi_database(n: i64) -> Database {
    let mut db = Database::new();
    db.add_table("D", ["v"], (0..n).map(|i| tuple![i])).unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_neq_query_has_only_i1_inequalities() {
        let q = chain_neq_query(5, 3);
        assert!(q.is_acyclic());
        let hg = q.hypergraph();
        let part = pq_engine::colorcoding::NeqPartition::build(&q, &hg);
        assert_eq!(part.i1.len(), 3);
        assert!(part.i2_var_var.is_empty());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(chain_database(2, 10, 5, 1), chain_database(2, 10, 5, 1));
        assert_eq!(
            university_database(10, 8, 2).size(),
            university_database(10, 8, 2).size()
        );
    }

    #[test]
    fn vardi_family_materializes_n_to_the_k() {
        for k in 1..=3usize {
            let p = vardi_program(k);
            assert!(p.validate().is_ok());
            let db = vardi_database(4);
            let out = pq_engine::datalog_eval::evaluate(
                &p,
                &db,
                pq_engine::datalog_eval::Strategy::SemiNaive,
            )
            .unwrap();
            assert_eq!(out.len(), 4usize.pow(k as u32));
        }
    }

    #[test]
    fn cycle_family_is_cyclic_but_width_two() {
        let q = cycle_query(6);
        assert!(!q.is_acyclic());
        let d = pq_hypergraph::decompose(&q.hypergraph(), 3).expect("within limit");
        assert_eq!(d.width(), 2);
        let db = cycle_database(6, 20, 8, 3);
        let naive = pq_engine::naive::evaluate(&q, &db).unwrap();
        let fast = pq_engine::hypertree::evaluate(&q, &db).unwrap();
        assert_eq!(naive, fast);
    }

    #[test]
    fn chain_query_matches_database_schema() {
        let db = chain_database(3, 10, 4, 7);
        let q = chain_query(3);
        assert!(pq_engine::naive::evaluate(&q, &db).is_ok());
    }
}
