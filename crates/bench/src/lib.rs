//! Shared workload generators and measurement helpers for the experiment
//! harness (DESIGN.md S21): every bench target and the `repro` binary draw
//! their instances from here so that numbers are comparable across runs.

#![warn(missing_docs)]

pub mod measure;
pub mod workloads;
