//! The diagnostics model: stable lint codes, severities, and structural
//! spans.
//!
//! The conjunctive-query AST carries no source offsets, so a span is a
//! *structural* reference — "atom #2", "≠ #0" — which survives
//! reformatting and is exactly what the rewrite passes need to name the
//! term they acted on.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a structural fact worth surfacing (classification,
    /// parameter report).
    Info,
    /// Suspicious but not wrong: the query works, just not the way it was
    /// probably meant (redundant atoms, trivially true constraints).
    Warn,
    /// The query is rejected by validation or provably broken.
    Error,
}

impl Severity {
    /// Lowercase stable name, used on the wire and in golden files.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The stable lint codes. Numbering is grouped by pass: `PQA0xx`
/// safety/range-restriction, `PQA1xx` contradiction detection, `PQA2xx`
/// schema checks, `PQA3xx` core minimization, `PQA4xx` structural
/// classification, `PQA5xx` whole-program Datalog analysis, `PQA6xx`
/// hypertree-width analysis, `PQA7xx` counting tractability (Chen–Mengel),
/// `PQA8xx` containment/equivalence against registered views
/// (Chandra–Merlin).
/// Codes are append-only: a released code never
/// changes meaning (golden files and operator tooling depend on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// `PQA001` — the body has no relational atoms.
    EmptyBody,
    /// `PQA002` — a head variable is not bound by any relational atom.
    UnsafeHeadVariable,
    /// `PQA003` — a `≠`/comparison variable is not bound by any relational
    /// atom.
    UnsafeConstraintVariable,
    /// `PQA004` — a constraint relates two constants (validation rejects
    /// it as written; such atoms normally only arise from head binding).
    ConstantConstraint,
    /// `PQA101` — a `≠` atom relates a term to itself: provably empty.
    ReflexiveNeq,
    /// `PQA102` — the comparison system has a strict cycle (Klug's
    /// criterion): provably empty.
    InconsistentComparisons,
    /// `PQA103` — the comparison system forces the two sides of a `≠`
    /// atom equal: provably empty.
    NeqForcedEqual,
    /// `PQA104` — a `≠` atom relates two distinct constants: always true,
    /// the atom is dead weight.
    TrivialNeq,
    /// `PQA105` — a weak comparison cycle forces two terms equal (the
    /// collapse opportunity Theorem 3 preprocessing exploits).
    ImpliedEquality,
    /// `PQA201` — an atom names a relation absent from the database.
    UnknownRelation,
    /// `PQA202` — an atom's arity differs from the stored relation's.
    ArityMismatch,
    /// `PQA301` — core minimization removed this atom (Chandra–Merlin:
    /// the query is equivalent without it).
    RedundantAtom,
    /// `PQA302` — core minimization was not attempted (impure query or
    /// atom count above the configured limit).
    MinimizationSkipped,
    /// `PQA401` — the relational hypergraph is cyclic; the message names
    /// the GYO-irreducible atoms (the concrete cycle witness).
    CyclicQuery,
    /// `PQA402` — the parameter report: `q`, `v`, arity, constraint
    /// counts, and which Fig. 1 cell / engine applies.
    ParameterReport,
    /// `PQA501` — a dead rule: it cannot contribute to the goal relation
    /// (its head is unreachable from the goal, or a body IDB atom can never
    /// derive a tuple). The rewrite prunes it.
    DeadRule,
    /// `PQA502` — an unsafe rule: a head variable is not bound by the
    /// rule's body (`datalog_eval` rejects the same condition with
    /// [`pq_query::QueryError::UnsafeRule`]).
    UnsafeRule,
    /// `PQA503` — a relation is used with inconsistent arities across the
    /// program's rules.
    RuleArityMismatch,
    /// `PQA504` — the goal relation has no defining rule.
    UndefinedGoal,
    /// `PQA505` — an IDB relation that can never derive a tuple on any
    /// database: every derivation path bottoms out in another underivable
    /// IDB instead of the EDB.
    UnderivableRelation,
    /// `PQA506` — a recursive SCC of the predicate dependency graph, with
    /// its linear/nonlinear classification.
    RecursiveComponent,
    /// `PQA510` — the program parameter report: rule counts before/after
    /// pruning, SCC count, recursion class, arity and variable bounds.
    ProgramReport,
    /// `PQA601` — the hypertree width of a cyclic query (exact, or the
    /// heuristic's verified upper bound) and the decomposition shape;
    /// width ≤ the configured limit means polynomial evaluation by the
    /// hypertree engine (Gottlob–Leone–Scarcello).
    HypertreeWidth,
    /// `PQA602` — no hypertree decomposition within the configured width
    /// limit was found; the naive engine applies.
    WidthAboveLimit,
    /// `PQA701` — counting-tractable: acyclic or bounded-width with a
    /// quantifier-free head, so `|Q(d)|` equals the number of satisfying
    /// assignments and the semiring sweep counts it in time polynomial in
    /// the input alone (Chen–Mengel), however large the answer set.
    CountingTractable,
    /// `PQA702` — projected head: counting is `#W[1]`-hard in general, so
    /// the sweep tracks counts per head-variable projection — cost bounded
    /// by input × distinct projections, still far below enumeration.
    CountingPerProjection,
    /// `PQA703` — counting is provably as hard as enumeration here
    /// (≠/comparison atoms, or no decomposition within the width limit):
    /// `@count` falls back to enumerate-then-count.
    CountingFallback,
    /// `PQA801` — the query is equivalent (Chandra–Merlin homomorphisms
    /// both ways) to a registered view: its answer *is* the maintained
    /// view relation, no evaluation needed.
    ViewEquivalent,
    /// `PQA802` — the query is contained in a registered view and
    /// answerable by a selection/projection over the view's head columns:
    /// an `O(|view|)` scan replaces evaluation.
    ViewContained,
    /// `PQA803` — the equivalence-class canonical core: the alpha-renamed
    /// minimized core, usable as a semantic cache key (the full core, not
    /// a hash, so collisions cannot cross-serve answers).
    EquivalenceClassCore,
    /// `PQA804` — the containment search was aborted at the atom limit
    /// (homomorphism search is NP-complete in query size); view answering
    /// falls back to normal evaluation.
    ContainmentAborted,
}

impl LintCode {
    /// The stable `PQAnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::EmptyBody => "PQA001",
            LintCode::UnsafeHeadVariable => "PQA002",
            LintCode::UnsafeConstraintVariable => "PQA003",
            LintCode::ConstantConstraint => "PQA004",
            LintCode::ReflexiveNeq => "PQA101",
            LintCode::InconsistentComparisons => "PQA102",
            LintCode::NeqForcedEqual => "PQA103",
            LintCode::TrivialNeq => "PQA104",
            LintCode::ImpliedEquality => "PQA105",
            LintCode::UnknownRelation => "PQA201",
            LintCode::ArityMismatch => "PQA202",
            LintCode::RedundantAtom => "PQA301",
            LintCode::MinimizationSkipped => "PQA302",
            LintCode::CyclicQuery => "PQA401",
            LintCode::ParameterReport => "PQA402",
            LintCode::DeadRule => "PQA501",
            LintCode::UnsafeRule => "PQA502",
            LintCode::RuleArityMismatch => "PQA503",
            LintCode::UndefinedGoal => "PQA504",
            LintCode::UnderivableRelation => "PQA505",
            LintCode::RecursiveComponent => "PQA506",
            LintCode::ProgramReport => "PQA510",
            LintCode::HypertreeWidth => "PQA601",
            LintCode::WidthAboveLimit => "PQA602",
            LintCode::CountingTractable => "PQA701",
            LintCode::CountingPerProjection => "PQA702",
            LintCode::CountingFallback => "PQA703",
            LintCode::ViewEquivalent => "PQA801",
            LintCode::ViewContained => "PQA802",
            LintCode::EquivalenceClassCore => "PQA803",
            LintCode::ContainmentAborted => "PQA804",
        }
    }

    /// The severity this code is always reported at.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::EmptyBody
            | LintCode::UnsafeHeadVariable
            | LintCode::UnsafeConstraintVariable
            | LintCode::ConstantConstraint
            | LintCode::ReflexiveNeq
            | LintCode::InconsistentComparisons
            | LintCode::NeqForcedEqual
            | LintCode::UnknownRelation
            | LintCode::ArityMismatch
            | LintCode::UnsafeRule
            | LintCode::RuleArityMismatch
            | LintCode::UndefinedGoal => Severity::Error,
            LintCode::TrivialNeq
            | LintCode::RedundantAtom
            | LintCode::DeadRule
            | LintCode::UnderivableRelation
            | LintCode::CountingFallback
            | LintCode::ContainmentAborted => Severity::Warn,
            LintCode::ImpliedEquality
            | LintCode::MinimizationSkipped
            | LintCode::CyclicQuery
            | LintCode::ParameterReport
            | LintCode::RecursiveComponent
            | LintCode::ProgramReport
            | LintCode::HypertreeWidth
            | LintCode::WidthAboveLimit
            | LintCode::CountingTractable
            | LintCode::CountingPerProjection
            | LintCode::ViewEquivalent
            | LintCode::ViewContained
            | LintCode::EquivalenceClassCore => Severity::Info,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A structural span: which piece of the query a diagnostic points at.
/// Indices refer to the query the analyzer was handed (atom indices in
/// minimization diagnostics are positions in the *original* atom list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// The query as a whole.
    Query,
    /// The head atom.
    Head,
    /// Relational atom `i` (0-based).
    Atom(usize),
    /// `≠` atom `i` (0-based).
    Neq(usize),
    /// Comparison atom `i` (0-based).
    Comparison(usize),
    /// A Datalog program as a whole.
    Program,
    /// Datalog rule `i` (0-based, in program order). Program diagnostics —
    /// including minimization findings re-anchored from atom spans — point
    /// at the rule they concern.
    Rule(usize),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Query => write!(f, "query"),
            Span::Head => write!(f, "head"),
            Span::Atom(i) => write!(f, "atom #{i}"),
            Span::Neq(i) => write!(f, "neq #{i}"),
            Span::Comparison(i) => write!(f, "cmp #{i}"),
            Span::Program => write!(f, "program"),
            Span::Rule(i) => write!(f, "rule #{i}"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Severity (always [`LintCode::severity`] of `code`).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic; severity comes from the code.
    pub fn new(code: LintCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.code, self.severity, self.span, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            LintCode::EmptyBody,
            LintCode::UnsafeHeadVariable,
            LintCode::UnsafeConstraintVariable,
            LintCode::ConstantConstraint,
            LintCode::ReflexiveNeq,
            LintCode::InconsistentComparisons,
            LintCode::NeqForcedEqual,
            LintCode::TrivialNeq,
            LintCode::ImpliedEquality,
            LintCode::UnknownRelation,
            LintCode::ArityMismatch,
            LintCode::RedundantAtom,
            LintCode::MinimizationSkipped,
            LintCode::CyclicQuery,
            LintCode::ParameterReport,
            LintCode::DeadRule,
            LintCode::UnsafeRule,
            LintCode::RuleArityMismatch,
            LintCode::UndefinedGoal,
            LintCode::UnderivableRelation,
            LintCode::RecursiveComponent,
            LintCode::ProgramReport,
            LintCode::HypertreeWidth,
            LintCode::WidthAboveLimit,
            LintCode::CountingTractable,
            LintCode::CountingPerProjection,
            LintCode::CountingFallback,
            LintCode::ViewEquivalent,
            LintCode::ViewContained,
            LintCode::EquivalenceClassCore,
            LintCode::ContainmentAborted,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "codes must be unique");
        assert!(codes.iter().all(|c| c.starts_with("PQA")));
    }

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic::new(
            LintCode::RedundantAtom,
            Span::Atom(2),
            "E(x, z) is redundant",
        );
        assert_eq!(
            d.to_string(),
            "PQA301 [warn] at atom #2: E(x, z) is redundant"
        );
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }
}
