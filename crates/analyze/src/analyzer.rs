//! The multi-pass analyzer driver.
//!
//! Pass order matters and is part of the contract:
//!
//! 1. **safety/range-restriction** — mirrors
//!    [`ConjunctiveQuery::validate`] as diagnostics (head or constraint
//!    variables not bound by a relational atom, empty body, constant-only
//!    constraints);
//! 2. **contradiction detection** — database-independent emptiness:
//!    reflexive `≠`, an inconsistent comparison system (Klug's strict-cycle
//!    criterion), a `≠` whose sides the comparisons force equal;
//! 3. **core minimization** — the Chandra–Merlin core via
//!    `pq_engine::containment`, dropping redundant atoms so `q` and `v`
//!    shrink before any engine runs;
//! 4. **structural classification** — GYO acyclicity with a concrete cycle
//!    witness plus the Fig. 1 parameter report, computed on the *minimized*
//!    query (the one the planner will execute);
//! 5. **counting tractability** (opt-in via [`AnalyzeOptions::counting`]) —
//!    the Chen–Mengel `PQA7xx` classification of whether `@count` can run
//!    without enumeration;
//! 6. **containment against registered views** (opt-in via
//!    [`AnalyzeOptions::views`]) — the `PQA8xx` pass: Chandra–Merlin
//!    equivalence/containment of the minimized core against every
//!    registered view, yielding a view-scan rewriting and the
//!    equivalence-class semantic cache key.
//!
//! Schema checks ([`schema_diagnostics`]) are separate by design: the
//! query-only analysis is cacheable per query, while schema diagnostics
//! depend on whatever database the query is aimed at right now.

use pq_data::Database;
use pq_engine::containment;
use pq_query::ConjunctiveQuery;

use crate::containment::{containment_pass, ViewMatch};
use crate::diagnostics::{Diagnostic, LintCode, Severity, Span};
use crate::report::{structure_with_width_limit, StructureReport};

/// Analyzer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Attempt Chandra–Merlin core minimization (pure CQs only).
    pub minimize: bool,
    /// Skip minimization above this relational-atom count. Equivalence
    /// checks are CQ evaluations on the canonical database (NP-hard in
    /// general), so the pass is bounded by construction.
    pub minimize_atom_limit: usize,
    /// Largest hypertree width the decomposition search targets (and the
    /// widest decomposition the planner routes to the hypertree engine).
    /// Bounded like `minimize_atom_limit`: deciding width ≤ k is
    /// exponential in k, so the exact search is gated by this knob.
    pub width_limit: usize,
    /// Run the counting-tractability pass (`PQA7xx`, Chen–Mengel):
    /// classify whether `@count` can run without enumeration. Off by
    /// default — the pass only matters when a count was requested.
    pub counting: bool,
    /// Registered views for the containment pass (`PQA8xx`): name and
    /// defining query, in registration order (first match wins). Empty by
    /// default — with no views the pass does not run and the analysis is
    /// unchanged.
    pub views: Vec<(String, ConjunctiveQuery)>,
    /// Skip the containment search when either side of a query/view pair
    /// exceeds this relational-atom count (`PQA804`). Bounded like
    /// `minimize_atom_limit` and for the same reason: containment checks
    /// are CQ evaluations on canonical databases.
    pub containment_atom_limit: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            minimize: true,
            minimize_atom_limit: 8,
            width_limit: pq_hypergraph::DEFAULT_WIDTH_LIMIT,
            counting: false,
            views: Vec::new(),
            containment_atom_limit: 8,
        }
    }
}

/// Why a query is provably empty on **every** database. Reserved for
/// database-independent contradictions: schema problems (unknown relation,
/// arity mismatch) are reported as error diagnostics but do *not* set this
/// verdict, because the engines treat them as evaluation errors, not empty
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmptyReason {
    /// A `≠` atom relates a term to itself.
    ReflexiveNeq,
    /// The comparison system admits no solution (strict cycle).
    InconsistentComparisons,
    /// The comparison system forces the two sides of a `≠` atom equal.
    NeqForcedEqual,
}

impl EmptyReason {
    /// Stable lowercase name for reports and the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            EmptyReason::ReflexiveNeq => "reflexive-neq",
            EmptyReason::InconsistentComparisons => "inconsistent-comparisons",
            EmptyReason::NeqForcedEqual => "neq-forced-equal",
        }
    }
}

impl std::fmt::Display for EmptyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The analyzer's complete output for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The minimized core, present only when it is strictly smaller than
    /// the input (evaluating it is equivalent — Chandra–Merlin).
    pub rewritten: Option<ConjunctiveQuery>,
    /// Set when the answer is empty on every database; evaluation can be
    /// skipped entirely.
    pub empty: Option<EmptyReason>,
    /// Structural report for the query the planner should execute (the
    /// minimized core when one exists, else the input).
    pub report: StructureReport,
    /// The `PQA803` equivalence-class key: the full canonical text of the
    /// minimized core. Present only when the containment pass ran (views
    /// were registered). Equal keys ⇒ alpha-equivalent queries — safe to
    /// share a cache entry, no hash-collision caveat.
    pub semantic_key: Option<String>,
    /// A registered view that answers the query (`PQA801`/`PQA802`), with
    /// the column projection to apply to its maintained relation.
    pub view_match: Option<ViewMatch>,
}

impl Analysis {
    /// Is the query provably empty on every database?
    pub fn provably_empty(&self) -> bool {
        self.empty.is_some()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The query evaluation should run: the minimized core when one
    /// exists, otherwise `original`.
    pub fn effective<'a>(&'a self, original: &'a ConjunctiveQuery) -> &'a ConjunctiveQuery {
        self.rewritten.as_ref().unwrap_or(original)
    }

    /// Deterministic line rendering, shared by `examples/analyze.rs`, the
    /// golden-corpus CI gate, and the wire protocol. Order: diagnostics in
    /// pass order, then the rewritten core (if any), then the verdict.
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self.diagnostics.iter().map(|d| d.to_string()).collect();
        if let Some(r) = &self.rewritten {
            out.push(format!("minimized: {r}"));
        }
        match self.empty {
            Some(reason) => out.push(format!("verdict: provably-empty ({reason})")),
            None => out.push("verdict: ok".to_string()),
        }
        out
    }
}

// ------------------------------------------------------------ pass 1 --

fn safety_pass(q: &ConjunctiveQuery, out: &mut Vec<Diagnostic>) {
    if q.atoms.is_empty() {
        out.push(Diagnostic::new(
            LintCode::EmptyBody,
            Span::Query,
            "the body has no relational atoms",
        ));
    }
    let body: std::collections::BTreeSet<&str> = q.atom_variables().into_iter().collect();
    for v in q.head_variables() {
        if !body.contains(v) {
            out.push(Diagnostic::new(
                LintCode::UnsafeHeadVariable,
                Span::Head,
                format!("head variable `{v}` is not bound by any relational atom"),
            ));
        }
    }
    for (i, n) in q.neqs.iter().enumerate() {
        if n.variables().is_empty() {
            out.push(Diagnostic::new(
                LintCode::ConstantConstraint,
                Span::Neq(i),
                format!("`{n}` relates two constants"),
            ));
            continue;
        }
        for v in n.variables() {
            if !body.contains(v) {
                out.push(Diagnostic::new(
                    LintCode::UnsafeConstraintVariable,
                    Span::Neq(i),
                    format!("variable `{v}` of `{n}` is not bound by any relational atom"),
                ));
            }
        }
    }
    for (i, c) in q.comparisons.iter().enumerate() {
        if c.variables().is_empty() {
            out.push(Diagnostic::new(
                LintCode::ConstantConstraint,
                Span::Comparison(i),
                format!("`{c}` relates two constants"),
            ));
            continue;
        }
        for v in c.variables() {
            if !body.contains(v) {
                out.push(Diagnostic::new(
                    LintCode::UnsafeConstraintVariable,
                    Span::Comparison(i),
                    format!("variable `{v}` of `{c}` is not bound by any relational atom"),
                ));
            }
        }
    }
}

// ------------------------------------------------------------ pass 2 --

fn contradiction_pass(q: &ConjunctiveQuery, out: &mut Vec<Diagnostic>) -> Option<EmptyReason> {
    let mut empty: Option<EmptyReason> = None;
    let flag = |e: EmptyReason, empty: &mut Option<EmptyReason>| {
        if empty.is_none() {
            *empty = Some(e);
        }
    };
    for (i, n) in q.neqs.iter().enumerate() {
        if n.is_reflexive() {
            out.push(Diagnostic::new(
                LintCode::ReflexiveNeq,
                Span::Neq(i),
                format!("`{n}` can never hold: the query is empty on every database"),
            ));
            flag(EmptyReason::ReflexiveNeq, &mut empty);
        } else if n.left.as_const().is_some() && n.right.as_const().is_some() {
            out.push(Diagnostic::new(
                LintCode::TrivialNeq,
                Span::Neq(i),
                format!("`{n}` relates distinct constants: always true, dead weight"),
            ));
        }
    }
    if !q.comparisons.is_empty() {
        let ca = pq_engine::comparisons::analyze(&q.comparisons);
        if !ca.consistent {
            out.push(Diagnostic::new(
                LintCode::InconsistentComparisons,
                Span::Query,
                "the comparison system has a strict cycle: the query is empty \
                 on every database (Klug's consistency criterion)",
            ));
            flag(EmptyReason::InconsistentComparisons, &mut empty);
        } else {
            for (a, b) in &ca.equalities {
                out.push(Diagnostic::new(
                    LintCode::ImpliedEquality,
                    Span::Query,
                    format!("the comparison system forces {a} = {b}"),
                ));
            }
            let rep = |t: &pq_query::Term| {
                ca.representative
                    .get(t)
                    .cloned()
                    .unwrap_or_else(|| t.clone())
            };
            for (i, n) in q.neqs.iter().enumerate() {
                if !n.is_reflexive() && rep(&n.left) == rep(&n.right) {
                    out.push(Diagnostic::new(
                        LintCode::NeqForcedEqual,
                        Span::Neq(i),
                        format!(
                            "the comparison system forces {} = {}, contradicting `{n}`: \
                             the query is empty on every database",
                            n.left, n.right
                        ),
                    ));
                    flag(EmptyReason::NeqForcedEqual, &mut empty);
                }
            }
        }
    }
    empty
}

// ------------------------------------------------------------ pass 3 --

fn minimize_pass(
    q: &ConjunctiveQuery,
    opts: &AnalyzeOptions,
    had_errors: bool,
    out: &mut Vec<Diagnostic>,
) -> Option<ConjunctiveQuery> {
    if !opts.minimize || q.atoms.len() < 2 || had_errors {
        return None;
    }
    if !q.is_pure() {
        out.push(Diagnostic::new(
            LintCode::MinimizationSkipped,
            Span::Query,
            "core minimization skipped: the Chandra–Merlin core is defined \
             for pure conjunctive queries (this query has ≠/comparison atoms)",
        ));
        return None;
    }
    if q.atoms.len() > opts.minimize_atom_limit {
        out.push(Diagnostic::new(
            LintCode::MinimizationSkipped,
            Span::Query,
            format!(
                "core minimization skipped: {} atoms exceeds the limit of {} \
                 (equivalence checks are CQ evaluations)",
                q.atoms.len(),
                opts.minimize_atom_limit
            ),
        ));
        return None;
    }
    // Pure + validated, so the trace cannot fail; treat an error as "no
    // rewrite" rather than poisoning the analysis.
    let Ok((core, removed)) = containment::minimize_trace(q) else {
        return None;
    };
    if removed.is_empty() {
        return None;
    }
    for &i in &removed {
        out.push(Diagnostic::new(
            LintCode::RedundantAtom,
            Span::Atom(i),
            format!(
                "`{}` is redundant: the query is equivalent without it \
                 (Chandra–Merlin core)",
                q.atoms[i]
            ),
        ));
    }
    Some(core)
}

// ------------------------------------------------------------ pass 4 --

fn structure_pass(
    report: &StructureReport,
    width_limit: usize,
    minimized: bool,
    out: &mut Vec<Diagnostic>,
) {
    let subject = if minimized {
        "the minimized query"
    } else {
        "the query"
    };
    if let Some(witness) = &report.cycle_witness {
        let list: Vec<String> = witness.iter().map(|i| format!("#{i}")).collect();
        out.push(Diagnostic::new(
            LintCode::CyclicQuery,
            Span::Query,
            format!(
                "{subject} is cyclic: GYO leaves atoms {} irreducible \
                 (no join tree exists; Theorem 1 applies)",
                list.join(", ")
            ),
        ));
        // The width pass (PQA6xx): cyclic is no longer the end of the
        // tractability story — report the hypertree width found by the
        // gated decomposition search.
        match (&report.decomposition, report.hypertree_width) {
            (Some(d), Some(w)) if w <= width_limit => out.push(Diagnostic::new(
                LintCode::HypertreeWidth,
                Span::Query,
                format!(
                    "hypertree width {w} ({}): {} — polynomial by bag \
                     evaluation (Gottlob–Leone–Scarcello)",
                    if report.width_exact {
                        "exact"
                    } else {
                        "heuristic upper bound"
                    },
                    d.shape()
                ),
            )),
            (Some(_), Some(w)) => out.push(Diagnostic::new(
                LintCode::WidthAboveLimit,
                Span::Query,
                format!(
                    "no hypertree decomposition within the width limit {width_limit} \
                     ({} upper bound {w}): naive evaluation applies",
                    if report.width_exact {
                        "exact width is the"
                    } else {
                        "heuristic"
                    },
                ),
            )),
            _ => {}
        }
    }
    let k = match report.color_parameter {
        Some(k) => format!(", k={k}"),
        None => String::new(),
    };
    out.push(Diagnostic::new(
        LintCode::ParameterReport,
        Span::Query,
        format!(
            "q={}, v={}, max arity={}, ≠ atoms={}, comparisons={}{k}; \
             Fig. 1 cell: {} — engine: {}",
            report.q,
            report.v,
            report.max_arity,
            report.neq_count,
            report.cmp_count,
            report.cell,
            report.engine_hint
        ),
    ));
}

// ------------------------------------------------------------ pass 5 --

/// The counting-tractability pass (`PQA7xx`), run on the query the planner
/// will execute. Chen–Mengel: with a quantifier-free head over an acyclic
/// (or bounded-width) body, `|Q(d)|` is the number of satisfying
/// assignments and the semiring sweep counts it in input-polynomial time;
/// with projection the sweep tracks counts per head projection; outside
/// the pure bounded-width fragment counting is as hard as enumeration and
/// `@count` degrades to enumerate-then-count.
fn counting_pass(
    q: &ConjunctiveQuery,
    report: &StructureReport,
    width_limit: usize,
    out: &mut Vec<Diagnostic>,
) {
    if !q.is_pure() {
        out.push(Diagnostic::new(
            LintCode::CountingFallback,
            Span::Query,
            "counting falls back to enumerate-then-count: ≠/comparison atoms \
             take the query outside the semiring counting engines",
        ));
        return;
    }
    let engine = if report.cycle_witness.is_none() {
        Some("count-yannakakis")
    } else {
        match (&report.decomposition, report.hypertree_width) {
            (Some(_), Some(w)) if w <= width_limit => Some("count-hypertree"),
            _ => None,
        }
    };
    let Some(engine) = engine else {
        out.push(Diagnostic::new(
            LintCode::CountingFallback,
            Span::Query,
            format!(
                "counting falls back to enumerate-then-count: no hypertree \
                 decomposition within the width limit {width_limit}, so \
                 counting is as hard as enumeration here"
            ),
        ));
        return;
    };
    if pq_count::quantifier_free(q) {
        out.push(Diagnostic::new(
            LintCode::CountingTractable,
            Span::Query,
            format!(
                "counting-tractable: quantifier-free head, so |Q(d)| = \
                 #assignments and the semiring sweep counts without \
                 enumeration in input-polynomial time (Chen–Mengel) — \
                 engine: {engine}"
            ),
        ));
    } else {
        let head = q.head_variables().len();
        out.push(Diagnostic::new(
            LintCode::CountingPerProjection,
            Span::Query,
            format!(
                "projected head ({head} of {} body variables exported): \
                 counts tracked per head-variable projection (#W[1]-hard in \
                 general; cost input × distinct projections) — engine: \
                 {engine}",
                q.atom_variables().len()
            ),
        ));
    }
}

// ------------------------------------------------------------ driver --

/// Run the full query-only analysis (passes 1–4). Deterministic: same
/// query and options, same output.
pub fn analyze(q: &ConjunctiveQuery, opts: &AnalyzeOptions) -> Analysis {
    let mut diagnostics = Vec::new();
    safety_pass(q, &mut diagnostics);
    let empty = contradiction_pass(q, &mut diagnostics);
    let had_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let rewritten = if empty.is_none() {
        minimize_pass(q, opts, had_errors, &mut diagnostics)
    } else {
        None
    };
    let report = structure_with_width_limit(rewritten.as_ref().unwrap_or(q), opts.width_limit);
    structure_pass(
        &report,
        opts.width_limit,
        rewritten.is_some(),
        &mut diagnostics,
    );
    if opts.counting {
        counting_pass(
            rewritten.as_ref().unwrap_or(q),
            &report,
            opts.width_limit,
            &mut diagnostics,
        );
    }
    // The containment pass (PQA8xx) runs last, on the query the planner
    // will execute, and only when views are registered and the query is
    // evaluable at all (no errors, not provably empty).
    let (semantic_key, view_match) = if !opts.views.is_empty() && !had_errors && empty.is_none() {
        containment_pass(
            rewritten.as_ref().unwrap_or(q),
            &opts.views,
            opts.containment_atom_limit,
            &mut diagnostics,
        )
    } else {
        (None, None)
    };
    Analysis {
        diagnostics,
        rewritten,
        empty,
        report,
        semantic_key,
        view_match,
    }
}

/// The schema pass: check `q`'s relational atoms against an actual
/// database. Unknown relations and arity mismatches are **errors** (every
/// engine fails on them) but deliberately do not set the provably-empty
/// verdict — that verdict promises "naive evaluation returns zero tuples",
/// and these queries do not evaluate at all.
pub fn schema_diagnostics(q: &ConjunctiveQuery, db: &Database) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, a) in q.atoms.iter().enumerate() {
        match db.relation(&a.relation) {
            Err(_) => out.push(Diagnostic::new(
                LintCode::UnknownRelation,
                Span::Atom(i),
                format!(
                    "relation `{}` is not in the database (evaluation fails; \
                     under a closed world the answer would be empty)",
                    a.relation
                ),
            )),
            Ok(rel) if rel.arity() != a.arity() => out.push(Diagnostic::new(
                LintCode::ArityMismatch,
                Span::Atom(i),
                format!(
                    "`{}` has arity {} but relation `{}` stores arity {}",
                    a,
                    a.arity(),
                    a.relation,
                    rel.arity()
                ),
            )),
            Ok(_) => {}
        }
    }
    out
}

/// [`analyze`] plus the schema pass against `db`, appended in atom order.
pub fn analyze_with_db(q: &ConjunctiveQuery, db: &Database, opts: &AnalyzeOptions) -> Analysis {
    let mut a = analyze(q, opts);
    a.diagnostics.extend(schema_diagnostics(q, db));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FigCell;
    use pq_data::tuple;
    use pq_query::{parse_cq, QueryMetrics};

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_query_reports_parameters_only() {
        let q = parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert_eq!(codes(&a), vec!["PQA402"]);
        assert!(!a.provably_empty());
        assert!(a.rewritten.is_none());
        assert_eq!(a.report.cell, FigCell::AcyclicPure);
    }

    #[test]
    fn safety_pass_mirrors_validation() {
        let q = parse_cq("G(z) :- R(x, y).").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert!(codes(&a).contains(&"PQA002"));
        assert!(a.has_errors());

        let q = parse_cq("G :- R(x, y), x != w.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert!(codes(&a).contains(&"PQA003"));
    }

    #[test]
    fn reflexive_neq_is_provably_empty() {
        let q = parse_cq("G(x) :- R(x, y), x != x.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert_eq!(a.empty, Some(EmptyReason::ReflexiveNeq));
        assert!(codes(&a).contains(&"PQA101"));
    }

    #[test]
    fn inconsistent_comparisons_are_provably_empty() {
        let q = parse_cq("G(x) :- R(x, y), x < y, y < x.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert_eq!(a.empty, Some(EmptyReason::InconsistentComparisons));
        assert_eq!(a.report.cell, FigCell::InconsistentComparisons);
    }

    #[test]
    fn comparisons_forcing_a_neq_equal_are_provably_empty() {
        let q = parse_cq("G :- R(x, y), x != y, x <= y, y <= x.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert_eq!(a.empty, Some(EmptyReason::NeqForcedEqual));
        assert!(codes(&a).contains(&"PQA103"));
        assert!(codes(&a).contains(&"PQA105"), "implied equality reported");
    }

    #[test]
    fn minimization_drops_redundant_atoms_and_lowers_q() {
        let q = parse_cq("G(x, y) :- E(x, y), E(x, z), E(x, w).").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        let core = a.rewritten.as_ref().expect("redundant atoms drop");
        assert_eq!(core.atoms.len(), 1);
        assert_eq!(
            codes(&a).iter().filter(|c| **c == "PQA301").count(),
            2,
            "one diagnostic per removed atom"
        );
        assert!(a.report.q < q.size() && a.report.v < q.num_variables());
        assert_eq!(a.effective(&q), core);
    }

    #[test]
    fn minimization_respects_the_atom_limit() {
        let q = parse_cq("G(x) :- E(x, a), E(x, b), E(x, c).").unwrap();
        let opts = AnalyzeOptions {
            minimize_atom_limit: 2,
            ..Default::default()
        };
        let a = analyze(&q, &opts);
        assert!(a.rewritten.is_none());
        assert!(codes(&a).contains(&"PQA302"));
    }

    #[test]
    fn impure_queries_skip_minimization_with_a_note() {
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert!(a.rewritten.is_none());
        assert!(codes(&a).contains(&"PQA302"));
        assert_eq!(a.report.cell, FigCell::AcyclicNeq);
    }

    #[test]
    fn cyclic_queries_name_their_witness() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::CyclicQuery)
            .expect("cyclic diagnostic");
        assert!(
            d.message.contains("#0") && d.message.contains("#2"),
            "{}",
            d.message
        );
        assert_eq!(a.report.cycle_witness, Some(vec![0, 1, 2]));
    }

    #[test]
    fn width_pass_reports_tractable_and_over_limit_cyclic_queries() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        assert!(codes(&a).contains(&"PQA601"));
        assert_eq!(a.report.cell, FigCell::CyclicBoundedWidth);
        assert_eq!(a.report.hypertree_width, Some(2));
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::HypertreeWidth)
            .expect("width diagnostic");
        assert!(d.message.contains("width 2 (exact)"), "{}", d.message);

        // With the limit below the width, the query stays in the plain
        // cyclic cell and PQA602 explains why.
        let opts = AnalyzeOptions {
            width_limit: 1,
            ..Default::default()
        };
        let a = analyze(&q, &opts);
        assert!(codes(&a).contains(&"PQA602"));
        assert!(!codes(&a).contains(&"PQA601"));
        assert_eq!(a.report.cell, FigCell::Cyclic);
    }

    #[test]
    fn schema_pass_flags_unknown_relations_and_arity() {
        let mut db = Database::new();
        db.add_table("R", ["a", "b"], [tuple![1, 2]]).unwrap();
        let q = parse_cq("G(x) :- R(x, y, z), S(x).").unwrap();
        let ds = schema_diagnostics(&q, &db);
        let codes: Vec<_> = ds.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![LintCode::ArityMismatch, LintCode::UnknownRelation]
        );
        // Schema problems never claim provable emptiness.
        let a = analyze_with_db(&q, &db, &AnalyzeOptions::default());
        assert!(!a.provably_empty());
        assert!(a.has_errors());
    }

    #[test]
    fn counting_pass_classifies_the_chen_mengel_cases() {
        let opts = AnalyzeOptions {
            counting: true,
            ..Default::default()
        };
        // Quantifier-free acyclic: PQA701 on the counting engine.
        let q = parse_cq("G(x, y, z) :- R(x, y), S(y, z).").unwrap();
        let a = analyze(&q, &opts);
        assert!(codes(&a).contains(&"PQA701"));
        // Projected head: PQA702.
        let q = parse_cq("G(x) :- R(x, y), S(y, z).").unwrap();
        let a = analyze(&q, &opts);
        assert!(codes(&a).contains(&"PQA702"));
        // Bounded-width cyclic quantifier-free: PQA701 via count-hypertree.
        let q = parse_cq("G(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let a = analyze(&q, &opts);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::CountingTractable)
            .expect("tractable");
        assert!(d.message.contains("count-hypertree"), "{}", d.message);
        // Impure: PQA703 fallback.
        let q = parse_cq("G(x) :- R(x, y), x != y.").unwrap();
        let a = analyze(&q, &opts);
        assert!(codes(&a).contains(&"PQA703"));
        // Width above limit: PQA703 fallback too.
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let tight = AnalyzeOptions {
            counting: true,
            width_limit: 1,
            ..Default::default()
        };
        let a = analyze(&q, &tight);
        assert!(codes(&a).contains(&"PQA703"));
        // Off by default: no PQA7xx anywhere.
        let a = analyze(&q, &AnalyzeOptions::default());
        assert!(!codes(&a).iter().any(|c| c.starts_with("PQA7")));
    }

    #[test]
    fn counting_pass_runs_on_the_minimized_core() {
        // As written the head misses z; minimized, the core is the single
        // atom E(x, y) and the head is quantifier-free.
        let q = parse_cq("G(x, y) :- E(x, y), E(x, z), E(x, w).").unwrap();
        let opts = AnalyzeOptions {
            counting: true,
            ..Default::default()
        };
        let a = analyze(&q, &opts);
        assert!(a.rewritten.is_some());
        assert!(codes(&a).contains(&"PQA701"), "{:?}", codes(&a));
    }

    #[test]
    fn lines_are_deterministic_and_end_with_the_verdict() {
        let q = parse_cq("G(x) :- R(x, y), x != x.").unwrap();
        let a = analyze(&q, &AnalyzeOptions::default());
        let lines = a.lines();
        assert_eq!(lines, analyze(&q, &AnalyzeOptions::default()).lines());
        assert_eq!(
            lines.last().unwrap(),
            "verdict: provably-empty (reflexive-neq)"
        );
    }
}
