//! `pq-analyze` — static analysis for conjunctive queries.
//!
//! The paper's whole classification (Theorems 1–3, Fig. 1) is driven by
//! *static* properties of a query: its size `q`, variable count `v`, and
//! the hypergraph structure of its relational atoms. This crate makes
//! those properties first-class. [`analyze`] runs a fixed pipeline of
//! passes over a [`pq_query::ConjunctiveQuery`] and returns an
//! [`Analysis`]: structured diagnostics with stable lint codes
//! (`PQA001`…), an optional rewritten query (the Chandra–Merlin core),
//! a provably-empty verdict that lets evaluation be skipped entirely,
//! and a [`StructureReport`] naming the Fig. 1 cell the query occupies.
//!
//! The passes, in order:
//!
//! | pass | codes | what it finds |
//! |------|-------|---------------|
//! | safety / range-restriction | `PQA001`–`PQA004` | unbound head or constraint variables, empty bodies |
//! | contradiction detection | `PQA101`–`PQA105` | `x ≠ x`, inconsistent comparison systems, `≠` atoms forced equal |
//! | core minimization | `PQA301`–`PQA302` | redundant atoms (the query is equivalent without them) |
//! | structural classification | `PQA401`–`PQA402` | cyclicity with a GYO witness, the `q`/`v`/arity parameter report |
//! | hypertree width | `PQA601`–`PQA602` | the hypertree width of cyclic queries (exact or heuristic bound) and whether the bounded-width engine applies |
//! | containment vs. views | `PQA801`–`PQA804` | equivalence/containment against registered views (Chandra–Merlin), the view-scan rewriting, and the equivalence-class semantic cache key |
//!
//! plus a schema pass ([`schema_diagnostics`], `PQA201`–`PQA202`) that is
//! separate because it depends on a concrete database, not the query alone.
//!
//! [`analyze_program`] lifts the same discipline to whole Datalog programs
//! (the `PQA5xx` family): predicate dependency graph with goal-reachability
//! dead-rule pruning (`PQA501`), per-rule safety (`PQA502`) and cross-rule
//! arity consistency (`PQA503`), undefined-goal (`PQA504`) and
//! never-derivable-IDB (`PQA505`) detection, recursion classification per
//! SCC (`PQA506`, `PQA510`), and Chandra–Merlin core minimization of each
//! rule body (`PQA301`/`PQA302` re-anchored to rule spans). When anything
//! changed, the analysis carries a goal-preserving `rewritten` program —
//! same least fixpoint at the goal, fewer and smaller rules.
//!
//! The crate sits *below* `pq-core`: the planner consumes an [`Analysis`]
//! to evaluate the minimized core and short-circuit provably-empty
//! queries, and `pq-service` surfaces the diagnostics over the wire via
//! its `ANALYZE` verb.
//!
//! ```
//! use pq_analyze::{analyze, AnalyzeOptions, FigCell};
//! use pq_query::parse_cq;
//!
//! let q = parse_cq("G(x, y) :- E(x, y), E(x, z), E(x, w).").unwrap();
//! let a = analyze(&q, &AnalyzeOptions::default());
//! // Two atoms fold into the first: the core is a single edge lookup.
//! assert_eq!(a.rewritten.as_ref().unwrap().atoms.len(), 1);
//! assert_eq!(a.report.cell, FigCell::AcyclicPure);
//! assert!(!a.provably_empty());
//! ```

#![warn(missing_docs)]

mod analyzer;
mod containment;
mod diagnostics;
mod program;
mod report;

pub use analyzer::{
    analyze, analyze_with_db, schema_diagnostics, Analysis, AnalyzeOptions, EmptyReason,
};
pub use containment::{match_against_views, ViewMatch};
pub use diagnostics::{Diagnostic, LintCode, Severity, Span};
pub use program::{
    analyze_program, analyze_program_with_db, schema_diagnostics_program, ProgramAnalysis,
    ProgramEmptyReason, ProgramReport, RecursionClass, SccReport,
};
pub use report::{structure_of, structure_with_width_limit, FigCell, StructureReport};
