//! Whole-program Datalog analysis (the `PQA5xx` lint family).
//!
//! [`analyze_program`] lifts the single-query analyzer to a
//! [`DatalogProgram`]. Pass order (recorded in DESIGN.md, part of the
//! contract):
//!
//! 1. **per-rule safety and cross-rule arity consistency** — `PQA502` for
//!    unsafe rules (the condition `datalog_eval` rejects with
//!    [`pq_query::QueryError::UnsafeRule`]), `PQA503` when a relation is
//!    used at two arities;
//! 2. **goal resolution** — `PQA504` when the goal has no defining rule;
//! 3. **dependency graph** — derivability (least fixpoint over rule heads:
//!    `PQA505` for IDB relations that can never hold a tuple) and goal
//!    reachability; rules failing either test are dead (`PQA501`) and
//!    pruned. A goal that is itself underivable makes the program provably
//!    empty on every database;
//! 4. **per-rule core minimization** — Chandra–Merlin on each live rule
//!    body (`PQA301`/`PQA302` re-anchored to rule spans, behind the same
//!    `minimize_atom_limit` gate as the CQ pass);
//! 5. **recursion classification** — SCC condensation of the IDB
//!    dependency graph of the *live* program, each recursive component
//!    classified linear/nonlinear (`PQA506`), then the `PQA510` program
//!    parameter report (Section 4's bottom-up bounds are driven by exactly
//!    these numbers).
//!
//! When pruning or minimization changed anything — and nothing is wrong —
//! the analysis carries a `rewritten` program computing the identical goal
//! relation (same least fixpoint restricted to the goal).

use std::collections::{BTreeMap, BTreeSet};

use pq_data::Database;
use pq_engine::containment;
use pq_query::{ConjunctiveQuery, DatalogProgram, Rule};

use crate::analyzer::AnalyzeOptions;
use crate::diagnostics::{Diagnostic, LintCode, Severity, Span};

/// How a Datalog program recurses, derived from the SCC condensation of
/// its (live) IDB dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursionClass {
    /// No recursive component: the program unfolds into a finite union of
    /// conjunctive queries, so the whole Fig. 1 landscape applies to it.
    Nonrecursive,
    /// Every recursive component is linear (each rule uses at most one
    /// atom of its own component): transitive-closure-like, one delta per
    /// rule suffices.
    Linear,
    /// Some rule joins two or more atoms of its own component (e.g.
    /// `T(x, z) :- T(x, y), T(y, z)`).
    Nonlinear,
}

impl RecursionClass {
    /// Stable lowercase name for reports and the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            RecursionClass::Nonrecursive => "nonrecursive",
            RecursionClass::Linear => "linear",
            RecursionClass::Nonlinear => "nonlinear",
        }
    }
}

impl std::fmt::Display for RecursionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One strongly connected component of the IDB dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccReport {
    /// The component's predicates, sorted.
    pub predicates: Vec<String>,
    /// Does the component recurse (more than one predicate, or a
    /// self-loop)?
    pub recursive: bool,
    /// For recursive components: does every rule use at most one atom of
    /// the component in its body? (Trivially `true` for non-recursive
    /// components.)
    pub linear: bool,
}

/// Why a program's goal relation is empty on **every** database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramEmptyReason {
    /// The goal is defined but underivable: every rule for it (transitively)
    /// requires an IDB relation with no EDB-grounded derivation.
    GoalUnderivable,
}

impl ProgramEmptyReason {
    /// Stable lowercase name for reports and the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ProgramEmptyReason::GoalUnderivable => "goal-underivable",
        }
    }
}

impl std::fmt::Display for ProgramEmptyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The structural facts [`analyze_program`] derives: rule liveness, the SCC
/// condensation, the recursion class, and the Section 4 parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramReport {
    /// Rules in the input program.
    pub rules_total: usize,
    /// Rules that survive dead-rule pruning (= `rules_total` minus
    /// `dead_rules.len()`).
    pub rules_live: usize,
    /// Indices (program order) of the pruned rules.
    pub dead_rules: Vec<usize>,
    /// The EDB relations, sorted.
    pub edb: Vec<String>,
    /// The IDB relations, sorted.
    pub idb: Vec<String>,
    /// SCCs of the live program's IDB dependency graph, in reverse
    /// topological order (callees first).
    pub sccs: Vec<SccReport>,
    /// The overall recursion class of the live program.
    pub recursion: RecursionClass,
    /// Maximum atom arity (the `r` of Section 4's `n^r` stage bound),
    /// over the live, minimized rules.
    pub max_arity: usize,
    /// Maximum distinct variables in one rule (the per-stage CQ parameter
    /// `v`), over the live, minimized rules.
    pub max_rule_variables: usize,
}

/// The analyzer's complete output for one Datalog program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAnalysis {
    /// Findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The pruned + per-rule-minimized program, present only when it
    /// differs from the input. Goal-preserving: its least fixpoint gives
    /// the identical goal relation.
    pub rewritten: Option<DatalogProgram>,
    /// Set when the goal relation is empty on every database; evaluation
    /// can be skipped entirely.
    pub empty: Option<ProgramEmptyReason>,
    /// Structural report for the program the planner should execute.
    pub report: ProgramReport,
}

impl ProgramAnalysis {
    /// Is the goal relation provably empty on every database?
    pub fn provably_empty(&self) -> bool {
        self.empty.is_some()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The program evaluation should run: the rewritten program when one
    /// exists, otherwise `original`.
    pub fn effective<'a>(&'a self, original: &'a DatalogProgram) -> &'a DatalogProgram {
        self.rewritten.as_ref().unwrap_or(original)
    }

    /// Deterministic line rendering, shared by `examples/analyze.rs`, the
    /// golden-corpus CI gate, and the wire protocol. Order: diagnostics in
    /// pass order, then the rewritten program (one line), then the verdict.
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self.diagnostics.iter().map(|d| d.to_string()).collect();
        if let Some(r) = &self.rewritten {
            out.push(format!("rewritten: {}", one_line(r)));
        }
        match self.empty {
            Some(reason) => out.push(format!("verdict: provably-empty ({reason})")),
            None => out.push("verdict: ok".to_string()),
        }
        out
    }
}

/// Render a program on one line: rules separated by single spaces, then the
/// goal marker (`Display` uses one line per rule, which golden files and
/// the wire protocol cannot frame).
fn one_line(p: &DatalogProgram) -> String {
    let rules: Vec<String> = p.rules.iter().map(ToString::to_string).collect();
    format!("{} ?- {}", rules.join(" "), p.goal)
}

// ------------------------------------------------ pass 1: safety/arity --

fn rule_safety_pass(p: &DatalogProgram, out: &mut Vec<Diagnostic>) {
    for (i, r) in p.rules.iter().enumerate() {
        for v in r.unsafe_variables() {
            out.push(Diagnostic::new(
                LintCode::UnsafeRule,
                Span::Rule(i),
                format!("head variable `{v}` of `{r}` is not bound by the rule body"),
            ));
        }
    }
    // First use fixes a relation's arity; later conflicting uses are
    // flagged where they occur.
    let mut first: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (i, r) in p.rules.iter().enumerate() {
        for a in std::iter::once(&r.head).chain(r.body.iter()) {
            match first.get(a.relation.as_str()) {
                None => {
                    first.insert(&a.relation, (a.arity(), i));
                }
                Some(&(k, j)) if k != a.arity() => {
                    out.push(Diagnostic::new(
                        LintCode::RuleArityMismatch,
                        Span::Rule(i),
                        format!(
                            "`{a}` uses relation `{}` with arity {} but rule #{j} \
                             fixed its arity at {k}",
                            a.relation,
                            a.arity()
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
}

// ------------------------------------------- pass 3: dependency graph --

/// The IDB relations that can derive at least one tuple on *some* database:
/// the least fixpoint of "some rule for `P` has all its IDB body relations
/// derivable" (EDB relations are always potentially nonempty).
fn derivable_idbs(p: &DatalogProgram) -> BTreeSet<&str> {
    let idb = p.idb_relations();
    let mut derivable: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        for r in &p.rules {
            if derivable.contains(r.head.relation.as_str()) {
                continue;
            }
            let grounded = r.body.iter().all(|a| {
                !idb.contains(a.relation.as_str()) || derivable.contains(a.relation.as_str())
            });
            if grounded {
                derivable.insert(r.head.relation.as_str());
                changed = true;
            }
        }
        if !changed {
            return derivable;
        }
    }
}

/// Why rule `i` is dead, if it is.
fn death_reason(
    rule: &Rule,
    reachable: &BTreeSet<&str>,
    underivable: &BTreeSet<&str>,
) -> Option<String> {
    if !reachable.contains(rule.head.relation.as_str()) {
        return Some(format!(
            "relation `{}` is unreachable from the goal: nothing this rule \
             derives can contribute to the answer",
            rule.head.relation
        ));
    }
    rule.body
        .iter()
        .find(|a| underivable.contains(a.relation.as_str()))
        .map(|a| {
            format!(
                "body atom `{a}` can never hold (relation `{}` derives no \
                 tuples), so the rule never fires",
                a.relation
            )
        })
}

// ------------------------------------------- pass 4: core minimization --

fn rule_to_cq(rule: &Rule) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        rule.head.relation.clone(),
        rule.head.terms.iter().cloned(),
        rule.body.iter().cloned(),
    )
}

/// Minimize one live rule's body (Chandra–Merlin on the body CQ — body
/// equivalence holds over every database state, including any IDB
/// contents, so the minimized rule derives the same head tuples at every
/// fixpoint round). Returns the minimized rule when atoms dropped.
fn minimize_rule(
    i: usize,
    rule: &Rule,
    opts: &AnalyzeOptions,
    out: &mut Vec<Diagnostic>,
) -> Option<Rule> {
    if rule.body.len() < 2 {
        return None;
    }
    if rule.body.len() > opts.minimize_atom_limit {
        out.push(Diagnostic::new(
            LintCode::MinimizationSkipped,
            Span::Rule(i),
            format!(
                "core minimization skipped: {} body atoms exceeds the limit \
                 of {} (equivalence checks are CQ evaluations)",
                rule.body.len(),
                opts.minimize_atom_limit
            ),
        ));
        return None;
    }
    // Datalog rule bodies are pure by construction (the parser rejects
    // constraints), so the trace cannot fail; treat an error as "no
    // rewrite" rather than poisoning the analysis.
    let Ok((core, removed)) = containment::minimize_trace(&rule_to_cq(rule)) else {
        return None;
    };
    if removed.is_empty() {
        return None;
    }
    for &j in &removed {
        out.push(Diagnostic::new(
            LintCode::RedundantAtom,
            Span::Rule(i),
            format!(
                "`{}` is redundant: the rule derives the same tuples without \
                 it (Chandra–Merlin core)",
                rule.body[j]
            ),
        ));
    }
    Some(Rule::new(rule.head.clone(), core.atoms))
}

// ------------------------------------- pass 5: recursion classification --

fn classify_recursion(live: &DatalogProgram, out: &mut Vec<Diagnostic>) -> Vec<SccReport> {
    let mut sccs = Vec::new();
    for comp in live.idb_sccs() {
        let members: BTreeSet<&str> = comp.iter().copied().collect();
        let in_comp = |rule: &Rule| members.contains(rule.head.relation.as_str());
        let comp_atoms = |rule: &Rule| {
            rule.body
                .iter()
                .filter(|a| members.contains(a.relation.as_str()))
                .count()
        };
        let recursive =
            comp.len() > 1 || live.rules.iter().any(|r| in_comp(r) && comp_atoms(r) > 0);
        let linear = live.rules.iter().all(|r| !in_comp(r) || comp_atoms(r) <= 1);
        if recursive {
            out.push(Diagnostic::new(
                LintCode::RecursiveComponent,
                Span::Program,
                format!(
                    "recursive component {{{}}}: {} recursion",
                    comp.join(", "),
                    if linear { "linear" } else { "nonlinear" }
                ),
            ));
        }
        sccs.push(SccReport {
            predicates: comp.iter().map(ToString::to_string).collect(),
            recursive,
            linear,
        });
    }
    sccs
}

fn recursion_class(sccs: &[SccReport]) -> RecursionClass {
    let recursive: Vec<&SccReport> = sccs.iter().filter(|s| s.recursive).collect();
    if recursive.is_empty() {
        RecursionClass::Nonrecursive
    } else if recursive.iter().all(|s| s.linear) {
        RecursionClass::Linear
    } else {
        RecursionClass::Nonlinear
    }
}

// ------------------------------------------------------------- driver --

/// Run the full program analysis (see the module docs for the pass order).
/// Deterministic: same program and options, same output.
pub fn analyze_program(p: &DatalogProgram, opts: &AnalyzeOptions) -> ProgramAnalysis {
    let mut diagnostics = Vec::new();

    // Pass 1: per-rule safety, cross-rule arity consistency.
    rule_safety_pass(p, &mut diagnostics);

    // Pass 2: goal resolution.
    let goal_defined = p.idb_relations().contains(p.goal.as_str());
    if !goal_defined {
        diagnostics.push(Diagnostic::new(
            LintCode::UndefinedGoal,
            Span::Program,
            format!("goal relation `{}` has no defining rule", p.goal),
        ));
    }

    // Pass 3: dependency graph — derivability, reachability, dead rules.
    // Skipped for an undefined goal (every rule would be trivially dead;
    // the one `PQA504` error already says why nothing can run).
    let mut dead_rules: Vec<usize> = Vec::new();
    let mut empty = None;
    if goal_defined {
        let idb = p.idb_relations();
        let derivable = derivable_idbs(p);
        let underivable: BTreeSet<&str> = idb.difference(&derivable).copied().collect();
        for u in &underivable {
            diagnostics.push(Diagnostic::new(
                LintCode::UnderivableRelation,
                Span::Program,
                format!(
                    "IDB relation `{u}` can never derive a tuple: no rule for \
                     it bottoms out in the EDB"
                ),
            ));
        }
        let reachable = p.reachable_from_goal();
        for (i, rule) in p.rules.iter().enumerate() {
            if let Some(why) = death_reason(rule, &reachable, &underivable) {
                diagnostics.push(Diagnostic::new(
                    LintCode::DeadRule,
                    Span::Rule(i),
                    format!("dead rule `{rule}`: {why}"),
                ));
                dead_rules.push(i);
            }
        }
        if underivable.contains(p.goal.as_str()) {
            empty = Some(ProgramEmptyReason::GoalUnderivable);
        }
    }

    // Pass 4: per-rule core minimization on the live rules. Errors gate the
    // pass exactly as in the CQ analyzer — a broken program has no
    // trustworthy equivalences to exploit.
    let has_errors = diagnostics.iter().any(|d| d.severity == Severity::Error);
    let mut live_rules: Vec<Rule> = Vec::new();
    let mut changed = !dead_rules.is_empty();
    for (i, rule) in p.rules.iter().enumerate() {
        if dead_rules.contains(&i) {
            continue;
        }
        let minimized = if opts.minimize && !has_errors && empty.is_none() {
            minimize_rule(i, rule, opts, &mut diagnostics)
        } else {
            None
        };
        changed |= minimized.is_some();
        live_rules.push(minimized.unwrap_or_else(|| rule.clone()));
    }
    let live = DatalogProgram::new(live_rules, p.goal.clone());

    // Pass 5: recursion classification + the program parameter report,
    // both on the live program (the one the planner will execute).
    let sccs = classify_recursion(&live, &mut diagnostics);
    let recursion = recursion_class(&sccs);
    let report = ProgramReport {
        rules_total: p.rules.len(),
        rules_live: live.rules.len(),
        dead_rules,
        edb: p.edb_relations().iter().map(ToString::to_string).collect(),
        idb: p.idb_relations().iter().map(ToString::to_string).collect(),
        sccs,
        recursion,
        max_arity: live.max_arity(),
        max_rule_variables: live.max_rule_variables(),
    };
    let unfoldable = if recursion == RecursionClass::Nonrecursive {
        "; nonrecursive: unfoldable into a union of conjunctive queries"
    } else {
        ""
    };
    diagnostics.push(Diagnostic::new(
        LintCode::ProgramReport,
        Span::Program,
        format!(
            "rules={}/{} (live/total), edb={}, idb={}, sccs={}, \
             recursion={}, max arity={}, max rule vars={}{unfoldable}",
            report.rules_live,
            report.rules_total,
            report.edb.len(),
            report.idb.len(),
            report.sccs.len(),
            report.recursion,
            report.max_arity,
            report.max_rule_variables
        ),
    ));

    let rewritten = (changed && !has_errors && goal_defined && empty.is_none()).then(|| {
        debug_assert!(live.validate().is_ok(), "rewrite must stay valid");
        live
    });
    ProgramAnalysis {
        diagnostics,
        rewritten,
        empty,
        report,
    }
}

/// The schema pass for programs: check every EDB relation the program uses
/// against an actual database (IDB relations live only inside the
/// fixpoint). Errors mirror the CQ pass (`PQA201`/`PQA202`), anchored at
/// the first rule using the relation.
pub fn schema_diagnostics_program(p: &DatalogProgram, db: &Database) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let idb = p.idb_relations();
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
    for (i, r) in p.rules.iter().enumerate() {
        for a in &r.body {
            if idb.contains(a.relation.as_str()) || !seen.insert((&a.relation, a.arity())) {
                continue;
            }
            match db.relation(&a.relation) {
                Err(_) => out.push(Diagnostic::new(
                    LintCode::UnknownRelation,
                    Span::Rule(i),
                    format!(
                        "EDB relation `{}` is not in the database (evaluation \
                         fails; under a closed world the answer would be empty)",
                        a.relation
                    ),
                )),
                Ok(rel) if rel.arity() != a.arity() => out.push(Diagnostic::new(
                    LintCode::ArityMismatch,
                    Span::Rule(i),
                    format!(
                        "`{}` has arity {} but relation `{}` stores arity {}",
                        a,
                        a.arity(),
                        a.relation,
                        rel.arity()
                    ),
                )),
                Ok(_) => {}
            }
        }
    }
    out
}

/// [`analyze_program`] plus the schema pass against `db`, appended in rule
/// order.
pub fn analyze_program_with_db(
    p: &DatalogProgram,
    db: &Database,
    opts: &AnalyzeOptions,
) -> ProgramAnalysis {
    let mut a = analyze_program(p, opts);
    a.diagnostics.extend(schema_diagnostics_program(p, db));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::parse_datalog;

    fn codes(a: &ProgramAnalysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    fn analyze_src(src: &str) -> ProgramAnalysis {
        analyze_program(&parse_datalog(src).unwrap(), &AnalyzeOptions::default())
    }

    #[test]
    fn clean_linear_program_reports_parameters_only() {
        let a = analyze_src(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- E(x, y), T(y, z).\n\
             ?- T",
        );
        assert_eq!(codes(&a), vec!["PQA506", "PQA510"]);
        assert!(a.rewritten.is_none());
        assert_eq!(a.report.recursion, RecursionClass::Linear);
        assert_eq!(a.report.rules_live, 2);
        assert!(!a.provably_empty());
    }

    #[test]
    fn nonlinear_recursion_is_classified() {
        let a = analyze_src(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), T(y, z).\n\
             ?- T",
        );
        assert_eq!(a.report.recursion, RecursionClass::Nonlinear);
        assert!(!a.report.sccs.iter().any(|s| s.recursive && s.linear));
    }

    #[test]
    fn mutual_recursion_spans_an_scc() {
        let a = analyze_src(
            "A(x, y) :- E(x, y).\n\
             A(x, y) :- B(x, y).\n\
             B(x, z) :- E(x, y), A(y, z).\n\
             ?- A",
        );
        let rec: Vec<_> = a.report.sccs.iter().filter(|s| s.recursive).collect();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].predicates, vec!["A", "B"]);
        assert_eq!(a.report.recursion, RecursionClass::Linear);
    }

    #[test]
    fn nonrecursive_programs_are_flagged_unfoldable() {
        let a = analyze_src(
            "S(x, z) :- E(x, y), E(y, z).\n\
             ?- S",
        );
        assert_eq!(a.report.recursion, RecursionClass::Nonrecursive);
        let report = a.diagnostics.last().unwrap();
        assert_eq!(report.code, LintCode::ProgramReport);
        assert!(report.message.contains("unfoldable"), "{}", report.message);
    }

    #[test]
    fn dead_rules_are_pruned_and_reported() {
        let a = analyze_src(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- E(x, y), T(y, z).\n\
             U(x) :- E(x, y).\n\
             ?- T",
        );
        assert!(codes(&a).contains(&"PQA501"));
        assert_eq!(a.report.dead_rules, vec![2]);
        let r = a.rewritten.as_ref().expect("dead rule pruned");
        assert_eq!(r.rules.len(), 2);
        assert!(r.validate().is_ok());
        assert_eq!(r.goal, "T");
    }

    #[test]
    fn unsafe_rules_get_pqa502_and_gate_the_rewrite() {
        let a = analyze_src(
            "G(x) :- E(y, y).\n\
             U(x) :- E(x, y).\n\
             ?- G",
        );
        assert!(codes(&a).contains(&"PQA502"));
        assert!(a.has_errors());
        assert!(a.rewritten.is_none(), "errors gate the rewrite");
    }

    #[test]
    fn arity_clash_points_at_the_second_use() {
        let a = analyze_src(
            "T(x) :- E(x, y).\n\
             T(x, y) :- E(x, y).\n\
             ?- T",
        );
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::RuleArityMismatch)
            .expect("arity clash");
        assert_eq!(d.span, Span::Rule(1));
        assert!(d.message.contains("rule #0"), "{}", d.message);
    }

    #[test]
    fn undefined_goal_is_an_error() {
        let a = analyze_src("T(x, y) :- E(x, y). ?- G");
        assert!(codes(&a).contains(&"PQA504"));
        assert!(a.has_errors());
        // No dead-rule noise on top of the one real problem.
        assert!(!codes(&a).contains(&"PQA501"));
    }

    #[test]
    fn underivable_goal_is_provably_empty() {
        let a = analyze_src(
            "G(x) :- A(x).\n\
             A(x) :- B(x).\n\
             B(x) :- A(x), E(x, y).\n\
             ?- G",
        );
        assert_eq!(a.empty, Some(ProgramEmptyReason::GoalUnderivable));
        let underivable: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnderivableRelation)
            .collect();
        assert_eq!(underivable.len(), 3, "G, A and B never derive");
        assert!(a.lines().last().unwrap().contains("goal-underivable"));
        assert!(a.rewritten.is_none());
    }

    #[test]
    fn underivable_side_relation_kills_only_its_rule() {
        let a = analyze_src(
            "T(x, y) :- E(x, y).\n\
             T(x, y) :- E(x, y), Z(x).\n\
             Z(x) :- Z(x).\n\
             ?- T",
        );
        assert!(!a.provably_empty());
        assert_eq!(a.report.dead_rules, vec![1, 2]);
        let r = a.rewritten.as_ref().unwrap();
        assert_eq!(r.rules.len(), 1);
    }

    #[test]
    fn rule_bodies_are_core_minimized() {
        let a = analyze_src("G(x, y) :- E(x, y), E(x, z), E(x, w). ?- G");
        let pqa301 = codes(&a).iter().filter(|c| **c == "PQA301").count();
        assert_eq!(pqa301, 2, "two redundant atoms drop");
        let r = a.rewritten.as_ref().unwrap();
        assert_eq!(r.rules[0].body.len(), 1);
        assert_eq!(a.report.max_rule_variables, 2, "report sees the core");
        // Diagnostics anchor at the rule span.
        assert!(a
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::RedundantAtom)
            .all(|d| d.span == Span::Rule(0)));
    }

    #[test]
    fn minimization_respects_the_atom_limit() {
        let p = parse_datalog("G(x) :- E(x, a), E(x, b), E(x, c). ?- G").unwrap();
        let opts = AnalyzeOptions {
            minimize_atom_limit: 2,
            ..Default::default()
        };
        let a = analyze_program(&p, &opts);
        assert!(a.rewritten.is_none());
        assert!(codes(&a).contains(&"PQA302"));
    }

    #[test]
    fn effective_returns_the_rewrite_only_when_it_exists() {
        let p = parse_datalog(
            "T(x, y) :- E(x, y).\n\
             U(x) :- E(x, y).\n\
             ?- T",
        )
        .unwrap();
        let a = analyze_program(&p, &AnalyzeOptions::default());
        assert_eq!(a.effective(&p).rules.len(), 1);
        let clean = parse_datalog("T(x, y) :- E(x, y). ?- T").unwrap();
        let b = analyze_program(&clean, &AnalyzeOptions::default());
        assert!(std::ptr::eq(b.effective(&clean), &clean));
    }

    #[test]
    fn schema_pass_checks_edb_relations_only() {
        let mut db = Database::new();
        db.add_table("E", ["a", "b"], [pq_data::tuple![1, 2]])
            .unwrap();
        let p = parse_datalog(
            "T(x, y) :- E(x, y), F(x).\n\
             T(x, z) :- E(x, y, y), T(y, z).\n\
             ?- T",
        )
        .unwrap();
        let a = analyze_program_with_db(&p, &db, &AnalyzeOptions::default());
        let schema: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| matches!(d.code, LintCode::UnknownRelation | LintCode::ArityMismatch))
            .collect();
        assert_eq!(schema.len(), 2, "unknown F, wrong-arity E: {schema:?}");
        // T is IDB — never checked against the catalog.
        assert!(schema.iter().all(|d| !d.message.contains("`T`")));
    }

    #[test]
    fn lines_are_deterministic_and_end_with_the_verdict() {
        let src = "T(x, y) :- E(x, y).\nU(x) :- E(x, y).\n?- T";
        let lines = analyze_src(src).lines();
        assert_eq!(lines, analyze_src(src).lines());
        assert_eq!(lines.last().unwrap(), "verdict: ok");
        assert!(lines.iter().any(|l| l.starts_with("rewritten: ")));
    }
}
