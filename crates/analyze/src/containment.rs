//! The containment/view-answering pass (`PQA8xx`).
//!
//! Chandra–Merlin containment (`Q1 ⊆ Q2` iff a homomorphism `Q2 → Q1`
//! exists) is NP-complete in query size — and therefore cheap in exactly
//! the regime this system lives in, where queries are small and databases
//! are large. This pass lifts the single-query core machinery (`PQA301`)
//! to *pairs*: the query under analysis against every registered
//! materialized view. The verdicts:
//!
//! * **`PQA801`** — the query is equivalent to a registered view: the
//!   maintained view relation *is* the answer, modulo renaming its
//!   attributes to the query's head. An `O(|view|)` scan replaces
//!   evaluation, and IVM keeps it warm across writes.
//! * **`PQA802`** — the query is answerable as a column projection of a
//!   registered view: `Q(d) = π_{j̄}(V(d))` on every database `d`. Found
//!   by enumerating head-restricted homomorphisms `B_Q → B_V` over the
//!   view's canonical database and *verifying* the induced rewriting is
//!   equivalent to the query (the homomorphism alone only witnesses one
//!   containment direction).
//! * **`PQA803`** — the equivalence-class canonical core: the full
//!   canonical text of the minimized core, usable as a semantic cache
//!   key. Two queries with equal `PQA803` strings are alpha-equivalent
//!   (sound; incomplete — semantically equivalent queries may still
//!   differ, e.g. by atom order).
//! * **`PQA804`** — the containment search was aborted at the atom limit
//!   (equivalence checks are CQ evaluations on canonical databases, so
//!   the pass is bounded by construction); planning falls back to the
//!   normal engine chain.
//!
//! Queries and views with `≠`/comparison atoms take a conservative path:
//! both sides are closed under the comparison system's forced equalities
//! (the same closure `PQA105` reports) and compared by canonical form —
//! only equivalence (`PQA801`) can be concluded, never a projection
//! rewriting.

use pq_data::Value;
use pq_engine::containment::{canonical_database, equivalent};
use pq_engine::naive;
use pq_query::{canonical_form, ConjunctiveQuery, Term};

use crate::diagnostics::{Diagnostic, LintCode, Span};

/// How a query can be answered from a registered view: scan the view's
/// maintained relation and keep the listed columns, in order, under the
/// query's own head attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewMatch {
    /// Name of the registered view whose relation answers the query.
    pub view: String,
    /// Column indices into the view's head, in query-head order. For an
    /// equivalent view (`PQA801`) this is the identity permutation.
    pub projection: Vec<usize>,
    /// `true` for `PQA801` (equivalence), `false` for `PQA802` (strict
    /// containment answerable by projection).
    pub exact: bool,
}

/// The value a head term takes in a canonical (frozen) database: the
/// constant itself, or the frozen image of the variable. Mirrors the
/// freezing convention of [`pq_engine::containment::canonical_database`]
/// (real string values never start with `⟂`).
fn frozen_value(t: &Term) -> Value {
    match t {
        Term::Const(c) => c.clone(),
        Term::Var(v) => Value::str(format!("⟂{v}")),
    }
}

/// Close an impure query under the forced equalities of its comparison
/// system: substitute every term by its representative, everywhere. The
/// result is equivalent to the input (the closure only merges terms the
/// comparisons already force equal). Returns `None` when the system is
/// inconsistent — the query is empty and the contradiction pass already
/// reported it.
fn comparison_closure(q: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
    if q.comparisons.is_empty() {
        return Some(q.clone());
    }
    let ca = pq_engine::comparisons::analyze(&q.comparisons);
    if !ca.consistent {
        return None;
    }
    let rep = |t: &Term| {
        ca.representative
            .get(t)
            .cloned()
            .unwrap_or_else(|| t.clone())
    };
    let atoms = q
        .atoms
        .iter()
        .map(|a| pq_query::Atom::new(a.relation.clone(), a.terms.iter().map(&rep)));
    let out = ConjunctiveQuery::new(q.head_name.clone(), q.head_terms.iter().map(&rep), atoms)
        .with_neqs(
            q.neqs
                .iter()
                .map(|n| pq_query::Neq::new(rep(&n.left), rep(&n.right))),
        )
        .with_comparisons(
            q.comparisons
                .iter()
                .map(|c| pq_query::Comparison::new(rep(&c.left), c.op, rep(&c.right))),
        );
    Some(out)
}

/// Decide whether `q` (pure, already minimized) is answerable as a
/// projection of the pure view `v`: search for a homomorphism
/// `B_Q → B_V` whose head image lands on `v`'s head columns, then verify
/// the induced rewriting `q′` (head = the selected `v` head terms, body =
/// `v`'s body) is *equivalent* to `q`. Returns the column projection.
fn projection_of(q: &ConjunctiveQuery, v: &ConjunctiveQuery) -> Option<Vec<usize>> {
    let (db_v, _) = canonical_database(v).ok()?;
    // Evaluating `q` over the view's canonical database enumerates every
    // homomorphism g: B_Q → B_V, restricted to q's head — exactly the
    // candidates for "q's answers are view columns".
    let rows = naive::evaluate(q, &db_v).ok()?;
    let head_values: Vec<Value> = v.head_terms.iter().map(frozen_value).collect();
    for row in rows.iter() {
        let mut projection = Vec::with_capacity(q.head_terms.len());
        let mut decodable = true;
        for component in row.iter() {
            // Each answer component must be one of the view's own head
            // values (frozen variable or constant); anything else is a
            // body-only value the projection cannot reach.
            match head_values.iter().position(|hv| hv == component) {
                Some(j) => projection.push(j),
                None => {
                    decodable = false;
                    break;
                }
            }
        }
        if !decodable {
            continue;
        }
        // The homomorphism witnesses q′ ⊆ q only; equivalence of the
        // rewriting is what makes π_{j̄}(V(d)) = Q(d) on every database.
        let rewriting = ConjunctiveQuery::new(
            q.head_name.clone(),
            projection.iter().map(|&j| v.head_terms[j].clone()),
            v.atoms.iter().cloned(),
        );
        if equivalent(q, &rewriting).ok()? {
            return Some(projection);
        }
    }
    None
}

/// The containment pass: test `q` (the query the planner will execute)
/// against every registered view, first match wins (registration order —
/// deterministic). Emits `PQA801`/`PQA802`/`PQA804` per view plus the
/// `PQA803` equivalence-class key, and returns the semantic key and the
/// view match, if any.
pub(crate) fn containment_pass(
    q: &ConjunctiveQuery,
    views: &[(String, ConjunctiveQuery)],
    atom_limit: usize,
    out: &mut Vec<Diagnostic>,
) -> (Option<String>, Option<ViewMatch>) {
    let mut matched: Option<ViewMatch> = None;
    for (name, v) in views {
        if q.atoms.len() > atom_limit || v.atoms.len() > atom_limit {
            out.push(Diagnostic::new(
                LintCode::ContainmentAborted,
                Span::Query,
                format!(
                    "containment search against view `{name}` aborted: {} query / {} \
                     view atoms exceeds the limit of {atom_limit} (equivalence checks \
                     are CQ evaluations); falling back to normal planning",
                    q.atoms.len(),
                    v.atoms.len()
                ),
            ));
            continue;
        }
        if q.head_terms.len() == v.head_terms.len() && is_equivalent_pair(q, v) {
            out.push(Diagnostic::new(
                LintCode::ViewEquivalent,
                Span::Query,
                format!(
                    "equivalent to registered view `{name}` (homomorphisms both ways): \
                     answerable by scanning the maintained view relation"
                ),
            ));
            matched = Some(ViewMatch {
                view: name.clone(),
                projection: (0..q.head_terms.len()).collect(),
                exact: true,
            });
            break;
        }
        if q.is_pure() && v.is_pure() {
            if let Some(projection) = projection_of(q, v) {
                let cols: Vec<String> = projection.iter().map(|j| format!("${j}")).collect();
                out.push(Diagnostic::new(
                    LintCode::ViewContained,
                    Span::Query,
                    format!(
                        "contained in registered view `{name}`: answerable as the \
                         column projection ({}) of the maintained view relation",
                        cols.join(", ")
                    ),
                ));
                matched = Some(ViewMatch {
                    view: name.clone(),
                    projection,
                    exact: false,
                });
                break;
            }
        }
    }
    let semantic = canonical_form(q);
    out.push(Diagnostic::new(
        LintCode::EquivalenceClassCore,
        Span::Query,
        format!("equivalence-class core (semantic cache key): {semantic}"),
    ));
    (Some(semantic), matched)
}

/// Match `q` against `views` without collecting diagnostics: the first
/// `PQA801`/`PQA802` match in registration order, if any. This is the
/// entry point `pq-service` runs per database at query time — the
/// analyzer's own pass runs once per plan, and plans are shared across
/// databases whose registered views differ.
pub fn match_against_views(
    q: &ConjunctiveQuery,
    views: &[(String, ConjunctiveQuery)],
    atom_limit: usize,
) -> Option<ViewMatch> {
    let mut scratch = Vec::new();
    containment_pass(q, views, atom_limit, &mut scratch).1
}

/// Equivalence of two queries, pure or impure. Pure pairs get the full
/// Chandra–Merlin test; impure pairs are closed under forced equalities
/// and compared by canonical form (alpha-equivalence) — sound, and
/// conservative by design.
fn is_equivalent_pair(q: &ConjunctiveQuery, v: &ConjunctiveQuery) -> bool {
    if q.is_pure() && v.is_pure() {
        return equivalent(q, v).unwrap_or(false);
    }
    match (comparison_closure(q), comparison_closure(v)) {
        (Some(mut cq), Some(mut cv)) => {
            // The head relation name is not part of the answer semantics;
            // a query can match a view with a different head name.
            cq.head_name = "Q".into();
            cv.head_name = "Q".into();
            canonical_form(&cq) == canonical_form(&cv)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use pq_query::parse_cq;

    fn pass(
        q: &str,
        views: &[(&str, &str)],
        limit: usize,
    ) -> (Vec<Diagnostic>, Option<String>, Option<ViewMatch>) {
        let q = parse_cq(q).unwrap();
        let views: Vec<(String, ConjunctiveQuery)> = views
            .iter()
            .map(|(n, v)| (n.to_string(), parse_cq(v).unwrap()))
            .collect();
        let mut out = Vec::new();
        let (semantic, m) = containment_pass(&q, &views, limit, &mut out);
        (out, semantic, m)
    }

    #[test]
    fn alpha_equivalent_view_matches_exactly() {
        let (diags, semantic, m) = pass(
            "G(x, z) :- R(x, y), S(y, z).",
            &[("path", "V(a, c) :- R(a, b), S(b, c).")],
            8,
        );
        let m = m.expect("match");
        assert!(m.exact);
        assert_eq!(m.view, "path");
        assert_eq!(m.projection, vec![0, 1]);
        assert!(diags.iter().any(|d| d.code == LintCode::ViewEquivalent));
        assert!(semantic.unwrap().starts_with("G(?0,?1):-"));
    }

    #[test]
    fn folding_equivalence_is_detected_not_just_alpha() {
        // The extra E(x, w) folds onto E(x, y): semantically equivalent,
        // not alpha-equivalent.
        let (_, _, m) = pass(
            "G(x, y) :- E(x, y), E(x, w).",
            &[("edges", "V(a, b) :- E(a, b).")],
            8,
        );
        assert!(m.expect("match").exact);
    }

    #[test]
    fn strict_containment_yields_a_projection() {
        // Q projects the first view column; the view exports both.
        let (diags, _, m) = pass(
            "G(x) :- R(x, y), S(y, z).",
            &[("path", "V(a, c) :- R(a, b), S(b, c).")],
            8,
        );
        let m = m.expect("match");
        assert!(!m.exact);
        assert_eq!(m.projection, vec![0]);
        assert!(diags.iter().any(|d| d.code == LintCode::ViewContained));
    }

    #[test]
    fn projection_can_reorder_and_repeat_columns() {
        let (_, _, m) = pass(
            "G(c, a, c) :- R(a, b), S(b, c).",
            &[("path", "V(a, c) :- R(a, b), S(b, c).")],
            8,
        );
        assert_eq!(m.expect("match").projection, vec![1, 0, 1]);
    }

    #[test]
    fn containment_without_equivalence_is_rejected() {
        // Every 3-path is a 2-path (Q ⊆ V) but not conversely: a view scan
        // would return too many rows.
        let (_, _, m) = pass(
            "G(x) :- E(x, y), E(y, z), E(z, w).",
            &[("pairs", "V(a) :- E(a, b), E(b, c).")],
            8,
        );
        assert!(m.is_none());
    }

    #[test]
    fn unrelated_views_do_not_match() {
        let (_, _, m) = pass("G(x) :- R(x, y).", &[("other", "V(a) :- T(a, b).")], 8);
        assert!(m.is_none());
    }

    #[test]
    fn first_registered_match_wins() {
        let (_, _, m) = pass(
            "G(x, y) :- E(x, y).",
            &[
                ("no", "V(a) :- T(a, b)."),
                ("yes", "V(a, b) :- E(a, b)."),
                ("also", "W(u, v) :- E(u, v)."),
            ],
            8,
        );
        assert_eq!(m.expect("match").view, "yes");
    }

    #[test]
    fn atom_limit_aborts_with_a_warning() {
        let (diags, semantic, m) = pass(
            "G(x) :- E(x, a), E(x, b), E(x, c).",
            &[("big", "V(a) :- E(a, b).")],
            2,
        );
        assert!(m.is_none());
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::ContainmentAborted)
            .expect("PQA804");
        assert_eq!(d.severity, Severity::Warn);
        // The semantic key is still produced — aborting the search only
        // loses the view match, not the cache key.
        assert!(semantic.is_some());
    }

    #[test]
    fn impure_pairs_match_only_up_to_closure_equivalence() {
        // Same query modulo renaming and the forced equality x = y from
        // x <= y, y <= x on the view side is NOT claimed (different
        // semantics); a genuinely alpha-equivalent impure pair is.
        let (_, _, m) = pass(
            "G(x) :- R(x, y), x != y.",
            &[("neq", "V(a) :- R(a, b), a != b.")],
            8,
        );
        assert!(m.expect("match").exact);

        let (_, _, m) = pass(
            "G(x) :- R(x, y), x != y.",
            &[("pure", "V(a) :- R(a, b).")],
            8,
        );
        assert!(m.is_none(), "impure query never matches a pure view");
    }

    #[test]
    fn closure_merges_forced_equalities_before_comparing() {
        // x <= y, y <= x forces x = y on both sides; after closure the
        // two queries are alpha-equivalent.
        let (_, _, m) = pass(
            "G(x) :- R(x, y), x <= y, y <= x.",
            &[("closed", "V(a) :- R(a, b), a <= b, b <= a.")],
            8,
        );
        assert!(m.expect("match").exact);
    }

    #[test]
    fn arity_mismatch_never_matches() {
        let (_, _, m) = pass("G(x, y) :- E(x, y).", &[("one", "V(a) :- E(a, b).")], 8);
        // Arity 2 vs 1: equivalence is impossible, but the projection
        // search may still find V's column — it must not, because no
        // projection of a 1-column view yields 2 independent columns
        // unless the rewriting verifies. Here G(x,y) needs both E
        // endpoints; V only exports the source.
        assert!(m.is_none());
    }
}
