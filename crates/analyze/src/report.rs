//! The structural report: acyclicity with a concrete witness, the Fig. 1
//! parameters, and which cell of the paper's landscape the query occupies.

use pq_engine::comparisons;
use pq_hypergraph::{cyclic_core, decompose, HypertreeDecomposition, DEFAULT_WIDTH_LIMIT};
use pq_query::{ConjunctiveQuery, QueryMetrics};

/// The cell of the paper's Fig. 1 landscape a conjunctive query falls
/// into. Mirrors `pq_core::CqClass` one-for-one; it lives here (below the
/// planner) so the analyzer is the single source of truth for the decision
/// procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigCell {
    /// Acyclic, no `≠`, no comparisons: polynomial combined complexity.
    AcyclicPure,
    /// Acyclic with `≠` atoms only: fixed-parameter tractable (Theorem 2).
    AcyclicNeq,
    /// Acyclic (after comparison collapse) with `<`/`≤`, or `≠`/`<` mixed:
    /// W\[1\]-complete (Theorem 3).
    AcyclicComparisons,
    /// The comparison system is inconsistent: the answer is empty for
    /// every database.
    InconsistentComparisons,
    /// Cyclic relational hypergraph: W\[1\]-complete already without
    /// constraints (Theorem 1).
    Cyclic,
    /// Cyclic but of hypertree width ≤ the configured limit (pure queries
    /// only): polynomial by bag evaluation (Gottlob–Leone–Scarcello) — the
    /// tractable cell *beyond* the paper's acyclic island.
    CyclicBoundedWidth,
}

impl FigCell {
    /// Stable lowercase name used in reports and on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            FigCell::AcyclicPure => "acyclic-pure",
            FigCell::AcyclicNeq => "acyclic-neq",
            FigCell::AcyclicComparisons => "acyclic-comparisons",
            FigCell::InconsistentComparisons => "inconsistent-comparisons",
            FigCell::Cyclic => "cyclic",
            FigCell::CyclicBoundedWidth => "cyclic-bounded-width",
        }
    }
}

impl std::fmt::Display for FigCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The structural-classification pass's output: everything the paper's
/// decision procedure derives from the query alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureReport {
    /// Is the *relational* hypergraph α-acyclic (raw GYO verdict, before
    /// any comparison collapse — this is the join-tree builder's notion)?
    pub acyclic: bool,
    /// When cyclic: the GYO-irreducible atom indices — a concrete witness
    /// that no join tree exists.
    pub cycle_witness: Option<Vec<usize>>,
    /// The query-size parameter `q`.
    pub q: usize,
    /// The variable-count parameter `v`.
    pub v: usize,
    /// Largest relational-atom arity (0 for an empty body).
    pub max_arity: usize,
    /// Number of `≠` atoms.
    pub neq_count: usize,
    /// Number of comparison atoms.
    pub cmp_count: usize,
    /// Theorem 2's color parameter `k` when `≠` atoms exist.
    pub color_parameter: Option<usize>,
    /// Hypertree width: 1 for acyclic queries, the decomposition search's
    /// result for cyclic ones (`None` when the body has no relational
    /// structure to decompose).
    pub hypertree_width: Option<usize>,
    /// Is `hypertree_width` exact, or the heuristic's verified upper bound?
    pub width_exact: bool,
    /// The decomposition backing `hypertree_width` for cyclic queries (the
    /// hypertree engine evaluates this directly; `None` for acyclic queries,
    /// whose join tree already serves).
    pub decomposition: Option<HypertreeDecomposition>,
    /// The Fig. 1 cell.
    pub cell: FigCell,
    /// One-line summary quoting the relevant theorem.
    pub summary: &'static str,
    /// The engine the cell recommends (the planner makes the final call).
    pub engine_hint: &'static str,
}

const SUMMARY_PURE: &str =
    "acyclic conjunctive query: polynomial combined complexity (Yannakakis [18])";
const SUMMARY_NEQ: &str = "acyclic with ≠: fixed-parameter tractable by color coding (Theorem 2)";
const SUMMARY_CMP: &str =
    "acyclic with comparisons: W[1]-complete (Theorem 3); expect q in the exponent";
const SUMMARY_MIXED: &str = "≠ and < mixed: at least W[1]-hard (Theorem 3 applies to the < part)";
const SUMMARY_INCONSISTENT: &str = "comparison system inconsistent: Q(d) = ∅ for every d";
const SUMMARY_CYCLIC: &str = "cyclic conjunctive query: W[1]-complete (Theorem 1)";
const SUMMARY_BOUNDED: &str =
    "cyclic of bounded hypertree width: polynomial by bag evaluation (Gottlob–Leone–Scarcello)";

/// Which Fig. 1 cell does `q` occupy? Exactly the paper's decision
/// procedure: comparisons are collapsed first (Theorem 3 defines
/// acyclicity on the collapsed query), `≠`/`<` mixtures are at least as
/// hard as Theorem 3, and otherwise raw hypergraph acyclicity splits
/// Yannakakis \[18\] from Theorems 1 and 2.
fn decide_cell(q: &ConjunctiveQuery) -> (FigCell, &'static str) {
    let has_neq = !q.neqs.is_empty();
    let has_cmp = !q.comparisons.is_empty();
    if has_cmp && !has_neq {
        return match comparisons::collapse_query(q) {
            Ok(None) => (FigCell::InconsistentComparisons, SUMMARY_INCONSISTENT),
            Ok(Some(collapsed)) if collapsed.is_acyclic() => {
                (FigCell::AcyclicComparisons, SUMMARY_CMP)
            }
            _ => (FigCell::Cyclic, SUMMARY_CYCLIC),
        };
    }
    if has_cmp && has_neq {
        return (FigCell::AcyclicComparisons, SUMMARY_MIXED);
    }
    if !q.is_acyclic() {
        return (FigCell::Cyclic, SUMMARY_CYCLIC);
    }
    if has_neq {
        (FigCell::AcyclicNeq, SUMMARY_NEQ)
    } else {
        (FigCell::AcyclicPure, SUMMARY_PURE)
    }
}

fn engine_hint(cell: FigCell) -> &'static str {
    match cell {
        FigCell::AcyclicPure => "yannakakis",
        FigCell::AcyclicNeq => "color coding",
        FigCell::InconsistentComparisons => "constant (empty answer)",
        FigCell::AcyclicComparisons | FigCell::Cyclic => "naive backtracking",
        FigCell::CyclicBoundedWidth => "hypertree",
    }
}

/// Run the structural-classification pass alone (cheap: GYO + parameter
/// counting + comparison-consistency + width-gated decomposition search, no
/// evaluation), with the default [`DEFAULT_WIDTH_LIMIT`]. `pq_core::classify`
/// is a thin adapter over this.
pub fn structure_of(q: &ConjunctiveQuery) -> StructureReport {
    structure_with_width_limit(q, DEFAULT_WIDTH_LIMIT)
}

/// [`structure_of`] with an explicit hypertree-width limit: widths up to
/// `width_limit` are searched exactly (on small hypergraphs) and promote a
/// pure cyclic query into the `cyclic-bounded-width` cell; above the limit
/// only the heuristic's upper-bound certificate is reported.
pub fn structure_with_width_limit(q: &ConjunctiveQuery, width_limit: usize) -> StructureReport {
    let hg = q.hypergraph();
    let cycle_witness = cyclic_core(&hg);
    let color_parameter = if q.neqs.is_empty() {
        None
    } else {
        Some(pq_engine::colorcoding::NeqPartition::build(q, &hg).k())
    };
    let (mut cell, mut summary) = decide_cell(q);

    // The width pass: acyclic = width 1 by definition (GLS); for cyclic
    // hypergraphs run the gated decomposition search. A *pure* cyclic query
    // within the limit moves to the tractable bounded-width cell — with
    // `≠`/comparison atoms the hypertree engine does not apply, but the
    // width is still reported.
    let (hypertree_width, width_exact, decomposition) = if cycle_witness.is_none() {
        (Some(1), true, None)
    } else {
        match decompose(&hg, width_limit) {
            Some(d) => (Some(d.width()), d.is_exact(), Some(d)),
            None => (None, false, None),
        }
    };
    if cell == FigCell::Cyclic && q.is_pure() {
        if let Some(w) = hypertree_width {
            if w <= width_limit {
                cell = FigCell::CyclicBoundedWidth;
                summary = SUMMARY_BOUNDED;
            }
        }
    }

    StructureReport {
        acyclic: cycle_witness.is_none(),
        cycle_witness,
        q: q.size(),
        v: q.num_variables(),
        max_arity: q.max_arity(),
        neq_count: q.neqs.len(),
        cmp_count: q.comparisons.len(),
        color_parameter,
        hypertree_width,
        width_exact,
        decomposition,
        cell,
        summary,
        engine_hint: engine_hint(cell),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::parse_cq;

    #[test]
    fn cells_cover_the_landscape() {
        let r = structure_of(&parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap());
        assert_eq!(r.cell, FigCell::AcyclicPure);
        assert!(r.acyclic);
        assert_eq!(r.engine_hint, "yannakakis");
        assert_eq!(r.max_arity, 2);

        let r = structure_of(&parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap());
        assert_eq!(r.cell, FigCell::AcyclicNeq);
        assert_eq!(r.color_parameter, Some(2));
        assert_eq!(r.neq_count, 1);

        let r = structure_of(&parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap());
        assert_eq!(r.cell, FigCell::CyclicBoundedWidth);
        assert_eq!(r.cycle_witness, Some(vec![0, 1, 2]));
        assert_eq!(r.hypertree_width, Some(2));
        assert!(r.width_exact);
        assert!(r.decomposition.is_some());
        assert_eq!(r.engine_hint, "hypertree");

        let r = structure_of(&parse_cq("G :- R(x, y), x < y, y < x.").unwrap());
        assert_eq!(r.cell, FigCell::InconsistentComparisons);
        assert_eq!(r.cmp_count, 2);

        let r = structure_of(&parse_cq("G :- R(x, y), x != y, x < y.").unwrap());
        assert_eq!(r.cell, FigCell::AcyclicComparisons, "mixed constraints");
    }

    #[test]
    fn width_limit_and_purity_gate_the_bounded_cell() {
        // Below the limit the triangle is tractable; with limit 1 the
        // heuristic certificate (width 2) exceeds it and the cell reverts.
        let tri = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let r = structure_with_width_limit(&tri, 1);
        assert_eq!(r.cell, FigCell::Cyclic);
        assert_eq!(r.hypertree_width, Some(2));
        assert!(!r.width_exact);
        assert_eq!(r.engine_hint, "naive backtracking");

        // A cyclic query with a ≠ atom keeps its width report but stays in
        // the plain cyclic cell: the hypertree engine is pure-only.
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x), x != y.").unwrap();
        let r = structure_of(&q);
        assert_eq!(r.cell, FigCell::Cyclic);
        assert_eq!(r.hypertree_width, Some(2));

        // Acyclic queries are width 1 by definition, no decomposition stored.
        let r = structure_of(&parse_cq("G(x, z) :- R(x, y), S(y, z).").unwrap());
        assert_eq!(r.hypertree_width, Some(1));
        assert!(r.width_exact);
        assert!(r.decomposition.is_none());
    }

    #[test]
    fn collapse_can_restore_the_acyclic_cell_but_not_the_raw_verdict() {
        // The raw hypergraph verdict (what the join-tree builder sees) is
        // independent of comparison collapse.
        let q = parse_cq("G :- R(s, t), S(t, s), s <= t, t <= s.").unwrap();
        let r = structure_of(&q);
        assert_eq!(r.cell, FigCell::AcyclicComparisons);
        assert_eq!(
            r.acyclic,
            pq_hypergraph::join_tree(&q.hypergraph()).is_some()
        );
    }
}
