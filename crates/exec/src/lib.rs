//! `pq-exec`: a std-only structured-parallelism runtime for intra-query
//! execution.
//!
//! Every engine in `pq-engine` is single-threaded by construction; the
//! service layer above parallelizes *across* queries. This crate supplies the
//! missing axis — parallelism *inside* one query — without pulling in a
//! threadpool dependency: all concurrency is [`std::thread::scope`]d, so
//! worker lifetimes are bounded by the call that spawned them and panics
//! propagate to the caller instead of getting lost on a detached thread.
//!
//! The design is morsel-driven: a [`Pool`] call takes a slice of work items
//! (partitions, join-tree nodes, hash trials, rule instantiations, …) and a
//! closure, and workers *claim* items off a shared atomic cursor rather than
//! being dealt fixed shards. That keeps stragglers from idling the pool when
//! item costs are skewed — the common case for query operators.
//!
//! Determinism contract: results are merged **in item order**, never in
//! completion order. [`Pool::run`] and [`Pool::try_run`] return outputs
//! indexed exactly like their inputs, so any caller that fixes its item list
//! independently of the thread count gets byte-identical output at any
//! degree of parallelism. [`Pool::find_first`] resolves races by *smallest
//! item index*, mirroring what a sequential scan of the same items would
//! decide.
//!
//! The pool is deliberately **not** a queue of background threads: threads
//! are spawned per call and joined before the call returns. For the
//! coarse-grained items this workspace schedules (a hash-join partition, a
//! color-coding trial) spawn cost is noise, and structured lifetimes are
//! what make it safe to capture `&Relation` and friends without `Arc`ing
//! the world.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment variable consulted by [`default_threads`] (and therefore by
/// every component that sizes itself "from the environment"): set
/// `PQ_EXEC_THREADS=n` to force an intra-query parallelism degree.
pub const THREADS_ENV_VAR: &str = "PQ_EXEC_THREADS";

/// The intra-query parallelism degree implied by the environment:
/// `PQ_EXEC_THREADS` if set to a positive integer, else the machine's
/// available parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(s) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `0..len` into at most `tasks` contiguous, non-empty ranges of
/// near-equal size, in order. With an order-preserving merge (what
/// [`Pool::run`] does), the chunking granularity never affects output — it
/// only bounds scheduling slack — so callers are free to pass any task
/// count without risking nondeterminism.
pub fn morsels(len: usize, tasks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let tasks = tasks.clamp(1, len);
    let base = len / tasks;
    let extra = len % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for i in 0..tasks {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// One trial's outcome for [`Pool::find_first`].
///
/// `Retire` exists for cooperative races: when a winner cancels the
/// stragglers, a cancelled trial reports `Retire` ("I stopped because the
/// race is over"), which is *non-decisive* — unlike `Abort`, it can never
/// override a `Hit` at a higher index.
#[derive(Debug)]
pub enum Verdict<O, E> {
    /// The trial succeeded with this witness; decisive.
    Hit(O),
    /// The trial completed without a witness; keep looking.
    Miss,
    /// The trial failed; decisive (a sequential scan would have stopped
    /// here and surfaced the error).
    Abort(E),
    /// The trial was abandoned because the race was already decided;
    /// non-decisive.
    Retire,
}

/// Point-in-time occupancy counters for a [`Pool`] (see [`Pool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// The configured parallelism degree.
    pub threads: usize,
    /// Workers currently inside a pool call.
    pub active: usize,
    /// High-water mark of `active` over the pool's lifetime.
    pub peak: usize,
    /// Total work items executed through this pool.
    pub tasks_run: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    active: AtomicUsize,
    peak: AtomicUsize,
    tasks_run: AtomicU64,
}

impl PoolInner {
    fn enter(&self) {
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII occupancy accounting for one worker thread.
struct Occupied<'a>(&'a PoolInner);

impl<'a> Occupied<'a> {
    fn new(inner: &'a PoolInner) -> Self {
        inner.enter();
        Occupied(inner)
    }
}

impl Drop for Occupied<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

/// A handle configuring scoped parallel execution: a parallelism degree plus
/// shared occupancy counters.
///
/// Cheap to clone (the counters are `Arc`-shared, so clones report into the
/// same [`PoolStats`]); a degree-1 pool runs everything inline on the
/// calling thread, making serial execution the `threads == 1` special case
/// of the same code path rather than a separate one.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    inner: Arc<PoolInner>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// A pool with the given parallelism degree (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
            inner: Arc::new(PoolInner::default()),
        }
    }

    /// A pool sized by [`default_threads`] (`PQ_EXEC_THREADS`, else the
    /// machine).
    pub fn from_env() -> Self {
        Pool::new(default_threads())
    }

    /// The configured parallelism degree.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot the occupancy counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            active: self.inner.active.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
            tasks_run: self.inner.tasks_run.load(Ordering::Relaxed),
        }
    }

    /// Apply `f` to every item and return the outputs **in item order**.
    ///
    /// Workers claim items off a shared cursor (morsel-at-a-time); a panic
    /// in `f` propagates to the caller after the scope unwinds. With the
    /// same `items`, output is identical at any thread count.
    pub fn run<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _occ = Occupied::new(&self.inner);
            self.inner.tasks_run.fetch_add(n as u64, Ordering::Relaxed);
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let _occ = Occupied::new(&self.inner);
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            self.inner.tasks_run.fetch_add(1, Ordering::Relaxed);
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        merge_indexed(n, parts)
    }

    /// Fallible [`Pool::run`]: apply `f` to every item; on success return
    /// the outputs in item order, otherwise the error from the
    /// **smallest-indexed** failing item.
    ///
    /// After any failure workers stop claiming new items, so a tripped
    /// resource budget stops the whole pool promptly. Smallest-index error
    /// selection keeps the surfaced error stable: it is the failure a
    /// sequential scan over the same items would have hit first (among the
    /// items that ran).
    pub fn try_run<I, O, E, F>(&self, items: &[I], f: F) -> Result<Vec<O>, E>
    where
        I: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &I) -> Result<O, E> + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _occ = Occupied::new(&self.inner);
            let mut out = Vec::with_capacity(n);
            for (i, it) in items.iter().enumerate() {
                self.inner.tasks_run.fetch_add(1, Ordering::Relaxed);
                out.push(f(i, it)?);
            }
            return Ok(out);
        }
        let next = AtomicUsize::new(0);
        // Smallest failing index seen so far; workers stop claiming items at
        // or past it (their results could never be returned).
        let failed_at = AtomicUsize::new(usize::MAX);
        // Per-worker partial results: successes with their item indexes,
        // plus the smallest-indexed error the worker hit (if any).
        type WorkerPart<O, E> = (Vec<(usize, O)>, Option<(usize, E)>);
        let parts: Vec<WorkerPart<O, E>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let _occ = Occupied::new(&self.inner);
                        let mut local = Vec::new();
                        let mut err: Option<(usize, E)> = None;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n || i >= failed_at.load(Ordering::Relaxed) {
                                break;
                            }
                            self.inner.tasks_run.fetch_add(1, Ordering::Relaxed);
                            match f(i, &items[i]) {
                                Ok(o) => local.push((i, o)),
                                Err(e) => {
                                    failed_at.fetch_min(i, Ordering::Relaxed);
                                    if err.as_ref().is_none_or(|(j, _)| i < *j) {
                                        err = Some((i, e));
                                    }
                                }
                            }
                        }
                        (local, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut first_err: Option<(usize, E)> = None;
        let mut oks = Vec::new();
        for (local, err) in parts {
            oks.push(local);
            if let Some((i, e)) = err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(merge_indexed(n, oks)),
        }
    }

    /// Race `f` over the items and return the **smallest-indexed decisive
    /// outcome**: `Ok(Some((i, o)))` for the lowest [`Verdict::Hit`],
    /// `Err(e)` if a [`Verdict::Abort`] occurred at a lower index than every
    /// hit, `Ok(None)` when every item missed or retired.
    ///
    /// Once any decisive verdict lands, workers stop claiming items past it.
    /// Callers running cooperative races (first-hit-wins with cancellation)
    /// should report cancelled stragglers as [`Verdict::Retire`] so they
    /// cannot masquerade as failures.
    pub fn find_first<I, O, E, F>(&self, items: &[I], f: F) -> Result<Option<(usize, O)>, E>
    where
        I: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &I) -> Verdict<O, E> + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _occ = Occupied::new(&self.inner);
            for (i, it) in items.iter().enumerate() {
                self.inner.tasks_run.fetch_add(1, Ordering::Relaxed);
                match f(i, it) {
                    Verdict::Hit(o) => return Ok(Some((i, o))),
                    Verdict::Abort(e) => return Err(e),
                    Verdict::Miss | Verdict::Retire => {}
                }
            }
            return Ok(None);
        }
        let next = AtomicUsize::new(0);
        let decided_at = AtomicUsize::new(usize::MAX);
        let parts: Vec<Vec<(usize, Verdict<O, E>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let _occ = Occupied::new(&self.inner);
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n || i > decided_at.load(Ordering::Relaxed) {
                                break;
                            }
                            self.inner.tasks_run.fetch_add(1, Ordering::Relaxed);
                            let v = f(i, &items[i]);
                            match v {
                                Verdict::Hit(_) | Verdict::Abort(_) => {
                                    decided_at.fetch_min(i, Ordering::Relaxed);
                                    local.push((i, v));
                                }
                                Verdict::Miss | Verdict::Retire => {}
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut best: Option<(usize, Verdict<O, E>)> = None;
        for (i, v) in parts.into_iter().flatten() {
            if best.as_ref().is_none_or(|(j, _)| i < *j) {
                best = Some((i, v));
            }
        }
        match best {
            Some((i, Verdict::Hit(o))) => Ok(Some((i, o))),
            Some((_, Verdict::Abort(e))) => Err(e),
            _ => Ok(None),
        }
    }
}

/// Place `(index, value)` fragments into a dense, input-ordered vector.
fn merge_indexed<O>(n: usize, parts: Vec<Vec<(usize, O)>>) -> Vec<O> {
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, o) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} produced twice");
        slots[i] = Some(o);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_item_order_at_any_degree() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for t in [1, 2, 8, 32] {
            let pool = Pool::new(t);
            let got = pool.run(&items, |_, x| x * 3);
            assert_eq!(got, serial, "degree {t}");
        }
    }

    #[test]
    fn try_run_surfaces_smallest_index_error() {
        let items: Vec<usize> = (0..64).collect();
        for t in [1, 2, 8] {
            let pool = Pool::new(t);
            let res: Result<Vec<usize>, usize> =
                pool.try_run(&items, |i, x| if *x >= 10 { Err(i) } else { Ok(*x) });
            let e = res.unwrap_err();
            // Exactly which failing item is surfaced can vary with timing,
            // but it is always a genuinely failing one, and at degree 1 it
            // is the first.
            assert!(e >= 10, "degree {t}: surfaced a non-failing index {e}");
            if t == 1 {
                assert_eq!(e, 10);
            }
        }
    }

    #[test]
    fn try_run_ok_is_ordered() {
        let items: Vec<u64> = (0..33).collect();
        let pool = Pool::new(4);
        let got: Vec<u64> = pool
            .try_run(&items, |_, x| Ok::<u64, ()>(x + 1))
            .expect("no failures");
        assert_eq!(got, (1..=33).collect::<Vec<u64>>());
    }

    #[test]
    fn find_first_picks_lowest_hit() {
        let items: Vec<usize> = (0..64).collect();
        for t in [1, 2, 8] {
            let pool = Pool::new(t);
            let got = pool
                .find_first(&items, |_, x| {
                    if *x == 7 || *x == 40 {
                        Verdict::Hit(*x)
                    } else {
                        Verdict::<usize, ()>::Miss
                    }
                })
                .expect("no aborts");
            // 40 may or may not have been claimed before 7 decided, but the
            // merge always prefers the smaller index.
            assert_eq!(got, Some((7, 7)), "degree {t}");
        }
    }

    #[test]
    fn find_first_abort_below_hit_wins() {
        let items: Vec<usize> = (0..32).collect();
        let pool = Pool::new(4);
        let got = pool.find_first(&items, |_, x| match *x {
            3 => Verdict::Abort("boom"),
            9 => Verdict::Hit(*x),
            _ => Verdict::Miss,
        });
        assert_eq!(got, Err("boom"));
    }

    #[test]
    fn find_first_retire_is_not_decisive() {
        let items: Vec<usize> = (0..8).collect();
        let pool = Pool::new(2);
        let got = pool.find_first(&items, |_, x| {
            if *x == 5 {
                Verdict::Hit(*x)
            } else {
                Verdict::<usize, ()>::Retire
            }
        });
        assert_eq!(got, Ok(Some((5, 5))));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&items, |_, x| {
                assert!(*x != 11, "worker panic");
                *x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn occupancy_counters_track_peak_and_tasks() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let _ = pool.run(&items, |_, x| *x);
        let s = pool.stats();
        assert_eq!(s.threads, 4);
        assert_eq!(s.active, 0, "all workers left the scope");
        assert!(s.peak >= 1);
        assert_eq!(s.tasks_run, 100);
    }

    #[test]
    fn morsels_cover_the_range_in_order() {
        for (len, tasks) in [(0, 4), (1, 4), (10, 3), (10, 100), (7, 1)] {
            let m = morsels(len, tasks);
            let mut covered = 0;
            for r in &m {
                assert_eq!(r.start, covered, "contiguous and ordered");
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, len);
            assert!(m.len() <= tasks.max(1));
        }
    }

    #[test]
    fn degree_one_pool_runs_inline() {
        let pool = Pool::new(1);
        let items = vec![1u64, 2, 3];
        assert_eq!(pool.run(&items, |_, x| x * 2), vec![2, 4, 6]);
        assert_eq!(pool.stats().peak, 1);
    }
}
