//! Structural fingerprints for conjunctive queries.
//!
//! A service that caches plans and results needs a *normalization* of query
//! text: two requests that differ only in whitespace, variable names, or the
//! orientation of a (symmetric) `≠` atom should share a cache entry. The
//! canonical form computed here renames variables to `?0, ?1, …` in
//! first-occurrence order (head, then relational atoms, then constraints —
//! the order of [`ConjunctiveQuery::variables`]) and orients every `≠` atom
//! with its lexicographically smaller side first. Atom order is *not*
//! normalized: reordering atoms preserves semantics but full canonicalization
//! is graph-isomorphism-hard (Chandra–Merlin), and a cache only needs
//! soundness — distinct keys for equivalent queries cost a miss, never a
//! wrong answer.
//!
//! The fingerprint is the FNV-1a 64-bit hash of the canonical form: stable
//! across processes and Rust versions (unlike `DefaultHasher`), so it can be
//! persisted or sent over a wire.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cq::ConjunctiveQuery;
use crate::term::Term;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice (the stable hash underlying [`fingerprint`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn render_term(out: &mut String, t: &Term, names: &HashMap<&str, usize>) {
    match t {
        Term::Var(v) => {
            let _ = write!(out, "?{}", names[v.as_str()]);
        }
        Term::Const(c) => {
            // Disambiguate Int(7) from Str("7").
            match c.as_int() {
                Some(i) => {
                    let _ = write!(out, "#{i}");
                }
                None => {
                    let _ = write!(out, "\"{}\"", c.as_str().unwrap_or_default());
                }
            }
        }
    }
}

/// The canonical (alpha-renamed, `≠`-oriented) form of a conjunctive query.
///
/// Two queries have equal canonical forms iff they are identical up to
/// variable renaming, whitespace, and `≠` orientation.
pub fn canonical_form(q: &ConjunctiveQuery) -> String {
    let names: HashMap<&str, usize> = q
        .variables()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let mut out = String::new();
    out.push_str(&q.head_name);
    out.push('(');
    for (i, t) in q.head_terms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_term(&mut out, t, &names);
    }
    out.push_str("):-");
    for a in &q.atoms {
        out.push_str(&a.relation);
        out.push('(');
        for (i, t) in a.terms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_term(&mut out, t, &names);
        }
        out.push(')');
        out.push(';');
    }
    for n in &q.neqs {
        let mut left = String::new();
        let mut right = String::new();
        render_term(&mut left, &n.left, &names);
        render_term(&mut right, &n.right, &names);
        // ≠ is symmetric: orient the smaller rendering first.
        if left > right {
            std::mem::swap(&mut left, &mut right);
        }
        let _ = write!(out, "{left}!={right};");
    }
    for c in &q.comparisons {
        render_term(&mut out, &c.left, &names);
        let _ = write!(out, "{}", c.op);
        render_term(&mut out, &c.right, &names);
        out.push(';');
    }
    out
}

/// A stable 64-bit structural fingerprint of the query (FNV-1a of
/// [`canonical_form`]). Alpha-equivalent queries collide by design; see the
/// module docs for what is and is not normalized.
///
/// Being a 64-bit hash, *accidental* collisions between structurally
/// different queries are possible, so the fingerprint alone must not be
/// used where a wrong match means a wrong answer (e.g. as a complete cache
/// key) — pair it with, or substitute, the full [`canonical_form`] there.
/// It is meant as a compact display/wire identifier.
pub fn fingerprint(q: &ConjunctiveQuery) -> u64 {
    fnv1a(canonical_form(q).as_bytes())
}

impl ConjunctiveQuery {
    /// The stable structural fingerprint of this query (see
    /// [`fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    #[test]
    fn alpha_equivalent_queries_share_a_fingerprint() {
        let a = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let b = parse_cq("G(x) :- EP(x, a), EP(x, b), a != b.").unwrap();
        assert_eq!(canonical_form(&a), canonical_form(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn whitespace_is_invisible() {
        let a = parse_cq("G(x,z):-R(x,y),S(y,z).").unwrap();
        let b = parse_cq("G( x , z ) :-  R(x, y),   S(y, z) .").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn neq_orientation_is_normalized_but_comparisons_are_not() {
        let a = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let b = parse_cq("G(e) :- EP(e, p), EP(e, p2), p2 != p.").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let lt = parse_cq("G(x) :- R(x, y), x < y.").unwrap();
        let gt = parse_cq("G(x) :- R(x, y), y < x.").unwrap();
        assert_ne!(lt.fingerprint(), gt.fingerprint());
    }

    #[test]
    fn distinct_structure_distinct_fingerprint() {
        let pairs = [
            ("G(x) :- R(x, y).", "G(y) :- R(x, y)."),
            ("G(x) :- R(x, 7).", "G(x) :- R(x, \"7\")."),
            ("G(x) :- R(x, y).", "H(x) :- R(x, y)."),
            ("G(x) :- R(x, y).", "G(x) :- R(x, y), S(y)."),
            ("G(x) :- R(x, y), x != y.", "G(x) :- R(x, y), x <= y."),
        ];
        for (l, r) in pairs {
            let ql = parse_cq(l).unwrap();
            let qr = parse_cq(r).unwrap();
            assert_ne!(ql.fingerprint(), qr.fingerprint(), "{l} vs {r}");
        }
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let q = parse_cq("G(x) :- R(x, y), S(y, z), x != z.").unwrap();
        assert_eq!(q.fingerprint(), q.fingerprint());
        // Pin the value: the fingerprint is part of the cache-key contract
        // (stable across processes), so a change here is a cache-format
        // break worth noticing.
        assert_eq!(q.fingerprint(), fnv1a(canonical_form(&q).as_bytes()));
    }
}
