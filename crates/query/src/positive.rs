//! Positive queries: conjunctive queries plus disjunction (Section 3).
//!
//! A positive query is `G = { t0 | φ }` where `φ` is built from relational
//! atoms using `∃`, `∧`, `∨`. Two transformations from the paper live here:
//!
//! * **prenexing** (used in Theorem 1(2): "all queries can be put in prenex
//!   normal form, but this involves renaming of the variables, which in
//!   general increases their number") — [`PositiveQuery::to_prenex`];
//! * **expansion into a union of conjunctive queries** (the parametric
//!   reduction showing positive queries ∈ W\[1\] for parameter `q`) —
//!   [`PositiveQuery::to_union_of_cqs`].

use std::collections::BTreeSet;
use std::fmt;

use crate::cq::ConjunctiveQuery;
use crate::error::{QueryError, Result};
use crate::term::{Atom, Term};

/// A positive formula: atoms, conjunction, disjunction, existential
/// quantification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosFormula {
    /// A relational atom.
    Atom(Atom),
    /// Conjunction of subformulas.
    And(Vec<PosFormula>),
    /// Disjunction of subformulas.
    Or(Vec<PosFormula>),
    /// Existential quantification of a block of variables.
    Exists(Vec<String>, Box<PosFormula>),
}

impl PosFormula {
    /// Conjunction helper.
    pub fn and(fs: impl IntoIterator<Item = PosFormula>) -> PosFormula {
        PosFormula::And(fs.into_iter().collect())
    }

    /// Disjunction helper.
    pub fn or(fs: impl IntoIterator<Item = PosFormula>) -> PosFormula {
        PosFormula::Or(fs.into_iter().collect())
    }

    /// Existential quantification helper.
    pub fn exists<S: Into<String>>(
        vars: impl IntoIterator<Item = S>,
        body: PosFormula,
    ) -> PosFormula {
        PosFormula::Exists(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// Free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        match self {
            PosFormula::Atom(a) => a.variables().into_iter().map(str::to_string).collect(),
            PosFormula::And(fs) | PosFormula::Or(fs) => {
                fs.iter().flat_map(PosFormula::free_variables).collect()
            }
            PosFormula::Exists(vs, b) => {
                let mut s = b.free_variables();
                for v in vs {
                    s.remove(v);
                }
                s
            }
        }
    }

    /// All variable *names* appearing in the formula (free or bound). This is
    /// the paper's parameter `v`: reusing a name in different scopes counts
    /// once — which is exactly why prenexing can increase `v`.
    pub fn all_variable_names(&self) -> BTreeSet<String> {
        match self {
            PosFormula::Atom(a) => a.variables().into_iter().map(str::to_string).collect(),
            PosFormula::And(fs) | PosFormula::Or(fs) => {
                fs.iter().flat_map(PosFormula::all_variable_names).collect()
            }
            PosFormula::Exists(vs, b) => {
                let mut s = b.all_variable_names();
                s.extend(vs.iter().cloned());
                s
            }
        }
    }

    /// All atoms of the formula.
    pub fn atoms(&self) -> Vec<&Atom> {
        match self {
            PosFormula::Atom(a) => vec![a],
            PosFormula::And(fs) | PosFormula::Or(fs) => {
                fs.iter().flat_map(PosFormula::atoms).collect()
            }
            PosFormula::Exists(_, b) => b.atoms(),
        }
    }

    /// Rename free occurrences of variable `old` to `new`.
    pub fn rename_free(&self, old: &str, new: &str) -> PosFormula {
        match self {
            PosFormula::Atom(a) => PosFormula::Atom(Atom::new(
                a.relation.clone(),
                a.terms.iter().map(|t| match t {
                    Term::Var(v) if v == old => Term::var(new),
                    other => other.clone(),
                }),
            )),
            PosFormula::And(fs) => {
                PosFormula::And(fs.iter().map(|f| f.rename_free(old, new)).collect())
            }
            PosFormula::Or(fs) => {
                PosFormula::Or(fs.iter().map(|f| f.rename_free(old, new)).collect())
            }
            PosFormula::Exists(vs, b) => {
                if vs.iter().any(|v| v == old) {
                    // `old` is re-bound here; free occurrences below are shadowed.
                    PosFormula::Exists(vs.clone(), b.clone())
                } else {
                    PosFormula::Exists(vs.clone(), Box::new(b.rename_free(old, new)))
                }
            }
        }
    }

    /// Substitute a constant for free occurrences of a variable.
    pub fn substitute(&self, name: &str, value: &pq_data::Value) -> PosFormula {
        match self {
            PosFormula::Atom(a) => PosFormula::Atom(a.substitute(name, value)),
            PosFormula::And(fs) => {
                PosFormula::And(fs.iter().map(|f| f.substitute(name, value)).collect())
            }
            PosFormula::Or(fs) => {
                PosFormula::Or(fs.iter().map(|f| f.substitute(name, value)).collect())
            }
            PosFormula::Exists(vs, b) => {
                if vs.iter().any(|v| v == name) {
                    PosFormula::Exists(vs.clone(), b.clone())
                } else {
                    PosFormula::Exists(vs.clone(), Box::new(b.substitute(name, value)))
                }
            }
        }
    }

    /// Number of syntactic nodes (used by the `q` metric).
    pub fn node_count(&self) -> usize {
        match self {
            PosFormula::Atom(a) => 1 + a.arity(),
            PosFormula::And(fs) | PosFormula::Or(fs) => {
                1 + fs.iter().map(PosFormula::node_count).sum::<usize>()
            }
            PosFormula::Exists(vs, b) => vs.len() + b.node_count(),
        }
    }
}

impl fmt::Display for PosFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosFormula::Atom(a) => write!(f, "{a}"),
            PosFormula::And(fs) => {
                write!(f, "(")?;
                for (i, c) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            PosFormula::Or(fs) => {
                write!(f, "(")?;
                for (i, c) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            PosFormula::Exists(vs, b) => {
                write!(f, "exists {}. {b}", vs.join(", "))
            }
        }
    }
}

/// A positive query `G(t0) = { t0 | φ }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositiveQuery {
    /// Name of the defined relation.
    pub head_name: String,
    /// Head terms.
    pub head_terms: Vec<Term>,
    /// The positive body formula.
    pub formula: PosFormula,
}

impl PositiveQuery {
    /// Build a positive query.
    pub fn new(
        head_name: impl Into<String>,
        head_terms: impl IntoIterator<Item = Term>,
        formula: PosFormula,
    ) -> PositiveQuery {
        PositiveQuery {
            head_name: head_name.into(),
            head_terms: head_terms.into_iter().collect(),
            formula,
        }
    }

    /// A Boolean positive query.
    pub fn boolean(head_name: impl Into<String>, formula: PosFormula) -> PositiveQuery {
        PositiveQuery::new(head_name, [], formula)
    }

    /// Head variables must be free in the formula.
    pub fn validate(&self) -> Result<()> {
        let free = self.formula.free_variables();
        for t in &self.head_terms {
            if let Some(v) = t.as_var() {
                if !free.contains(v) {
                    return Err(QueryError::UnsafeHeadVariable(v.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Is the query already in prenex form (a chain of leading `∃` blocks
    /// over a quantifier-free matrix)?
    pub fn is_prenex(&self) -> bool {
        fn qfree(f: &PosFormula) -> bool {
            match f {
                PosFormula::Atom(_) => true,
                PosFormula::And(fs) | PosFormula::Or(fs) => fs.iter().all(qfree),
                PosFormula::Exists(..) => false,
            }
        }
        let mut f = &self.formula;
        while let PosFormula::Exists(_, b) = f {
            f = b;
        }
        qfree(f)
    }

    /// For a prenex query: the leading quantifier block (flattened) and the
    /// quantifier-free matrix. `None` when the query is not prenex.
    pub fn prenex_parts(&self) -> Option<(Vec<String>, &PosFormula)> {
        if !self.is_prenex() {
            return None;
        }
        let mut vars = Vec::new();
        let mut f = &self.formula;
        while let PosFormula::Exists(vs, b) = f {
            vars.extend(vs.iter().cloned());
            f = b;
        }
        Some((vars, f))
    }

    /// Prenex normal form: returns the quantified variable block and the
    /// quantifier-free matrix. Bound variables are renamed (`v_0`, `v_1`, …)
    /// where needed to avoid capture — this can *increase* the number of
    /// distinct variable names, which is the paper's caveat about parameter
    /// `v` for non-prenex queries.
    pub fn to_prenex(&self) -> (Vec<String>, PosFormula) {
        // `taken`: names the hoisted quantifiers must avoid — the query's
        // free variables, head variables, and previously hoisted names.
        let mut taken: BTreeSet<String> = self.formula.free_variables();
        taken.extend(
            self.head_terms
                .iter()
                .filter_map(|t| t.as_var())
                .map(str::to_string),
        );
        // `used`: every name ever seen, for fresh-name generation.
        let mut used: BTreeSet<String> = self.formula.all_variable_names();
        used.extend(taken.iter().cloned());
        let mut quants = Vec::new();
        let mut counter = 0usize;
        let matrix = pull_quantifiers(
            &self.formula,
            &mut taken,
            &mut used,
            &mut quants,
            &mut counter,
        );
        (quants, matrix)
    }

    /// Expand into an equivalent union (finite set) of conjunctive queries —
    /// the paper's W\[1\] upper-bound reduction for positive queries under
    /// parameter `q`. The number of disjuncts can be exponential in `q`,
    /// which is fine for a parametric reduction.
    pub fn to_union_of_cqs(&self) -> Vec<ConjunctiveQuery> {
        let (_, matrix) = self.to_prenex();
        dnf(&matrix)
            .into_iter()
            .map(|atoms| {
                ConjunctiveQuery::new(self.head_name.clone(), self.head_terms.clone(), atoms)
            })
            .collect()
    }
}

/// Recursively hoist quantifiers, renaming on collision with any taken name
/// (free variables, head variables, previously hoisted quantifiers).
fn pull_quantifiers(
    f: &PosFormula,
    taken: &mut BTreeSet<String>,
    used: &mut BTreeSet<String>,
    quants: &mut Vec<String>,
    counter: &mut usize,
) -> PosFormula {
    match f {
        PosFormula::Atom(a) => PosFormula::Atom(a.clone()),
        PosFormula::And(fs) => PosFormula::And(
            fs.iter()
                .map(|c| pull_quantifiers(c, taken, used, quants, counter))
                .collect(),
        ),
        PosFormula::Or(fs) => PosFormula::Or(
            fs.iter()
                .map(|c| pull_quantifiers(c, taken, used, quants, counter))
                .collect(),
        ),
        PosFormula::Exists(vs, b) => {
            let mut body = (**b).clone();
            for v in vs {
                let fresh = if taken.contains(v) {
                    loop {
                        let cand = format!("{v}_{counter}");
                        *counter += 1;
                        if !used.contains(&cand) {
                            break cand;
                        }
                    }
                } else {
                    v.clone()
                };
                if &fresh != v {
                    body = body.rename_free(v, &fresh);
                }
                taken.insert(fresh.clone());
                used.insert(fresh.clone());
                quants.push(fresh);
            }
            pull_quantifiers(&body, taken, used, quants, counter)
        }
    }
}

/// Disjunctive normal form of a quantifier-free positive formula: a list of
/// conjunctions of atoms.
fn dnf(f: &PosFormula) -> Vec<Vec<Atom>> {
    match f {
        PosFormula::Atom(a) => vec![vec![a.clone()]],
        PosFormula::Or(fs) => fs.iter().flat_map(dnf).collect(),
        PosFormula::And(fs) => {
            let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
            for c in fs {
                let child = dnf(c);
                let mut next = Vec::with_capacity(acc.len() * child.len());
                for a in &acc {
                    for b in &child {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        PosFormula::Exists(_, b) => dnf(b),
    }
}

impl fmt::Display for PositiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_name)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") := {}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    fn f_atom(rel: &str, vars: &[&str]) -> PosFormula {
        PosFormula::Atom(Atom::new(rel, vars.iter().map(|v| Term::var(*v))))
    }

    #[test]
    fn free_and_all_variables() {
        let f = PosFormula::exists(
            ["y"],
            PosFormula::and([f_atom("R", &["x", "y"]), f_atom("S", &["y"])]),
        );
        assert_eq!(f.free_variables(), BTreeSet::from(["x".to_string()]));
        assert_eq!(
            f.all_variable_names(),
            BTreeSet::from(["x".to_string(), "y".to_string()])
        );
    }

    #[test]
    fn rename_respects_shadowing() {
        // (R(x) ∧ ∃x S(x)): renaming free x must not touch the bound one.
        let f = PosFormula::and([
            f_atom("R", &["x"]),
            PosFormula::exists(["x"], f_atom("S", &["x"])),
        ]);
        let g = f.rename_free("x", "z");
        assert_eq!(
            g,
            PosFormula::and([
                f_atom("R", &["z"]),
                PosFormula::exists(["x"], f_atom("S", &["x"])),
            ])
        );
    }

    #[test]
    fn prenex_renames_sibling_scopes() {
        // (∃y R(x,y)) ∨ (∃y S(x,y)): second y must get a fresh name.
        let q = PositiveQuery::new(
            "G",
            [Term::var("x")],
            PosFormula::or([
                PosFormula::exists(["y"], f_atom("R", &["x", "y"])),
                PosFormula::exists(["y"], f_atom("S", &["x", "y"])),
            ]),
        );
        assert!(!q.is_prenex());
        let (quants, matrix) = q.to_prenex();
        assert_eq!(quants.len(), 2);
        assert_ne!(quants[0], quants[1]);
        // matrix quantifier-free
        assert!(matches!(matrix, PosFormula::Or(_)));
        // original variable count is 2 names; prenexing grew it to 3 — the
        // paper's point about parameter v.
        let mut names = matrix.all_variable_names();
        names.extend(quants.iter().cloned());
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn prenex_avoids_capturing_free_variables() {
        // R(x) ∧ ∃x S(x): the bound x must be renamed, not merged with the
        // free (head) x.
        let q = PositiveQuery::new(
            "G",
            [Term::var("x")],
            PosFormula::and([
                f_atom("R", &["x"]),
                PosFormula::exists(["x"], f_atom("S", &["x"])),
            ]),
        );
        let (quants, matrix) = q.to_prenex();
        assert_eq!(quants.len(), 1);
        assert_ne!(quants[0], "x");
        let PosFormula::And(parts) = matrix else {
            panic!("expected And")
        };
        assert_eq!(parts[0], f_atom("R", &["x"]));
        assert_eq!(parts[1], f_atom("S", &[quants[0].as_str()]));
    }

    #[test]
    fn union_of_cqs_distributes() {
        // R(x) ∧ (S(x) ∨ T(x)) → {R,S}, {R,T}
        let q = PositiveQuery::new(
            "G",
            [Term::var("x")],
            PosFormula::and([
                f_atom("R", &["x"]),
                PosFormula::or([f_atom("S", &["x"]), f_atom("T", &["x"])]),
            ]),
        );
        let cqs = q.to_union_of_cqs();
        assert_eq!(cqs.len(), 2);
        assert_eq!(cqs[0].atoms, vec![atom!("R"; var "x"), atom!("S"; var "x")]);
        assert_eq!(cqs[1].atoms, vec![atom!("R"; var "x"), atom!("T"; var "x")]);
    }

    #[test]
    fn dnf_is_exponential_in_conjunction_of_disjunctions() {
        // (A∨B) ∧ (C∨D) ∧ (E∨F) → 8 disjuncts
        let pair = |a: &str, b: &str| PosFormula::or([f_atom(a, &["x"]), f_atom(b, &["x"])]);
        let q = PositiveQuery::boolean(
            "G",
            PosFormula::and([pair("A", "B"), pair("C", "D"), pair("E", "F")]),
        );
        assert_eq!(q.to_union_of_cqs().len(), 8);
    }

    #[test]
    fn validate_head_must_be_free() {
        let q = PositiveQuery::new(
            "G",
            [Term::var("y")],
            PosFormula::exists(["y"], f_atom("R", &["y"])),
        );
        assert!(q.validate().is_err());
    }

    #[test]
    fn display_round_trips_shapes() {
        let q = PositiveQuery::new(
            "G",
            [Term::var("x")],
            PosFormula::exists(["y"], PosFormula::and([f_atom("R", &["x", "y"])])),
        );
        assert_eq!(q.to_string(), "G(x) := exists y. (R(x, y))");
    }
}
