//! `pq-query` — query ASTs for every language the paper classifies.
//!
//! Section 3 of Papadimitriou & Yannakakis studies four query languages:
//! conjunctive queries ([`cq::ConjunctiveQuery`], optionally extended with
//! the `≠` atoms of Section 5 and the `<`/`≤` comparisons of Theorem 3),
//! positive queries ([`positive::PositiveQuery`]), first-order queries
//! ([`fo::FoQuery`]), and Datalog ([`datalog::DatalogProgram`]). This crate
//! defines those ASTs, a rule-notation/formula parser ([`parser`]), and the
//! two parameters of Fig. 1 — query size `q` and variable count `v`
//! ([`metrics::QueryMetrics`]).

#![warn(missing_docs)]

pub mod cq;
pub mod datalog;
pub mod error;
pub mod fingerprint;
pub mod fo;
pub mod metrics;
pub mod parser;
pub mod positive;
pub mod term;

pub use cq::{CmpOp, Comparison, ConjunctiveQuery, Neq};
pub use datalog::{DatalogProgram, Rule};
pub use error::{QueryError, Result};
pub use fingerprint::{canonical_form, fingerprint};
pub use fo::{FoFormula, FoQuery, Quantifier};
pub use metrics::QueryMetrics;
pub use parser::{parse_cq, parse_datalog, parse_fo, parse_positive};
pub use positive::{PosFormula, PositiveQuery};
pub use term::{Atom, Term};
