//! Error type for query construction, validation, and parsing.

use std::fmt;

/// Errors raised while building, validating, or parsing queries.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// A head variable does not occur in any body atom (unsafe query).
    UnsafeHeadVariable(String),
    /// An inequality or comparison variable does not occur in any relational
    /// atom (unsafe / non-range-restricted).
    UnsafeConstraintVariable(String),
    /// An inequality/comparison between two constants (degenerate; callers
    /// should fold it away).
    ConstantConstraint(String),
    /// The query body has no relational atoms.
    EmptyBody,
    /// A parse error with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A Datalog program referred to no rules for its goal, or had other
    /// structural problems.
    BadProgram(String),
    /// A Datalog rule is unsafe: a head variable does not occur in the
    /// rule's body (the analyzer reports the same condition as `PQA502`).
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
        /// The unbound head variable.
        variable: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVariable(v) => {
                write!(f, "head variable `{v}` does not occur in the body")
            }
            QueryError::UnsafeConstraintVariable(v) => {
                write!(
                    f,
                    "constraint variable `{v}` does not occur in any relational atom"
                )
            }
            QueryError::ConstantConstraint(c) => {
                write!(f, "constraint `{c}` relates two constants")
            }
            QueryError::EmptyBody => write!(f, "query body has no relational atoms"),
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::BadProgram(m) => write!(f, "bad Datalog program: {m}"),
            QueryError::UnsafeRule { rule, variable } => {
                write!(
                    f,
                    "unsafe rule `{rule}`: head variable `{variable}` does not occur in the body"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for this crate.
pub type Result<T, E = QueryError> = std::result::Result<T, E>;
