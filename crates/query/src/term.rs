//! Terms and atoms: the shared building blocks of every query language in
//! the paper.

use std::fmt;

use pq_data::Value;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant of the database domain.
    Const(Value),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Build a constant term.
    pub fn cons(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, when this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, when this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Substitute: if this term is the variable `name`, replace it with the
    /// constant `value`; otherwise keep it.
    pub fn substitute(&self, name: &str, value: &Value) -> Term {
        match self {
            Term::Var(v) if v == name => Term::Const(value.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Int(i)) => write!(f, "{i}"),
            Term::Const(Value::Str(s)) => write!(f, "\"{s}\""),
        }
    }
}

/// A relational atom `R(t1, …, tr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: impl IntoIterator<Item = Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The distinct variables of the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !seen.contains(&v.as_str()) {
                    seen.push(v.as_str());
                }
            }
        }
        seen
    }

    /// The constants appearing in the atom.
    pub fn constants(&self) -> Vec<&Value> {
        self.terms.iter().filter_map(Term::as_const).collect()
    }

    /// Substitute a constant for a variable throughout the atom.
    pub fn substitute(&self, name: &str, value: &Value) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| t.substitute(name, value))
                .collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for atoms: `atom!("R"; var "x", val 3)`.
#[macro_export]
macro_rules! atom {
    ($rel:expr $(; $($kind:ident $arg:expr),*)?) => {
        $crate::term::Atom::new(
            $rel,
            vec![$($($crate::atom!(@term $kind $arg)),*)?],
        )
    };
    (@term var $v:expr) => { $crate::term::Term::var($v) };
    (@term val $v:expr) => { $crate::term::Term::cons($v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let v = Term::var("x");
        let c = Term::cons(5);
        assert_eq!(v.as_var(), Some("x"));
        assert!(v.is_var());
        assert_eq!(c.as_const(), Some(&Value::int(5)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn substitution_targets_only_named_variable() {
        let a = Atom::new("R", [Term::var("x"), Term::var("y"), Term::cons(1)]);
        let b = a.substitute("x", &Value::int(9));
        assert_eq!(b.terms, vec![Term::cons(9), Term::var("y"), Term::cons(1)]);
    }

    #[test]
    fn atom_variables_dedup_in_order() {
        let a = Atom::new("R", [Term::var("y"), Term::var("x"), Term::var("y")]);
        assert_eq!(a.variables(), vec!["y", "x"]);
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn display_forms() {
        let a = Atom::new("Edge", [Term::var("x"), Term::cons("n1"), Term::cons(3)]);
        assert_eq!(a.to_string(), "Edge(x, \"n1\", 3)");
    }

    #[test]
    fn atom_macro() {
        let a = atom!("R"; var "x", val 3);
        assert_eq!(a.relation, "R");
        assert_eq!(a.terms, vec![Term::var("x"), Term::cons(3)]);
        let b = atom!("P");
        assert_eq!(b.arity(), 0);
    }
}
