//! Datalog programs: positive queries plus recursion (Section 3).
//!
//! A Datalog query is a set of rules over the database (EDB) relations and
//! new (IDB) relations, one of which is the distinguished *goal*. Section 4
//! of the paper shows that with all relations restricted to fixed arity,
//! Datalog evaluation is W\[1\]-complete, and that without the restriction the
//! query size is *provably* in the exponent (Vardi \[16\]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::{QueryError, Result};
use crate::term::Atom;

/// A single Datalog rule `H(t0) :- B1(t1), …, Bs(ts)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: impl IntoIterator<Item = Atom>) -> Rule {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }

    /// Safety: every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        self.unsafe_variables().is_empty()
    }

    /// The head variables that make the rule unsafe: those not bound by any
    /// body atom (in head order, deduplicated). Empty iff [`Rule::is_safe`].
    pub fn unsafe_variables(&self) -> Vec<&str> {
        let body_vars: BTreeSet<&str> = self.body.iter().flat_map(|a| a.variables()).collect();
        let mut seen = BTreeSet::new();
        self.head
            .variables()
            .into_iter()
            .filter(|v| !body_vars.contains(v) && seen.insert(*v))
            .collect()
    }

    /// Distinct variable names of the rule.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut s: BTreeSet<&str> = self.head.variables().into_iter().collect();
        s.extend(self.body.iter().flat_map(|a| a.variables()));
        s
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A Datalog program with a distinguished goal relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogProgram {
    /// The rules.
    pub rules: Vec<Rule>,
    /// Name of the goal (output) IDB relation.
    pub goal: String,
}

impl DatalogProgram {
    /// Build a program.
    pub fn new(rules: impl IntoIterator<Item = Rule>, goal: impl Into<String>) -> DatalogProgram {
        DatalogProgram {
            rules: rules.into_iter().collect(),
            goal: goal.into(),
        }
    }

    /// The IDB relations: those defined by some rule head.
    pub fn idb_relations(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect()
    }

    /// The EDB relations: those used in bodies but never defined.
    pub fn edb_relations(&self) -> BTreeSet<&str> {
        let idb = self.idb_relations();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.relation.as_str())
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// Maximum arity over all atoms (head or body). Section 4's W\[1\]
    /// membership argument applies when this is bounded independent of the
    /// parameter.
    pub fn max_arity(&self) -> usize {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .map(Atom::arity)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of distinct variables in a single rule (the per-stage
    /// conjunctive-query parameter of Section 4's bottom-up argument).
    pub fn max_rule_variables(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.variables().len())
            .max()
            .unwrap_or(0)
    }

    /// The predicate dependency graph: each head relation mapped to the set
    /// of relations (EDB and IDB) its defining rules use. Edges point from
    /// the head to what it *depends on* — the direction goal-reachability
    /// walks.
    pub fn dependencies(&self) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut g: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for r in &self.rules {
            let deps = g.entry(r.head.relation.as_str()).or_default();
            deps.extend(r.body.iter().map(|a| a.relation.as_str()));
        }
        g
    }

    /// The relations reachable from the goal along dependency edges
    /// (including the goal itself when it is defined). A rule whose head is
    /// *not* in this set can never contribute to the goal relation.
    pub fn reachable_from_goal(&self) -> BTreeSet<&str> {
        let deps = self.dependencies();
        let mut reached = BTreeSet::new();
        let mut stack = vec![self.goal.as_str()];
        while let Some(p) = stack.pop() {
            if !reached.insert(p) {
                continue;
            }
            if let Some(next) = deps.get(p) {
                stack.extend(next.iter().copied());
            }
        }
        reached
    }

    /// Strongly connected components of the IDB-only dependency graph, in
    /// reverse topological order (callees before callers — the goal's
    /// component comes last when every IDB is goal-reachable). Each
    /// component's predicates are sorted. Tarjan's algorithm, iterative so
    /// deep rule chains cannot overflow the stack.
    pub fn idb_sccs(&self) -> Vec<Vec<&str>> {
        let idb = self.idb_relations();
        let succ: BTreeMap<&str, Vec<&str>> = self
            .dependencies()
            .into_iter()
            .filter(|(h, _)| idb.contains(h))
            .map(|(h, deps)| {
                let next: Vec<&str> = deps.into_iter().filter(|d| idb.contains(d)).collect();
                (h, next)
            })
            .collect();

        struct Tarjan<'a> {
            index: BTreeMap<&'a str, usize>,
            lowlink: BTreeMap<&'a str, usize>,
            on_stack: BTreeSet<&'a str>,
            stack: Vec<&'a str>,
            next_index: usize,
            sccs: Vec<Vec<&'a str>>,
        }
        let mut t = Tarjan {
            index: BTreeMap::new(),
            lowlink: BTreeMap::new(),
            on_stack: BTreeSet::new(),
            stack: Vec::new(),
            next_index: 0,
            sccs: Vec::new(),
        };
        // Explicit DFS frames: (node, index of the next successor to visit).
        for &root in succ.keys() {
            if t.index.contains_key(root) {
                continue;
            }
            let mut frames: Vec<(&str, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
                if *ci == 0 {
                    t.index.insert(v, t.next_index);
                    t.lowlink.insert(v, t.next_index);
                    t.next_index += 1;
                    t.stack.push(v);
                    t.on_stack.insert(v);
                }
                let children = &succ[v];
                if let Some(&w) = children.get(*ci) {
                    *ci += 1;
                    if !t.index.contains_key(w) {
                        frames.push((w, 0));
                    } else if t.on_stack.contains(w) {
                        let lw = t.index[w].min(t.lowlink[v]);
                        t.lowlink.insert(v, lw);
                    }
                } else {
                    if t.lowlink[v] == t.index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = t.stack.pop() {
                            t.on_stack.remove(w);
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        t.sccs.push(scc);
                    }
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        let lv = t.lowlink[v].min(t.lowlink[parent]);
                        t.lowlink.insert(parent, lv);
                    }
                }
            }
        }
        t.sccs
    }

    /// Validate: all rules safe, goal defined, arities consistent per
    /// relation name.
    pub fn validate(&self) -> Result<()> {
        if self.rules.is_empty() {
            return Err(QueryError::BadProgram("no rules".into()));
        }
        for r in &self.rules {
            if let Some(v) = r.unsafe_variables().first() {
                return Err(QueryError::UnsafeRule {
                    rule: r.to_string(),
                    variable: (*v).to_string(),
                });
            }
        }
        if !self.idb_relations().contains(self.goal.as_str()) {
            return Err(QueryError::BadProgram(format!(
                "goal `{}` has no defining rule",
                self.goal
            )));
        }
        let mut arity: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for r in &self.rules {
            for a in std::iter::once(&r.head).chain(r.body.iter()) {
                match arity.get(a.relation.as_str()) {
                    Some(&k) if k != a.arity() => {
                        return Err(QueryError::BadProgram(format!(
                            "relation `{}` used with arities {k} and {}",
                            a.relation,
                            a.arity()
                        )))
                    }
                    Some(_) => {}
                    None => {
                        arity.insert(a.relation.as_str(), a.arity());
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        write!(f, "?- {}", self.goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    /// Transitive closure of E — the canonical Datalog program.
    pub(crate) fn tc() -> DatalogProgram {
        DatalogProgram::new(
            [
                Rule::new(atom!("T"; var "x", var "y"), [atom!("E"; var "x", var "y")]),
                Rule::new(
                    atom!("T"; var "x", var "z"),
                    [atom!("E"; var "x", var "y"), atom!("T"; var "y", var "z")],
                ),
            ],
            "T",
        )
    }

    #[test]
    fn edb_idb_split() {
        let p = tc();
        assert_eq!(p.idb_relations(), BTreeSet::from(["T"]));
        assert_eq!(p.edb_relations(), BTreeSet::from(["E"]));
        assert_eq!(p.max_arity(), 2);
        assert_eq!(p.max_rule_variables(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let p = DatalogProgram::new(
            [Rule::new(
                atom!("G"; var "x"),
                [atom!("E"; var "y", var "y")],
            )],
            "G",
        );
        assert!(matches!(
            p.validate(),
            Err(QueryError::UnsafeRule { variable, .. }) if variable == "x"
        ));
        assert_eq!(p.rules[0].unsafe_variables(), vec!["x"]);
    }

    #[test]
    fn dependency_graph_and_reachability() {
        // T depends on E and itself; U is disconnected from the goal.
        let mut p = tc();
        p.rules.push(Rule::new(
            atom!("U"; var "x"),
            [atom!("E"; var "x", var "y")],
        ));
        let deps = p.dependencies();
        assert_eq!(deps["T"], BTreeSet::from(["E", "T"]));
        assert_eq!(deps["U"], BTreeSet::from(["E"]));
        assert_eq!(p.reachable_from_goal(), BTreeSet::from(["E", "T"]));
    }

    #[test]
    fn sccs_come_out_in_reverse_topological_order() {
        // A -> B -> {C, D} with C <-> D mutually recursive.
        let p = DatalogProgram::new(
            [
                Rule::new(atom!("A"; var "x"), [atom!("B"; var "x")]),
                Rule::new(
                    atom!("B"; var "x"),
                    [atom!("C"; var "x"), atom!("D"; var "x")],
                ),
                Rule::new(atom!("C"; var "x"), [atom!("D"; var "x")]),
                Rule::new(
                    atom!("D"; var "x"),
                    [atom!("C"; var "x"), atom!("E"; var "x")],
                ),
            ],
            "A",
        );
        let sccs = p.idb_sccs();
        assert_eq!(sccs, vec![vec!["C", "D"], vec!["B"], vec!["A"]]);
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let p = tc();
        assert_eq!(p.idb_sccs(), vec![vec!["T"]]);
    }

    #[test]
    fn missing_goal_rejected() {
        let p = DatalogProgram::new([Rule::new(atom!("T"; var "x"), [atom!("E"; var "x")])], "G");
        assert!(p.validate().is_err());
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let p = DatalogProgram::new(
            [
                Rule::new(atom!("T"; var "x"), [atom!("E"; var "x")]),
                Rule::new(
                    atom!("T"; var "x", var "y"),
                    [atom!("E"; var "x"), atom!("E"; var "y")],
                ),
            ],
            "T",
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_shows_rules_and_goal() {
        let s = tc().to_string();
        assert!(s.contains("T(x, y) :- E(x, y)."));
        assert!(s.ends_with("?- T"));
    }
}
