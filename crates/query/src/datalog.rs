//! Datalog programs: positive queries plus recursion (Section 3).
//!
//! A Datalog query is a set of rules over the database (EDB) relations and
//! new (IDB) relations, one of which is the distinguished *goal*. Section 4
//! of the paper shows that with all relations restricted to fixed arity,
//! Datalog evaluation is W\[1\]-complete, and that without the restriction the
//! query size is *provably* in the exponent (Vardi \[16\]).

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{QueryError, Result};
use crate::term::Atom;

/// A single Datalog rule `H(t0) :- B1(t1), …, Bs(ts)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: impl IntoIterator<Item = Atom>) -> Rule {
        Rule {
            head,
            body: body.into_iter().collect(),
        }
    }

    /// Safety: every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body_vars: BTreeSet<&str> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().iter().all(|v| body_vars.contains(v))
    }

    /// Distinct variable names of the rule.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut s: BTreeSet<&str> = self.head.variables().into_iter().collect();
        s.extend(self.body.iter().flat_map(|a| a.variables()));
        s
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A Datalog program with a distinguished goal relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogProgram {
    /// The rules.
    pub rules: Vec<Rule>,
    /// Name of the goal (output) IDB relation.
    pub goal: String,
}

impl DatalogProgram {
    /// Build a program.
    pub fn new(rules: impl IntoIterator<Item = Rule>, goal: impl Into<String>) -> DatalogProgram {
        DatalogProgram {
            rules: rules.into_iter().collect(),
            goal: goal.into(),
        }
    }

    /// The IDB relations: those defined by some rule head.
    pub fn idb_relations(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect()
    }

    /// The EDB relations: those used in bodies but never defined.
    pub fn edb_relations(&self) -> BTreeSet<&str> {
        let idb = self.idb_relations();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.relation.as_str())
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// Maximum arity over all atoms (head or body). Section 4's W\[1\]
    /// membership argument applies when this is bounded independent of the
    /// parameter.
    pub fn max_arity(&self) -> usize {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .map(Atom::arity)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of distinct variables in a single rule (the per-stage
    /// conjunctive-query parameter of Section 4's bottom-up argument).
    pub fn max_rule_variables(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.variables().len())
            .max()
            .unwrap_or(0)
    }

    /// Validate: all rules safe, goal defined, arities consistent per
    /// relation name.
    pub fn validate(&self) -> Result<()> {
        if self.rules.is_empty() {
            return Err(QueryError::BadProgram("no rules".into()));
        }
        for r in &self.rules {
            if !r.is_safe() {
                return Err(QueryError::BadProgram(format!("unsafe rule: {r}")));
            }
        }
        if !self.idb_relations().contains(self.goal.as_str()) {
            return Err(QueryError::BadProgram(format!(
                "goal `{}` has no defining rule",
                self.goal
            )));
        }
        let mut arity: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for r in &self.rules {
            for a in std::iter::once(&r.head).chain(r.body.iter()) {
                match arity.get(a.relation.as_str()) {
                    Some(&k) if k != a.arity() => {
                        return Err(QueryError::BadProgram(format!(
                            "relation `{}` used with arities {k} and {}",
                            a.relation,
                            a.arity()
                        )))
                    }
                    Some(_) => {}
                    None => {
                        arity.insert(a.relation.as_str(), a.arity());
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        write!(f, "?- {}", self.goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    /// Transitive closure of E — the canonical Datalog program.
    pub(crate) fn tc() -> DatalogProgram {
        DatalogProgram::new(
            [
                Rule::new(atom!("T"; var "x", var "y"), [atom!("E"; var "x", var "y")]),
                Rule::new(
                    atom!("T"; var "x", var "z"),
                    [atom!("E"; var "x", var "y"), atom!("T"; var "y", var "z")],
                ),
            ],
            "T",
        )
    }

    #[test]
    fn edb_idb_split() {
        let p = tc();
        assert_eq!(p.idb_relations(), BTreeSet::from(["T"]));
        assert_eq!(p.edb_relations(), BTreeSet::from(["E"]));
        assert_eq!(p.max_arity(), 2);
        assert_eq!(p.max_rule_variables(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let p = DatalogProgram::new(
            [Rule::new(
                atom!("G"; var "x"),
                [atom!("E"; var "y", var "y")],
            )],
            "G",
        );
        assert!(matches!(p.validate(), Err(QueryError::BadProgram(_))));
    }

    #[test]
    fn missing_goal_rejected() {
        let p = DatalogProgram::new([Rule::new(atom!("T"; var "x"), [atom!("E"; var "x")])], "G");
        assert!(p.validate().is_err());
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let p = DatalogProgram::new(
            [
                Rule::new(atom!("T"; var "x"), [atom!("E"; var "x")]),
                Rule::new(
                    atom!("T"; var "x", var "y"),
                    [atom!("E"; var "x"), atom!("E"; var "y")],
                ),
            ],
            "T",
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_shows_rules_and_goal() {
        let s = tc().to_string();
        assert!(s.contains("T(x, y) :- E(x, y)."));
        assert!(s.ends_with("?- T"));
    }
}
