//! The paper's two parameters: query size `q` and variable count `v`.
//!
//! Section 3: "Two possible parameters come to mind: the query size q (the
//! length of the string needed to express the query) and the number of
//! variables v appearing in the query." Any size measure within a constant
//! factor of the string length induces the same parametric complexity; we
//! count syntactic symbols (relation names, terms, connectives, quantifiers).

use std::collections::BTreeSet;

use crate::cq::ConjunctiveQuery;
use crate::datalog::DatalogProgram;
use crate::fo::FoQuery;
use crate::positive::PositiveQuery;
use crate::term::Atom;

/// Query-size and variable-count parameters (the `q` and `v` of Fig. 1).
pub trait QueryMetrics {
    /// The query size `q` (number of syntactic symbols).
    fn size(&self) -> usize;
    /// The number of distinct variable names `v`.
    fn num_variables(&self) -> usize;
}

fn atom_size(a: &Atom) -> usize {
    1 + a.arity()
}

impl QueryMetrics for ConjunctiveQuery {
    fn size(&self) -> usize {
        1 + self.head_terms.len()
            + self.atoms.iter().map(atom_size).sum::<usize>()
            + 3 * self.neqs.len()
            + 3 * self.comparisons.len()
    }

    fn num_variables(&self) -> usize {
        self.variables().len()
    }
}

impl QueryMetrics for PositiveQuery {
    fn size(&self) -> usize {
        1 + self.head_terms.len() + self.formula.node_count()
    }

    fn num_variables(&self) -> usize {
        let mut names = self.formula.all_variable_names();
        names.extend(
            self.head_terms
                .iter()
                .filter_map(|t| t.as_var())
                .map(str::to_string),
        );
        names.len()
    }
}

impl QueryMetrics for FoQuery {
    fn size(&self) -> usize {
        1 + self.head_terms.len() + self.formula.node_count()
    }

    fn num_variables(&self) -> usize {
        let mut names = self.formula.all_variable_names();
        names.extend(
            self.head_terms
                .iter()
                .filter_map(|t| t.as_var())
                .map(str::to_string),
        );
        names.len()
    }
}

impl QueryMetrics for DatalogProgram {
    fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| atom_size(&r.head) + r.body.iter().map(atom_size).sum::<usize>())
            .sum()
    }

    fn num_variables(&self) -> usize {
        let names: BTreeSet<&str> = self.rules.iter().flat_map(|r| r.variables()).collect();
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use crate::cq::Neq;
    use crate::positive::PosFormula;
    use crate::term::Term;

    #[test]
    fn cq_metrics_count_constraints() {
        let q = ConjunctiveQuery::new(
            "G",
            [Term::var("x")],
            [atom!("R"; var "x", var "y"), atom!("S"; var "y")],
        )
        .with_neqs([Neq::new(Term::var("x"), Term::var("y"))]);
        assert_eq!(q.size(), (1 + 1) + (1 + 2) + (1 + 1) + 3);
        assert_eq!(q.num_variables(), 2);
    }

    #[test]
    fn clique_query_metrics_match_paper() {
        // Theorem 1(1): the clique-k query has q = O(k²) and v = k.
        let k = 5usize;
        let mut atoms = Vec::new();
        for i in 1..=k {
            for j in i + 1..=k {
                atoms.push(atom!("G"; var format!("x{i}"), var format!("x{j}")));
            }
        }
        let q = ConjunctiveQuery::boolean("P", atoms);
        assert_eq!(q.num_variables(), k);
        assert_eq!(q.size(), 1 + 3 * (k * (k - 1) / 2));
    }

    #[test]
    fn positive_metrics_count_bound_names_once() {
        let f = PosFormula::exists(
            ["y"],
            PosFormula::or([
                PosFormula::Atom(atom!("R"; var "x", var "y")),
                PosFormula::Atom(atom!("S"; var "x", var "y")),
            ]),
        );
        let q = PositiveQuery::new("G", [Term::var("x")], f);
        assert_eq!(q.num_variables(), 2);
    }

    #[test]
    fn datalog_metrics() {
        let p = DatalogProgram::new(
            [
                crate::datalog::Rule::new(
                    atom!("T"; var "x", var "y"),
                    [atom!("E"; var "x", var "y")],
                ),
                crate::datalog::Rule::new(
                    atom!("T"; var "x", var "z"),
                    [atom!("E"; var "x", var "y"), atom!("T"; var "y", var "z")],
                ),
            ],
            "T",
        );
        assert_eq!(p.num_variables(), 3);
        assert_eq!(p.size(), (3 + 3) + (3 + 3 + 3));
    }
}
