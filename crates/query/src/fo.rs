//! First-order queries: the full relational calculus (Section 3).
//!
//! First-order queries add negation (set difference in algebra) to the
//! positive queries; `φ` is an arbitrary first-order formula over the
//! database relations. Theorem 1(3) shows their parametric evaluation problem
//! is W\[t\]-hard for all `t` (parameter `q`) and W\[P\]-hard (parameter `v`) via
//! the `θ_{2i}` formula towers that this module can represent and that
//! `pq-wtheory::reductions::circuit_to_fo` constructs.

use std::collections::BTreeSet;
use std::fmt;

use pq_data::Value;

use crate::error::{QueryError, Result};
use crate::term::{Atom, Term};

/// A first-order formula over relational atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoFormula {
    /// A relational atom.
    Atom(Atom),
    /// Negation.
    Not(Box<FoFormula>),
    /// Conjunction.
    And(Vec<FoFormula>),
    /// Disjunction.
    Or(Vec<FoFormula>),
    /// Existential quantification of one variable.
    Exists(String, Box<FoFormula>),
    /// Universal quantification of one variable.
    Forall(String, Box<FoFormula>),
}

impl FoFormula {
    /// Atom helper.
    pub fn atom(a: Atom) -> FoFormula {
        FoFormula::Atom(a)
    }

    /// Negation helper.
    ///
    /// Not `std::ops::Not`: this is a by-value constructor alongside
    /// [`FoFormula::and`] / [`FoFormula::or`], not an operator overload.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: FoFormula) -> FoFormula {
        FoFormula::Not(Box::new(f))
    }

    /// Conjunction helper.
    pub fn and(fs: impl IntoIterator<Item = FoFormula>) -> FoFormula {
        FoFormula::And(fs.into_iter().collect())
    }

    /// Disjunction helper.
    pub fn or(fs: impl IntoIterator<Item = FoFormula>) -> FoFormula {
        FoFormula::Or(fs.into_iter().collect())
    }

    /// Existential quantification helper.
    pub fn exists(v: impl Into<String>, f: FoFormula) -> FoFormula {
        FoFormula::Exists(v.into(), Box::new(f))
    }

    /// Universal quantification helper.
    pub fn forall(v: impl Into<String>, f: FoFormula) -> FoFormula {
        FoFormula::Forall(v.into(), Box::new(f))
    }

    /// Nested existential quantification of a block.
    pub fn exists_block<S: Into<String>>(
        vars: impl IntoIterator<Item = S>,
        f: FoFormula,
    ) -> FoFormula {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        vars.into_iter()
            .rev()
            .fold(f, |acc, v| FoFormula::Exists(v, Box::new(acc)))
    }

    /// Free variables.
    pub fn free_variables(&self) -> BTreeSet<String> {
        match self {
            FoFormula::Atom(a) => a.variables().into_iter().map(str::to_string).collect(),
            FoFormula::Not(f) => f.free_variables(),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                fs.iter().flat_map(FoFormula::free_variables).collect()
            }
            FoFormula::Exists(v, f) | FoFormula::Forall(v, f) => {
                let mut s = f.free_variables();
                s.remove(v);
                s
            }
        }
    }

    /// All distinct variable *names* (the paper's parameter `v`; names are
    /// counted once even when reused across scopes, which is precisely how
    /// the `θ_{2i}` towers of Theorem 1(3) keep `v = k + 2` while the formula
    /// grows with the circuit depth).
    pub fn all_variable_names(&self) -> BTreeSet<String> {
        match self {
            FoFormula::Atom(a) => a.variables().into_iter().map(str::to_string).collect(),
            FoFormula::Not(f) => f.all_variable_names(),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                fs.iter().flat_map(FoFormula::all_variable_names).collect()
            }
            FoFormula::Exists(v, f) | FoFormula::Forall(v, f) => {
                let mut s = f.all_variable_names();
                s.insert(v.clone());
                s
            }
        }
    }

    /// Relation names mentioned anywhere.
    pub fn relation_names(&self) -> BTreeSet<String> {
        match self {
            FoFormula::Atom(a) => BTreeSet::from([a.relation.clone()]),
            FoFormula::Not(f) => f.relation_names(),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                fs.iter().flat_map(FoFormula::relation_names).collect()
            }
            FoFormula::Exists(_, f) | FoFormula::Forall(_, f) => f.relation_names(),
        }
    }

    /// Substitute a constant for free occurrences of a variable.
    pub fn substitute(&self, name: &str, value: &Value) -> FoFormula {
        match self {
            FoFormula::Atom(a) => FoFormula::Atom(a.substitute(name, value)),
            FoFormula::Not(f) => FoFormula::not(f.substitute(name, value)),
            FoFormula::And(fs) => {
                FoFormula::And(fs.iter().map(|f| f.substitute(name, value)).collect())
            }
            FoFormula::Or(fs) => {
                FoFormula::Or(fs.iter().map(|f| f.substitute(name, value)).collect())
            }
            FoFormula::Exists(v, f) if v != name => {
                FoFormula::Exists(v.clone(), Box::new(f.substitute(name, value)))
            }
            FoFormula::Forall(v, f) if v != name => {
                FoFormula::Forall(v.clone(), Box::new(f.substitute(name, value)))
            }
            shadowed => shadowed.clone(),
        }
    }

    /// Number of syntactic nodes (the `q` metric).
    pub fn node_count(&self) -> usize {
        match self {
            FoFormula::Atom(a) => 1 + a.arity(),
            FoFormula::Not(f) => 1 + f.node_count(),
            FoFormula::And(fs) | FoFormula::Or(fs) => {
                1 + fs.iter().map(FoFormula::node_count).sum::<usize>()
            }
            FoFormula::Exists(_, f) | FoFormula::Forall(_, f) => 1 + f.node_count(),
        }
    }

    /// Quantifier depth (longest chain of nested quantifiers).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            FoFormula::Atom(_) => 0,
            FoFormula::Not(f) => f.quantifier_depth(),
            FoFormula::And(fs) | FoFormula::Or(fs) => fs
                .iter()
                .map(FoFormula::quantifier_depth)
                .max()
                .unwrap_or(0),
            FoFormula::Exists(_, f) | FoFormula::Forall(_, f) => 1 + f.quantifier_depth(),
        }
    }
}

impl fmt::Display for FoFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoFormula::Atom(a) => write!(f, "{a}"),
            FoFormula::Not(x) => write!(f, "!{x}"),
            FoFormula::And(fs) => {
                write!(f, "(")?;
                for (i, c) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            FoFormula::Or(fs) => {
                write!(f, "(")?;
                for (i, c) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            FoFormula::Exists(v, x) => write!(f, "exists {v}. {x}"),
            FoFormula::Forall(v, x) => write!(f, "forall {v}. {x}"),
        }
    }
}

/// A quantifier kind, for prenex decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// Existential.
    Exists,
    /// Universal.
    Forall,
}

/// A first-order query `G(t0) = { t0 | φ }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoQuery {
    /// Name of the defined relation.
    pub head_name: String,
    /// Head terms.
    pub head_terms: Vec<Term>,
    /// The body formula.
    pub formula: FoFormula,
}

impl FoQuery {
    /// Build a first-order query.
    pub fn new(
        head_name: impl Into<String>,
        head_terms: impl IntoIterator<Item = Term>,
        formula: FoFormula,
    ) -> FoQuery {
        FoQuery {
            head_name: head_name.into(),
            head_terms: head_terms.into_iter().collect(),
            formula,
        }
    }

    /// A Boolean first-order query.
    pub fn boolean(head_name: impl Into<String>, formula: FoFormula) -> FoQuery {
        FoQuery::new(head_name, [], formula)
    }

    /// Head variables must be free in the formula.
    pub fn validate(&self) -> Result<()> {
        let free = self.formula.free_variables();
        for t in &self.head_terms {
            if let Some(v) = t.as_var() {
                if !free.contains(v) {
                    return Err(QueryError::UnsafeHeadVariable(v.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Prenex decomposition: the leading quantifier chain and the
    /// quantifier-free matrix, or `None` when a quantifier occurs below a
    /// connective. (The paper: prenex first-order queries under parameter
    /// `v` are AW\[SAT\]-complete; non-prenex ones resist that classification
    /// because prenexing does not preserve `v`.)
    pub fn prenex_parts(&self) -> Option<(Vec<(Quantifier, String)>, &FoFormula)> {
        let mut prefix = Vec::new();
        let mut f = &self.formula;
        loop {
            match f {
                FoFormula::Exists(v, b) => {
                    prefix.push((Quantifier::Exists, v.clone()));
                    f = b;
                }
                FoFormula::Forall(v, b) => {
                    prefix.push((Quantifier::Forall, v.clone()));
                    f = b;
                }
                _ => break,
            }
        }
        fn qfree(f: &FoFormula) -> bool {
            match f {
                FoFormula::Atom(_) => true,
                FoFormula::Not(g) => qfree(g),
                FoFormula::And(fs) | FoFormula::Or(fs) => fs.iter().all(qfree),
                FoFormula::Exists(..) | FoFormula::Forall(..) => false,
            }
        }
        if qfree(f) {
            Some((prefix, f))
        } else {
            None
        }
    }
}

impl fmt::Display for FoQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_name)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") := {}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(rel: &str, vars: &[&str]) -> FoFormula {
        FoFormula::Atom(Atom::new(rel, vars.iter().map(|v| Term::var(*v))))
    }

    #[test]
    fn free_variables_respect_quantifiers() {
        let f = FoFormula::exists(
            "y",
            FoFormula::and([a("R", &["x", "y"]), FoFormula::not(a("S", &["y"]))]),
        );
        assert_eq!(f.free_variables(), BTreeSet::from(["x".to_string()]));
    }

    #[test]
    fn variable_reuse_counts_once() {
        // ∃y (C(x,y) ∧ ∀x (¬C(y,x) ∨ …)): x is reused — exactly the paper's
        // θ_{2i} pattern.
        let f = FoFormula::exists(
            "y",
            FoFormula::and([
                a("C", &["x", "y"]),
                FoFormula::forall("x", FoFormula::or([FoFormula::not(a("C", &["y", "x"]))])),
            ]),
        );
        assert_eq!(f.all_variable_names().len(), 2);
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn exists_block_nests_left_to_right() {
        let f = FoFormula::exists_block(["a", "b"], a("R", &["a", "b"]));
        assert_eq!(f.to_string(), "exists a. exists b. R(a, b)");
    }

    #[test]
    fn substitute_respects_shadowing() {
        let f = FoFormula::and([a("R", &["x"]), FoFormula::forall("x", a("S", &["x"]))]);
        let g = f.substitute("x", &Value::int(5));
        assert_eq!(
            g,
            FoFormula::and([
                FoFormula::Atom(Atom::new("R", [Term::cons(5)])),
                FoFormula::forall("x", a("S", &["x"])),
            ])
        );
    }

    #[test]
    fn validate_head_freeness() {
        let q = FoQuery::new(
            "G",
            [Term::var("x")],
            FoFormula::exists("x", a("R", &["x"])),
        );
        assert!(q.validate().is_err());
        let q = FoQuery::new("G", [Term::var("x")], a("R", &["x"]));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn node_count_and_display() {
        let f = FoFormula::not(FoFormula::or([a("R", &["x"]), a("S", &["y"])]));
        assert_eq!(f.node_count(), 1 + 1 + 2 + 2);
        assert_eq!(f.to_string(), "!(R(x) | S(y))");
    }
}
