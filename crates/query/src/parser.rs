//! A text syntax for every query language in the paper.
//!
//! Conventions (documented once, used everywhere):
//!
//! * **Relation names** are identifiers; by convention they start with an
//!   uppercase letter (`EP`, `Edge`) but this is not enforced in atom
//!   position.
//! * In **term position**: a lowercase-initial identifier is a *variable*;
//!   an integer literal is an integer *constant*; a double-quoted string or
//!   an uppercase-initial identifier is a string *constant*.
//! * Conjunctive queries use rule notation and end with a period:
//!   `G(e) :- EP(e, p), EP(e, p2), p != p2.`
//!   Comparisons `x < y`, `x <= 3` are allowed alongside `!=`.
//! * Datalog programs are a sequence of rules followed by a goal marker:
//!   `?- T`.
//! * Positive and first-order queries use `:=` and formula syntax:
//!   `G(x) := exists y. (R(x, y) & (S(y) | T(y)))`,
//!   with `!` (negation) and `forall x.` additionally allowed in FO. A
//!   quantifier's scope extends as far right as possible.

use pq_data::Value;

use crate::cq::{CmpOp, Comparison, ConjunctiveQuery, Neq};
use crate::datalog::{DatalogProgram, Rule};
use crate::error::{QueryError, Result};
use crate::fo::{FoFormula, FoQuery};
use crate::positive::{PosFormula, PositiveQuery};
use crate::term::{Atom, Term};

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Period,
    ColonDash, // :-
    ColonEq,   // :=
    Bang,      // !
    Amp,       // &
    Pipe,      // |
    Lt,        // <
    Le,        // <=
    Neq,       // !=
    Goal,      // ?-
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

impl<'a> Lexer<'a> {
    fn lex(src: &'a str) -> Result<Vec<(usize, Tok)>> {
        let mut l = Lexer {
            src: src.as_bytes(),
            pos: 0,
            toks: Vec::new(),
        };
        l.run()?;
        Ok(l.toks)
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn run(&mut self) -> Result<()> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'%' => {
                    // comment to end of line
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => self.push1(start, Tok::LParen),
                b')' => self.push1(start, Tok::RParen),
                b',' => self.push1(start, Tok::Comma),
                b'.' => self.push1(start, Tok::Period),
                b'&' => self.push1(start, Tok::Amp),
                b'|' => self.push1(start, Tok::Pipe),
                b':' => {
                    if self.peek(1) == Some(b'-') {
                        self.pos += 2;
                        self.toks.push((start, Tok::ColonDash));
                    } else if self.peek(1) == Some(b'=') {
                        self.pos += 2;
                        self.toks.push((start, Tok::ColonEq));
                    } else {
                        return Err(self.err("expected `:-` or `:=`"));
                    }
                }
                b'?' => {
                    if self.peek(1) == Some(b'-') {
                        self.pos += 2;
                        self.toks.push((start, Tok::Goal));
                    } else {
                        return Err(self.err("expected `?-`"));
                    }
                }
                b'!' => {
                    if self.peek(1) == Some(b'=') {
                        self.pos += 2;
                        self.toks.push((start, Tok::Neq));
                    } else {
                        self.push1(start, Tok::Bang);
                    }
                }
                b'<' => {
                    if self.peek(1) == Some(b'=') {
                        self.pos += 2;
                        self.toks.push((start, Tok::Le));
                    } else {
                        self.push1(start, Tok::Lt);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    let s0 = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(self.err("unterminated string literal"));
                    }
                    let s = String::from_utf8_lossy(&self.src[s0..self.pos]).into_owned();
                    self.pos += 1;
                    self.toks.push((start, Tok::Str(s)));
                }
                b'-' | b'0'..=b'9' => {
                    let s0 = self.pos;
                    if c == b'-' {
                        self.pos += 1;
                        if !self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                            return Err(self.err("`-` must start an integer literal"));
                        }
                    }
                    while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[s0..self.pos]).expect("digits");
                    let n: i64 = text
                        .parse()
                        .map_err(|e| self.err(format!("bad integer: {e}")))?;
                    self.toks.push((start, Tok::Int(n)));
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let s0 = self.pos;
                    while self
                        .src
                        .get(self.pos)
                        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'\'')
                    {
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.src[s0..self.pos]).into_owned();
                    self.toks.push((s0, Tok::Ident(text)));
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            }
        }
        Ok(())
    }

    fn push1(&mut self, start: usize, t: Tok) {
        self.pos += 1;
        self.toks.push((start, t));
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<(usize, Tok)>,
    i: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            toks: Lexer::lex(src)?,
            i: 0,
        })
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map_or(usize::MAX, |(o, _)| *o)
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    /// Term-position token → variable or constant per the module conventions.
    fn term(&mut self) -> Result<Term> {
        match self.next() {
            Some(Tok::Ident(s)) => {
                if s.chars().next().is_some_and(char::is_uppercase) {
                    Ok(Term::cons(Value::str(&s)))
                } else {
                    Ok(Term::Var(s))
                }
            }
            Some(Tok::Int(n)) => Ok(Term::cons(n)),
            Some(Tok::Str(s)) => Ok(Term::cons(Value::str(&s))),
            _ => Err(self.err("expected a term (variable or constant)")),
        }
    }

    /// `R(t1, …, tn)` or a bare `R` (0-ary).
    fn atom_after_name(&mut self, name: String) -> Result<Atom> {
        let mut terms = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,` or `)` in atom")?;
            }
        }
        Ok(Atom::new(name, terms))
    }

    /// One body item of a CQ rule: atom, `t != t`, `t < t`, or `t <= t`.
    fn body_item(&mut self) -> Result<BodyItem> {
        // Lookahead: Ident followed by `(` (or by a separator) is an atom
        // only when no comparison operator follows the bare term.
        let start = self.i;
        let left = match self.next() {
            Some(Tok::Ident(s)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let a = self.atom_after_name(s)?;
                    return Ok(BodyItem::Atom(a));
                }
                if s.chars().next().is_some_and(char::is_uppercase)
                    && !matches!(self.peek(), Some(Tok::Neq | Tok::Lt | Tok::Le))
                {
                    // bare 0-ary atom
                    return Ok(BodyItem::Atom(Atom::new(s, [])));
                }
                self.i = start;
                self.term()?
            }
            Some(Tok::Int(_)) | Some(Tok::Str(_)) => {
                self.i = start;
                self.term()?
            }
            _ => return Err(self.err("expected an atom or a constraint")),
        };
        match self.next() {
            Some(Tok::Neq) => Ok(BodyItem::Neq(Neq::new(left, self.term()?))),
            Some(Tok::Lt) => Ok(BodyItem::Cmp(Comparison::new(
                left,
                CmpOp::Lt,
                self.term()?,
            ))),
            Some(Tok::Le) => Ok(BodyItem::Cmp(Comparison::new(
                left,
                CmpOp::Le,
                self.term()?,
            ))),
            _ => Err(self.err("expected `!=`, `<`, or `<=` after term")),
        }
    }

    /// `Head(t0) :- items .`
    fn rule_parts(&mut self) -> Result<(Atom, Vec<BodyItem>)> {
        let name = self.ident("rule head relation name")?;
        let head = self.atom_after_name(name)?;
        self.expect(&Tok::ColonDash, "`:-`")?;
        let mut items = Vec::new();
        loop {
            items.push(self.body_item()?);
            if self.eat(&Tok::Period) {
                break;
            }
            self.expect(&Tok::Comma, "`,` or `.` after body item")?;
        }
        Ok((head, items))
    }

    // ---- formula parsing (shared by positive and FO) ----

    fn fo_or(&mut self) -> Result<FoFormula> {
        let mut parts = vec![self.fo_and()?];
        while self.eat(&Tok::Pipe) {
            parts.push(self.fo_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            FoFormula::Or(parts)
        })
    }

    fn fo_and(&mut self) -> Result<FoFormula> {
        let mut parts = vec![self.fo_unary()?];
        while self.eat(&Tok::Amp) {
            parts.push(self.fo_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one")
        } else {
            FoFormula::And(parts)
        })
    }

    fn fo_unary(&mut self) -> Result<FoFormula> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.i += 1;
                Ok(FoFormula::not(self.fo_unary()?))
            }
            Some(Tok::LParen) => {
                self.i += 1;
                let f = self.fo_or()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(f)
            }
            Some(Tok::Ident(s)) if s == "exists" || s == "forall" => {
                let kw = s.clone();
                self.i += 1;
                let mut vars = vec![self.ident("quantified variable")?];
                while self.eat(&Tok::Comma) {
                    vars.push(self.ident("quantified variable")?);
                }
                self.expect(&Tok::Period, "`.` after quantified variables")?;
                // Scope extends as far right as possible.
                let body = self.fo_or()?;
                let mk = |v: String, b: FoFormula| {
                    if kw == "exists" {
                        FoFormula::Exists(v, Box::new(b))
                    } else {
                        FoFormula::Forall(v, Box::new(b))
                    }
                };
                Ok(vars.into_iter().rev().fold(body, |acc, v| mk(v, acc)))
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident("relation name")?;
                Ok(FoFormula::Atom(self.atom_after_name(name)?))
            }
            _ => Err(self.err("expected a formula")),
        }
    }
}

enum BodyItem {
    Atom(Atom),
    Neq(Neq),
    Cmp(Comparison),
}

/// Convert an [`FoFormula`] without `¬`/`∀` into a [`PosFormula`].
fn fo_to_positive(f: &FoFormula) -> Result<PosFormula> {
    match f {
        FoFormula::Atom(a) => Ok(PosFormula::Atom(a.clone())),
        FoFormula::And(fs) => Ok(PosFormula::And(
            fs.iter().map(fo_to_positive).collect::<Result<_>>()?,
        )),
        FoFormula::Or(fs) => Ok(PosFormula::Or(
            fs.iter().map(fo_to_positive).collect::<Result<_>>()?,
        )),
        FoFormula::Exists(v, b) => Ok(PosFormula::Exists(
            vec![v.clone()],
            Box::new(fo_to_positive(b)?),
        )),
        FoFormula::Not(_) | FoFormula::Forall(_, _) => Err(QueryError::Parse {
            offset: 0,
            message: "negation/universal quantification not allowed in a positive query".into(),
        }),
    }
}

/// Parse a conjunctive query (with optional `!=` and `<`/`<=` atoms) in rule
/// notation.
///
/// ```
/// let q = pq_query::parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
/// assert_eq!(q.atoms.len(), 2);
/// assert_eq!(q.neqs.len(), 1);
/// assert!(q.is_acyclic());
/// ```
pub fn parse_cq(src: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser::new(src)?;
    let (head, items) = p.rule_parts()?;
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    let mut q = ConjunctiveQuery::new(head.relation, head.terms, []);
    for it in items {
        match it {
            BodyItem::Atom(a) => q.atoms.push(a),
            BodyItem::Neq(n) => q.neqs.push(n),
            BodyItem::Cmp(c) => q.comparisons.push(c),
        }
    }
    Ok(q)
}

/// Parse a Datalog program: rules (plain atoms only in bodies) followed by
/// `?- Goal`.
pub fn parse_datalog(src: &str) -> Result<DatalogProgram> {
    let mut p = Parser::new(src)?;
    let mut rules = Vec::new();
    loop {
        if p.eat(&Tok::Goal) {
            let goal = p.ident("goal relation name")?;
            p.eat(&Tok::Period);
            if !p.at_end() {
                return Err(p.err("trailing input after goal"));
            }
            return Ok(DatalogProgram::new(rules, goal));
        }
        if p.at_end() {
            return Err(p.err("missing `?- Goal` marker"));
        }
        let (head, items) = p.rule_parts()?;
        let mut body = Vec::new();
        for it in items {
            match it {
                BodyItem::Atom(a) => body.push(a),
                BodyItem::Neq(_) | BodyItem::Cmp(_) => {
                    return Err(p.err("constraints are not allowed in Datalog rules"))
                }
            }
        }
        rules.push(Rule::new(head, body));
    }
}

/// Parse a positive query, e.g.
/// `G(x) := exists y. (R(x, y) & (S(y) | T(y)))`.
pub fn parse_positive(src: &str) -> Result<PositiveQuery> {
    let mut p = Parser::new(src)?;
    let name = p.ident("head relation name")?;
    let head = p.atom_after_name(name)?;
    p.expect(&Tok::ColonEq, "`:=`")?;
    let f = p.fo_or()?;
    if !p.at_end() {
        return Err(p.err("trailing input after formula"));
    }
    Ok(PositiveQuery::new(
        head.relation,
        head.terms,
        fo_to_positive(&f)?,
    ))
}

/// Parse a first-order query, e.g.
/// `G(x) := exists y. (C(x, y) & forall z. (!C(y, z) | D(z)))`.
pub fn parse_fo(src: &str) -> Result<FoQuery> {
    let mut p = Parser::new(src)?;
    let name = p.ident("head relation name")?;
    let head = p.atom_after_name(name)?;
    p.expect(&Tok::ColonEq, "`:=`")?;
    let f = p.fo_or()?;
    if !p.at_end() {
        return Err(p.err("trailing input after formula"));
    }
    Ok(FoQuery::new(head.relation, head.terms, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;

    #[test]
    fn parse_paper_example_more_than_one_project() {
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        assert_eq!(q.head_name, "G");
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.neqs.len(), 1);
        assert_eq!(q.to_string(), "G(e) :- EP(e, p), EP(e, p2), p != p2.");
    }

    #[test]
    fn parse_students_outside_department() {
        // The paper's second Section 5 example.
        let q = parse_cq("G(s) :- SD(s, d), SC(s, c), CD(c, d2), d != d2.").unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.neqs.len(), 1);
        assert!(q.is_acyclic());
    }

    #[test]
    fn parse_salary_comparison_example() {
        // Theorem 3 preamble: employees with higher salary than their manager.
        let q = parse_cq("G(e) :- EM(e, m), ES(e, s), ES(m, s2), s2 < s.").unwrap();
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].op, CmpOp::Lt);
    }

    #[test]
    fn constants_by_convention() {
        let q = parse_cq(r#"G(x) :- R(x, 3, "lit", Konst), x != 3, x <= 10."#).unwrap();
        assert_eq!(
            q.atoms[0].terms,
            vec![
                Term::var("x"),
                Term::cons(3),
                Term::cons("lit"),
                Term::cons("Konst"),
            ]
        );
        assert_eq!(q.neqs[0].right, Term::cons(3));
        assert_eq!(q.comparisons[0].op, CmpOp::Le);
    }

    #[test]
    fn zero_ary_heads_and_atoms() {
        let q = parse_cq("P :- G(x1, x2), P2.").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms[1], atom!("P2"));
        let q2 = parse_cq("P() :- G(x, y).").unwrap();
        assert!(q2.is_boolean());
    }

    #[test]
    fn parse_datalog_tc() {
        let p = parse_datalog(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- E(x, y), T(y, z).\n\
             ?- T",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.goal, "T");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn datalog_rejects_constraints() {
        assert!(parse_datalog("T(x) :- E(x, y), x != y. ?- T").is_err());
    }

    #[test]
    fn parse_positive_with_scoping() {
        let q = parse_positive("G(x) := exists y. (R(x, y) & (S(y) | T(y)))").unwrap();
        let cqs = q.to_union_of_cqs();
        assert_eq!(cqs.len(), 2);
    }

    #[test]
    fn positive_rejects_negation() {
        assert!(parse_positive("G(x) := !R(x)").is_err());
        assert!(parse_positive("G(x) := forall y. R(x, y)").is_err());
    }

    #[test]
    fn parse_fo_with_alternation() {
        let q = parse_fo("Q := exists y. (C(o, y) & forall x. (!C(y, x) | C(x, x)))").unwrap();
        assert_eq!(q.formula.quantifier_depth(), 2);
        // `o` is lowercase → variable; `C` atoms parsed.
        assert!(q.formula.relation_names().contains("C"));
    }

    #[test]
    fn quantifier_scope_extends_right() {
        let q = parse_fo("Q := exists x. R(x) & S(x)").unwrap();
        // exists binds the whole conjunction
        match &q.formula {
            FoFormula::Exists(v, body) => {
                assert_eq!(v, "x");
                assert!(matches!(**body, FoFormula::And(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn multi_variable_quantifier_blocks() {
        let q = parse_fo("Q := exists a, b. R(a, b)").unwrap();
        assert_eq!(q.formula.to_string(), "exists a. exists b. R(a, b)");
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_cq("G(x) :- ").unwrap_err();
        assert!(matches!(e, QueryError::Parse { .. }));
        let e = parse_cq("G(x) : R(x).").unwrap_err();
        assert!(matches!(e, QueryError::Parse { .. }));
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_cq("% the paper's example\nG(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn cq_display_parse_round_trip() {
        let src = "G(e) :- EP(e, p), EP(e, p2), p != p2.";
        let q = parse_cq(src).unwrap();
        let q2 = parse_cq(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn negative_integers() {
        let q = parse_cq("G(x) :- R(x, -5), x < -1.").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::cons(-5));
    }
}
