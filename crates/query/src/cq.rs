//! Conjunctive queries, optionally extended with `≠` atoms (Section 5) and
//! `<` / `≤` comparison atoms (Theorem 3).
//!
//! A conjunctive query in the paper's rule notation is
//!
//! ```text
//! G(t0) :- R_{i1}(t1), …, R_{is}(ts) [, x ≠ y, x ≠ c, …] [, x < y, x ≤ c, …]
//! ```
//!
//! with the variables not in the head implicitly existentially quantified.

use std::collections::BTreeSet;
use std::fmt;

use pq_data::{Tuple, Value};
use pq_hypergraph::Hypergraph;

use crate::error::{QueryError, Result};
use crate::term::{Atom, Term};

/// An inequality atom `left ≠ right`; at least one side is a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Neq {
    /// Left term.
    pub left: Term,
    /// Right term.
    pub right: Term,
}

impl Neq {
    /// Build an inequality atom.
    pub fn new(left: Term, right: Term) -> Neq {
        Neq { left, right }
    }

    /// Variable names occurring in the atom (0, 1, or 2).
    pub fn variables(&self) -> Vec<&str> {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(Term::as_var)
            .collect()
    }

    /// Is this a variable-variable inequality?
    pub fn is_var_var(&self) -> bool {
        self.left.is_var() && self.right.is_var()
    }

    /// Does the atom relate a term to itself (`x ≠ x` or `c ≠ c`)? Such an
    /// atom can never hold, so the whole query is empty on every database.
    pub fn is_reflexive(&self) -> bool {
        self.left == self.right
    }

    /// Substitute a constant for a variable on both sides.
    pub fn substitute(&self, name: &str, value: &Value) -> Neq {
        Neq {
            left: self.left.substitute(name, value),
            right: self.right.substitute(name, value),
        }
    }
}

impl fmt::Display for Neq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} != {}", self.left, self.right)
    }
}

/// A comparison operator over the (dense) value order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strict `<`.
    Lt,
    /// Weak `≤`.
    Le,
}

impl CmpOp {
    /// Evaluate the operator on two values.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Le => write!(f, "<="),
        }
    }
}

/// A comparison atom `left op right` (Theorem 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left term.
    pub left: Term,
    /// The operator.
    pub op: CmpOp,
    /// Right term.
    pub right: Term,
}

impl Comparison {
    /// Build a comparison atom.
    pub fn new(left: Term, op: CmpOp, right: Term) -> Comparison {
        Comparison { left, op, right }
    }

    /// Variable names occurring in the atom.
    pub fn variables(&self) -> Vec<&str> {
        [&self.left, &self.right]
            .into_iter()
            .filter_map(Term::as_var)
            .collect()
    }

    /// Substitute a constant for a variable on both sides.
    pub fn substitute(&self, name: &str, value: &Value) -> Comparison {
        Comparison {
            left: self.left.substitute(name, value),
            op: self.op,
            right: self.right.substitute(name, value),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A conjunctive query with optional `≠` and comparison atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Name of the defined (head) relation `G`.
    pub head_name: String,
    /// Head terms `t0` (constants and variables).
    pub head_terms: Vec<Term>,
    /// Relational atoms of the body.
    pub atoms: Vec<Atom>,
    /// Inequality atoms (`x ≠ y`, `x ≠ c`).
    pub neqs: Vec<Neq>,
    /// Comparison atoms (`x < y`, `x ≤ c`, …).
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// A pure conjunctive query (no `≠`, no comparisons).
    pub fn new(
        head_name: impl Into<String>,
        head_terms: impl IntoIterator<Item = Term>,
        atoms: impl IntoIterator<Item = Atom>,
    ) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head_name: head_name.into(),
            head_terms: head_terms.into_iter().collect(),
            atoms: atoms.into_iter().collect(),
            neqs: Vec::new(),
            comparisons: Vec::new(),
        }
    }

    /// A Boolean (0-ary head) query.
    pub fn boolean(
        head_name: impl Into<String>,
        atoms: impl IntoIterator<Item = Atom>,
    ) -> ConjunctiveQuery {
        ConjunctiveQuery::new(head_name, [], atoms)
    }

    /// Add inequality atoms (builder style).
    pub fn with_neqs(mut self, neqs: impl IntoIterator<Item = Neq>) -> Self {
        self.neqs.extend(neqs);
        self
    }

    /// Add comparison atoms (builder style).
    pub fn with_comparisons(mut self, comps: impl IntoIterator<Item = Comparison>) -> Self {
        self.comparisons.extend(comps);
        self
    }

    /// Distinct head variable names, in first-occurrence order.
    pub fn head_variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.head_terms {
            if let Some(v) = t.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Distinct variable names occurring in relational atoms, in
    /// first-occurrence order.
    pub fn atom_variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for a in &self.atoms {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// All distinct variable names (head, atoms, constraints), in
    /// first-occurrence order scanning head then body.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.head_variables();
        for v in self.atom_variables() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        for n in &self.neqs {
            for v in n.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        for c in &self.comparisons {
            for v in c.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Is this a Boolean query (0-ary head)?
    pub fn is_boolean(&self) -> bool {
        self.head_terms.is_empty()
    }

    /// Is this a *pure* conjunctive query (no `≠`, no comparisons)?
    pub fn is_pure(&self) -> bool {
        self.neqs.is_empty() && self.comparisons.is_empty()
    }

    /// Largest arity among the relational atoms (0 for an empty body).
    pub fn max_arity(&self) -> usize {
        self.atoms.iter().map(Atom::arity).max().unwrap_or(0)
    }

    /// Validate safety: every head variable and every constraint variable
    /// must occur in some relational atom, the body must be nonempty, and no
    /// constraint may relate two constants.
    pub fn validate(&self) -> Result<()> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let body: BTreeSet<&str> = self.atom_variables().into_iter().collect();
        for v in self.head_variables() {
            if !body.contains(v) {
                return Err(QueryError::UnsafeHeadVariable(v.to_string()));
            }
        }
        for n in &self.neqs {
            if n.variables().is_empty() {
                return Err(QueryError::ConstantConstraint(n.to_string()));
            }
            for v in n.variables() {
                if !body.contains(v) {
                    return Err(QueryError::UnsafeConstraintVariable(v.to_string()));
                }
            }
        }
        for c in &self.comparisons {
            if c.variables().is_empty() {
                return Err(QueryError::ConstantConstraint(c.to_string()));
            }
            for v in c.variables() {
                if !body.contains(v) {
                    return Err(QueryError::UnsafeConstraintVariable(v.to_string()));
                }
            }
        }
        Ok(())
    }

    /// The hypergraph of the *relational* atoms: one vertex per variable,
    /// one edge per atom (Section 5). Inequality and comparison atoms are
    /// deliberately excluded — including them "destroys acyclicity even in
    /// very simple cases" (the paper's observation).
    ///
    /// Atoms with no variables contribute empty edges; variables are interned
    /// in first-occurrence order so vertex indices align with
    /// [`ConjunctiveQuery::atom_variables`].
    pub fn hypergraph(&self) -> Hypergraph {
        let mut hg = Hypergraph::new();
        for v in self.atom_variables() {
            hg.add_vertex(v);
        }
        for a in &self.atoms {
            hg.add_edge(a.variables());
        }
        hg
    }

    /// Is the query acyclic (the hypergraph of its relational atoms is
    /// α-acyclic)?
    pub fn is_acyclic(&self) -> bool {
        pq_hypergraph::is_acyclic(&self.hypergraph())
    }

    /// Substitute a constant for a variable everywhere (head, atoms,
    /// constraints).
    pub fn substitute(&self, name: &str, value: &Value) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head_name: self.head_name.clone(),
            head_terms: self
                .head_terms
                .iter()
                .map(|t| t.substitute(name, value))
                .collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| a.substitute(name, value))
                .collect(),
            neqs: self
                .neqs
                .iter()
                .map(|n| n.substitute(name, value))
                .collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| c.substitute(name, value))
                .collect(),
        }
    }

    /// The decision-problem transformation of Section 3: substitute the
    /// constants of a candidate answer tuple `t` for the head variables,
    /// producing a Boolean query that is true iff `t ∈ Q(d)`.
    ///
    /// # Errors
    /// Arity mismatch between `t` and the head, or a constant head term of
    /// the query disagreeing with `t` (in which case the answer is trivially
    /// false — reported as `Ok(None)`).
    pub fn bind_head(&self, t: &Tuple) -> Result<Option<ConjunctiveQuery>> {
        if t.arity() != self.head_terms.len() {
            return Err(QueryError::BadProgram(format!(
                "candidate tuple arity {} != head arity {}",
                t.arity(),
                self.head_terms.len()
            )));
        }
        let mut q = self.clone();
        for (i, ht) in self.head_terms.iter().enumerate() {
            match ht {
                Term::Const(c) => {
                    if c != &t[i] {
                        return Ok(None);
                    }
                }
                Term::Var(v) => {
                    // A repeated head variable must agree with itself.
                    if let Some(prev) = q.head_terms[i].as_const() {
                        if prev != &t[i] {
                            return Ok(None);
                        }
                    }
                    q = q.substitute(v, &t[i]);
                }
            }
        }
        q.head_terms.clear();
        Ok(Some(q))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_name)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for n in &self.neqs {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        for c in &self.comparisons {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom;
    use pq_data::tuple;

    /// The paper's Section 5 example: employees working on more than one
    /// project — `G(e) :- EP(e,p), EP(e,p'), p != p'`.
    fn more_than_one_project() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            "G",
            [Term::var("e")],
            [
                atom!("EP"; var "e", var "p"),
                atom!("EP"; var "e", var "p2"),
            ],
        )
        .with_neqs([Neq::new(Term::var("p"), Term::var("p2"))])
    }

    #[test]
    fn variable_collection_orders_head_first() {
        let q = more_than_one_project();
        assert_eq!(q.variables(), vec!["e", "p", "p2"]);
        assert_eq!(q.head_variables(), vec!["e"]);
        assert_eq!(q.atom_variables(), vec!["e", "p", "p2"]);
    }

    #[test]
    fn validation_catches_unsafe_queries() {
        let q = ConjunctiveQuery::new("G", [Term::var("z")], [atom!("R"; var "x")]);
        assert_eq!(
            q.validate().unwrap_err(),
            QueryError::UnsafeHeadVariable("z".into())
        );

        let q = ConjunctiveQuery::boolean("G", [atom!("R"; var "x")])
            .with_neqs([Neq::new(Term::var("x"), Term::var("w"))]);
        assert_eq!(
            q.validate().unwrap_err(),
            QueryError::UnsafeConstraintVariable("w".into())
        );

        let q = ConjunctiveQuery::boolean("G", []);
        assert_eq!(q.validate().unwrap_err(), QueryError::EmptyBody);

        assert!(more_than_one_project().validate().is_ok());
    }

    #[test]
    fn paper_example_is_acyclic_despite_inequality() {
        // The point of Section 5: with the ≠ edge the hypergraph would be a
        // triangle; over relational atoms only, it is acyclic.
        let q = more_than_one_project();
        assert!(q.is_acyclic());
        assert!(!q.is_pure());
    }

    #[test]
    fn triangle_query_is_cyclic() {
        let q = ConjunctiveQuery::boolean(
            "P",
            [
                atom!("E"; var "x", var "y"),
                atom!("E"; var "y", var "z"),
                atom!("E"; var "z", var "x"),
            ],
        );
        assert!(!q.is_acyclic());
    }

    #[test]
    fn bind_head_substitutes_everywhere() {
        let q = more_than_one_project();
        let b = q.bind_head(&tuple!["alice"]).unwrap().expect("compatible");
        assert!(b.is_boolean());
        assert_eq!(b.atoms[0], atom!("EP"; val "alice", var "p"));
        // arity mismatch
        assert!(q.bind_head(&tuple![1, 2]).is_err());
    }

    #[test]
    fn bind_head_rejects_conflicting_constant() {
        let q = ConjunctiveQuery::new("G", [Term::cons(7)], [atom!("R"; var "x")]);
        assert_eq!(q.bind_head(&tuple![8]).unwrap(), None);
        assert!(q.bind_head(&tuple![7]).unwrap().is_some());
    }

    #[test]
    fn bind_head_repeated_variable_must_agree() {
        let q = ConjunctiveQuery::new("G", [Term::var("x"), Term::var("x")], [atom!("R"; var "x")]);
        assert_eq!(q.bind_head(&tuple![1, 2]).unwrap(), None);
        assert!(q.bind_head(&tuple![1, 1]).unwrap().is_some());
    }

    #[test]
    fn display_rule_notation() {
        let q = more_than_one_project();
        assert_eq!(q.to_string(), "G(e) :- EP(e, p), EP(e, p2), p != p2.");
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.eval(&Value::int(1), &Value::int(2)));
        assert!(!CmpOp::Lt.eval(&Value::int(2), &Value::int(2)));
        assert!(CmpOp::Le.eval(&Value::int(2), &Value::int(2)));
    }
}
