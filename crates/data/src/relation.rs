//! Named-attribute relations (sets of tuples).
//!
//! A [`Relation`] is a *set*: inserting a duplicate tuple is a no-op. Tuples
//! are kept in insertion order so evaluation results are deterministic, with
//! a hash index for O(1) membership.

use std::collections::HashSet;
use std::fmt;

use crate::error::{DataError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// A relation: a header of distinct attribute names plus a set of tuples of
/// matching arity.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    attrs: Vec<String>,
    rows: Vec<Tuple>,
    seen: HashSet<Tuple>,
}

impl Relation {
    /// An empty relation over the given attribute names.
    ///
    /// # Errors
    /// [`DataError::DuplicateAttribute`] when a name repeats.
    pub fn new(attrs: impl IntoIterator<Item = impl Into<String>>) -> Result<Self> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let mut set = HashSet::with_capacity(attrs.len());
        for a in &attrs {
            if !set.insert(a.clone()) {
                return Err(DataError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Relation {
            attrs,
            rows: Vec::new(),
            seen: HashSet::new(),
        })
    }

    /// Build a relation and populate it in one call.
    pub fn with_tuples(
        attrs: impl IntoIterator<Item = impl Into<String>>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self> {
        let mut r = Relation::new(attrs)?;
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The header (attribute names, in column order).
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column position of attribute `name`.
    pub fn attr_pos(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Column position of attribute `name`, as an error-carrying lookup.
    pub fn attr_pos_checked(&self, name: &str) -> Result<usize> {
        self.attr_pos(name)
            .ok_or_else(|| DataError::UnknownAttribute {
                attr: name.to_string(),
                header: self.attrs.clone(),
            })
    }

    /// Insert a tuple. Returns `true` if it was new.
    ///
    /// # Errors
    /// [`DataError::ArityMismatch`] when the tuple arity differs from the
    /// header arity.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.attrs.len() {
            return Err(DataError::ArityMismatch {
                expected: self.attrs.len(),
                found: t.arity(),
            });
        }
        if self.seen.insert(t.clone()) {
            self.rows.push(t);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Iterate over tuples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// The tuples as a slice (insertion order).
    pub fn tuples(&self) -> &[Tuple] {
        &self.rows
    }

    /// All values appearing anywhere in the relation.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.rows.iter().flat_map(|t| t.iter())
    }

    /// Remove one tuple. Returns `true` if it was present. O(len) — the
    /// insertion-order list must be kept consistent; batch removals should
    /// prefer [`Relation::retain`] (one pass).
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.seen.remove(t) {
            return false;
        }
        let pos = self
            .rows
            .iter()
            .position(|r| r == t)
            .expect("seen and rows agree");
        self.rows.remove(pos);
        true
    }

    /// Keep only tuples satisfying `pred`, in place.
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        let seen = &mut self.seen;
        self.rows.retain(|t| {
            let keep = pred(t);
            if !keep {
                seen.remove(t);
            }
            keep
        });
    }

    /// A canonical, order-independent fingerprint: the sorted tuple list.
    /// Two relations with the same header are equal as sets iff their
    /// canonical rows agree.
    pub fn canonical_rows(&self) -> Vec<Tuple> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }

    /// Set equality (ignores insertion order), requiring identical headers.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.attrs == other.attrs
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.seen.contains(t))
    }
}

impl PartialEq for Relation {
    /// Equality is *set* equality over identical headers.
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}
impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "({})", self.attrs.join(", "))?;
        for t in &self.rows {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r2() -> Relation {
        Relation::with_tuples(["a", "b"], [tuple![1, 2], tuple![3, 4]]).unwrap()
    }

    #[test]
    fn new_rejects_duplicate_attrs() {
        assert_eq!(
            Relation::new(["x", "x"]).unwrap_err(),
            DataError::DuplicateAttribute("x".into())
        );
    }

    #[test]
    fn insert_dedups_and_checks_arity() {
        let mut r = r2();
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert!(r.insert(tuple![5, 6]).unwrap());
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.insert(tuple![1]).unwrap_err(),
            DataError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn membership_and_iteration_order() {
        let r = r2();
        assert!(r.contains(&tuple![1, 2]));
        assert!(!r.contains(&tuple![2, 1]));
        let rows: Vec<_> = r.iter().cloned().collect();
        assert_eq!(rows, vec![tuple![1, 2], tuple![3, 4]]);
    }

    #[test]
    fn attr_lookup() {
        let r = r2();
        assert_eq!(r.attr_pos("b"), Some(1));
        assert!(r.attr_pos_checked("z").is_err());
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::with_tuples(["a", "b"], [tuple![1, 2], tuple![3, 4]]).unwrap();
        let b = Relation::with_tuples(["a", "b"], [tuple![3, 4], tuple![1, 2]]).unwrap();
        assert_eq!(a, b);
        let c = Relation::with_tuples(["a", "c"], [tuple![1, 2], tuple![3, 4]]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn remove_keeps_index_and_order_consistent() {
        let mut r = Relation::with_tuples(["a"], [tuple![1], tuple![2], tuple![3]]).unwrap();
        assert!(r.remove(&tuple![2]));
        assert!(!r.remove(&tuple![2]));
        assert!(!r.remove(&tuple![9]));
        let rows: Vec<_> = r.iter().cloned().collect();
        assert_eq!(rows, vec![tuple![1], tuple![3]]);
        // reinsert previously removed tuple must succeed as new
        assert!(r.insert(tuple![2]).unwrap());
    }

    #[test]
    fn retain_keeps_index_consistent() {
        let mut r = r2();
        r.retain(|t| t[0] == Value::int(1));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1, 2]));
        assert!(!r.contains(&tuple![3, 4]));
        // reinsert previously removed tuple must succeed as new
        assert!(r.insert(tuple![3, 4]).unwrap());
    }
}
