//! Parallel relational kernels: hash-partitioned ⋈ and morsel-chunked ⋉
//! scheduled on a [`pq_exec::Pool`].
//!
//! # Determinism contract
//!
//! Both kernels produce the **same relation at any thread count**, because
//! the work decomposition is fixed before any thread runs and the partial
//! results are merged in decomposition order (what `pq-exec` guarantees):
//!
//! * [`Relation::par_natural_join`] partitions *both* sides into a fixed
//!   number of buckets ([`JOIN_PARTITIONS`], independent of the pool's
//!   degree) by a deterministic hash of the join key, joins bucket `i` of
//!   the left against bucket `i` of the right, and concatenates the bucket
//!   outputs in bucket order. Equal join keys land in equal buckets, so no
//!   output tuple can arise in two buckets; the result *set* equals the
//!   serial join's, though the insertion order is bucket-major rather than
//!   left-scan order.
//! * [`Relation::par_semijoin`] builds the key set once, splits the left
//!   rows into contiguous morsels, filters each morsel, and concatenates in
//!   morsel order — **byte-identical** to the serial semijoin, including
//!   insertion order, at every degree.
//!
//! The hash used for bucketing is `DefaultHasher` with its default keys —
//! fixed within a build — rather than the `RandomState` that seeds the
//! standard library's hash *maps*; a randomly seeded bucketing would still
//! be thread-count independent but would shuffle insertion order from run
//! to run.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use pq_exec::Pool;

use crate::algebra::join_plan;
use crate::error::Result;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// Number of hash buckets for the partitioned join. A constant (not derived
/// from the pool degree) so the decomposition — and with it the output — is
/// identical at any thread count; 32 buckets keep a pool of up to ~16
/// workers busy with claim-based scheduling absorbing skew.
pub const JOIN_PARTITIONS: usize = 32;

/// Deterministic bucket index for a tuple's join-key columns.
fn bucket(t: &Tuple, key: &[usize], buckets: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &i in key {
        t[i].hash(&mut h);
    }
    (h.finish() as usize) % buckets
}

impl Relation {
    /// Natural join ⋈ evaluated as a hash-partitioned parallel join on
    /// `pool`. Same result set as [`Relation::natural_join`] at any thread
    /// count (see the module docs for the order caveat).
    ///
    /// With no shared attributes the join degenerates to a Cartesian
    /// product, which has a single "partition" — that case (and a degree-1
    /// pool) falls back to the serial kernel.
    pub fn par_natural_join(&self, right: &Relation, pool: &Pool) -> Result<Relation> {
        let plan = join_plan(self, right);
        if plan.left_key.is_empty() || pool.threads() <= 1 {
            return self.natural_join(right);
        }
        let mut lparts: Vec<Vec<&Tuple>> = (0..JOIN_PARTITIONS).map(|_| Vec::new()).collect();
        let mut rparts: Vec<Vec<&Tuple>> = (0..JOIN_PARTITIONS).map(|_| Vec::new()).collect();
        for t in self.iter() {
            lparts[bucket(t, &plan.left_key, JOIN_PARTITIONS)].push(t);
        }
        for t in right.iter() {
            rparts[bucket(t, &plan.right_key, JOIN_PARTITIONS)].push(t);
        }
        let pairs: Vec<(Vec<&Tuple>, Vec<&Tuple>)> = lparts.into_iter().zip(rparts).collect();
        let parts: Vec<Vec<Tuple>> = pool.run(&pairs, |_, (ls, rs)| {
            // Build on the right, probe with the left — the serial kernel's
            // shape, restricted to one bucket.
            let mut table: std::collections::HashMap<Tuple, Vec<&Tuple>> =
                std::collections::HashMap::new();
            for rt in rs {
                table
                    .entry(rt.project(&plan.right_key))
                    .or_default()
                    .push(rt);
            }
            let mut out = Vec::new();
            for lt in ls {
                if let Some(matches) = table.get(&lt.project(&plan.left_key)) {
                    for rt in matches {
                        let extra = plan.right_rest.iter().map(|&j| rt[j].clone());
                        out.push(lt.extend_with(extra));
                    }
                }
            }
            out
        });
        let mut out = Relation::new(plan.out_attrs.iter().cloned())?;
        for part in parts {
            for t in part {
                out.insert(t).expect("join arity matches");
            }
        }
        Ok(out)
    }

    /// Semijoin ⋉ evaluated by filtering contiguous morsels of `self` in
    /// parallel against a shared key set. Byte-identical to
    /// [`Relation::semijoin`] — same tuples in the same insertion order —
    /// at any thread count.
    pub fn par_semijoin(&self, right: &Relation, pool: &Pool) -> Relation {
        if pool.threads() <= 1 {
            return self.semijoin(right);
        }
        let plan = join_plan(self, right);
        let keys: HashSet<Tuple> = right.iter().map(|t| t.project(&plan.right_key)).collect();
        let rows: Vec<&Tuple> = self.iter().collect();
        let ranges = pq_exec::morsels(rows.len(), pool.threads() * 4);
        let parts: Vec<Vec<&Tuple>> = pool.run(&ranges, |_, r| {
            rows[r.clone()]
                .iter()
                .filter(|t| keys.contains(&t.project(&plan.left_key)))
                .copied()
                .collect()
        });
        let mut out = Relation::new(self.attrs().iter().cloned())
            .expect("header of an existing relation is valid");
        for part in parts {
            for t in part {
                out.insert(t.clone()).expect("same arity");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Value;

    /// A relation with skewed join keys: many tuples share key 0.
    fn skewed(n: i64, name_a: &str, name_b: &str) -> Relation {
        let mut r = Relation::new([name_a.to_string(), name_b.to_string()]).unwrap();
        for i in 0..n {
            let key = if i % 3 == 0 { 0 } else { i % 17 };
            r.insert(tuple![key, i]).unwrap();
            r.insert(Tuple::new([Value::int(i % 11), Value::int(-i)]))
                .unwrap();
        }
        r
    }

    #[test]
    fn par_join_matches_serial_at_every_degree() {
        let l = skewed(200, "k", "a");
        let r = skewed(150, "k", "b");
        let serial = l.natural_join(&r).unwrap();
        for t in [1, 2, 8] {
            let got = l.par_natural_join(&r, &Pool::new(t)).unwrap();
            assert_eq!(got, serial, "degree {t}");
        }
        // And the decomposition itself is degree-independent: identical
        // insertion order between two parallel degrees.
        let a = l.par_natural_join(&r, &Pool::new(2)).unwrap();
        let b = l.par_natural_join(&r, &Pool::new(8)).unwrap();
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>(),
            "bucket-major order is fixed"
        );
    }

    #[test]
    fn par_join_without_shared_attrs_is_product() {
        let a = Relation::with_tuples(["a"], [tuple![1], tuple![2]]).unwrap();
        let b = Relation::with_tuples(["b"], [tuple![10], tuple![20]]).unwrap();
        let got = a.par_natural_join(&b, &Pool::new(4)).unwrap();
        assert_eq!(got, a.natural_join(&b).unwrap());
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn par_semijoin_is_byte_identical_to_serial() {
        let l = skewed(300, "k", "a");
        let keys = Relation::with_tuples(["k"], (0..5).map(|i| tuple![i])).unwrap();
        let serial = l.semijoin(&keys);
        for t in [1, 2, 8] {
            let got = l.par_semijoin(&keys, &Pool::new(t));
            assert_eq!(got, serial, "degree {t}: set equality");
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                serial.iter().collect::<Vec<_>>(),
                "degree {t}: insertion order too"
            );
        }
    }

    #[test]
    fn par_kernels_handle_empty_inputs() {
        let e = Relation::new(["x", "y"]).unwrap();
        let pool = Pool::new(4);
        assert_eq!(e.par_natural_join(&e, &pool).unwrap().len(), 0);
        assert_eq!(e.par_semijoin(&e, &pool).len(), 0);
    }
}
