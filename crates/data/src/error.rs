//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by relation and database operations.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// An attribute name was referenced that the relation header lacks.
    UnknownAttribute {
        /// The missing attribute.
        attr: String,
        /// The header it was looked up in.
        header: Vec<String>,
    },
    /// A tuple of the wrong arity was inserted into a relation.
    ArityMismatch {
        /// Arity the relation expects.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// A header contained the same attribute name twice.
    DuplicateAttribute(String),
    /// A set operation (union/intersection/difference) was applied to
    /// relations with different headers.
    HeaderMismatch {
        /// Left header.
        left: Vec<String>,
        /// Right header.
        right: Vec<String>,
    },
    /// A relation name was not found in the database catalog.
    UnknownRelation(String),
    /// A relation name was inserted twice into a database catalog.
    DuplicateRelation(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute { attr, header } => {
                write!(f, "unknown attribute `{attr}` (header: {header:?})")
            }
            DataError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            DataError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}` in header"),
            DataError::HeaderMismatch { left, right } => {
                write!(f, "header mismatch: {left:?} vs {right:?}")
            }
            DataError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DataError::DuplicateRelation(r) => write!(f, "duplicate relation `{r}`"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenient result alias for this crate.
pub type Result<T, E = DataError> = std::result::Result<T, E>;
