//! `pq-data` — the relational substrate for the reproduction of
//! Papadimitriou & Yannakakis, *On the Complexity of Database Queries*
//! (PODS 1997 / JCSS 1999).
//!
//! This crate implements the data model the paper's Section 3 assumes:
//! domains of constants ([`Value`]), tuples ([`Tuple`]), named-attribute
//! relations ([`Relation`]) with the relational-algebra operators σ, π, ⋈,
//! ⋉, ∪, ∩, −, ρ, ×, and database instances ([`Database`]) with their active
//! domain. Everything downstream — the Yannakakis algorithm, the Theorem 2
//! color-coding engine, all the W-hierarchy reductions — is written against
//! these types.

#![warn(missing_docs)]

pub mod algebra;
pub mod database;
pub mod error;
pub mod loader;
pub mod par;
pub mod relation;
pub mod tuple;
pub mod value;

pub use database::Database;
pub use error::{DataError, Result};
pub use loader::{parse_database, render_database};
pub use relation::Relation;
pub use tuple::Tuple;
pub use value::Value;
