//! Relational algebra on [`Relation`]: σ, π, ⋈, ⋉, ∪, ∩, −, ρ, ×.
//!
//! These are the operators Section 5's Algorithms 1 and 2 are phrased in
//! (e.g. `Pu := σ_F(Pu ⋈ π_{Yj∩Yu}(Pj))`). Joins are *natural* joins: columns
//! are matched by attribute name. Two implementations are provided — hash
//! join (default) and sort-merge join — so the choice can be ablated
//! (DESIGN.md A5).

use std::collections::HashMap;

use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Column-matching plan shared by the join variants (including the parallel
/// kernels in [`crate::par`]).
pub(crate) struct JoinPlan {
    /// Positions of the join attributes in the left relation.
    pub(crate) left_key: Vec<usize>,
    /// Positions of the join attributes in the right relation.
    pub(crate) right_key: Vec<usize>,
    /// Positions of the right columns that are *not* join columns.
    pub(crate) right_rest: Vec<usize>,
    /// Output header: left attrs then non-shared right attrs.
    pub(crate) out_attrs: Vec<String>,
}

pub(crate) fn join_plan(left: &Relation, right: &Relation) -> JoinPlan {
    let mut left_key = Vec::new();
    let mut right_key = Vec::new();
    for (i, a) in left.attrs().iter().enumerate() {
        if let Some(j) = right.attr_pos(a) {
            left_key.push(i);
            right_key.push(j);
        }
    }
    let right_rest: Vec<usize> = (0..right.arity())
        .filter(|j| !right_key.contains(j))
        .collect();
    let mut out_attrs: Vec<String> = left.attrs().to_vec();
    out_attrs.extend(right_rest.iter().map(|&j| right.attrs()[j].clone()));
    JoinPlan {
        left_key,
        right_key,
        right_rest,
        out_attrs,
    }
}

impl Relation {
    /// σ: tuples satisfying `pred`.
    pub fn select(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Relation {
        let mut out = Relation::new(self.attrs().iter().cloned())
            .expect("header of an existing relation is valid");
        for t in self.iter() {
            if pred(t) {
                out.insert(t.clone()).expect("same arity");
            }
        }
        out
    }

    /// σ with an attribute/constant equality: `attr = value`.
    pub fn select_eq_const(&self, attr: &str, value: &Value) -> Result<Relation> {
        let p = self.attr_pos_checked(attr)?;
        Ok(self.select(|t| &t[p] == value))
    }

    /// σ with an attribute/constant disequality: `attr ≠ value`.
    pub fn select_ne_const(&self, attr: &str, value: &Value) -> Result<Relation> {
        let p = self.attr_pos_checked(attr)?;
        Ok(self.select(|t| &t[p] != value))
    }

    /// σ with an attribute/attribute equality: `a = b`.
    pub fn select_eq_attrs(&self, a: &str, b: &str) -> Result<Relation> {
        let (pa, pb) = (self.attr_pos_checked(a)?, self.attr_pos_checked(b)?);
        Ok(self.select(|t| t[pa] == t[pb]))
    }

    /// σ with an attribute/attribute disequality: `a ≠ b`.
    pub fn select_ne_attrs(&self, a: &str, b: &str) -> Result<Relation> {
        let (pa, pb) = (self.attr_pos_checked(a)?, self.attr_pos_checked(b)?);
        Ok(self.select(|t| t[pa] != t[pb]))
    }

    /// π: keep `attrs` (in the given order), deduplicating.
    ///
    /// # Errors
    /// When an attribute is unknown or repeats in the request.
    pub fn project(&self, attrs: &[&str]) -> Result<Relation> {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| self.attr_pos_checked(a))
            .collect::<Result<_>>()?;
        let mut out = Relation::new(attrs.iter().map(|s| s.to_string()))?;
        for t in self.iter() {
            out.insert(t.project(&positions))
                .expect("projection arity matches");
        }
        Ok(out)
    }

    /// π keeping every attribute present in `keep` (intersection, preserving
    /// this relation's column order). Attributes of `keep` missing from the
    /// header are ignored — convenient for the `π_{Yj∩Yu}` steps of
    /// Algorithm 1 where the index sets are computed externally.
    pub fn project_onto(&self, keep: &[String]) -> Relation {
        let cols: Vec<&str> = self
            .attrs()
            .iter()
            .filter(|a| keep.contains(a))
            .map(String::as_str)
            .collect();
        self.project(&cols).expect("columns come from own header")
    }

    /// ρ: rename attributes via a (old → new) mapping; names absent from the
    /// map are kept.
    ///
    /// # Errors
    /// When the renaming introduces a duplicate attribute.
    pub fn rename(&self, mapping: &HashMap<String, String>) -> Result<Relation> {
        let attrs: Vec<String> = self
            .attrs()
            .iter()
            .map(|a| mapping.get(a).cloned().unwrap_or_else(|| a.clone()))
            .collect();
        Relation::with_tuples(attrs, self.iter().cloned())
    }

    /// Natural join ⋈ via hash join. Shared attribute names are the join key;
    /// the output header is the left header followed by the right-only
    /// attributes. With no shared attributes this degenerates to the
    /// Cartesian product.
    ///
    /// ```
    /// use pq_data::{tuple, Relation};
    ///
    /// let r = Relation::with_tuples(["a", "b"], [tuple![1, 2]]).unwrap();
    /// let s = Relation::with_tuples(["b", "c"], [tuple![2, 3], tuple![9, 9]]).unwrap();
    /// let j = r.natural_join(&s).unwrap();
    /// assert_eq!(j.attrs(), ["a", "b", "c"]);
    /// assert!(j.contains(&tuple![1, 2, 3]));
    /// assert_eq!(j.len(), 1);
    /// ```
    pub fn natural_join(&self, right: &Relation) -> Result<Relation> {
        let plan = join_plan(self, right);
        let mut out = Relation::new(plan.out_attrs.iter().cloned())?;
        // Build on the right, probe with the left.
        let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        for t in right.iter() {
            table.entry(t.project(&plan.right_key)).or_default().push(t);
        }
        for lt in self.iter() {
            let key = lt.project(&plan.left_key);
            if let Some(matches) = table.get(&key) {
                for rt in matches {
                    let extra = plan.right_rest.iter().map(|&j| rt[j].clone());
                    out.insert(lt.extend_with(extra))
                        .expect("join arity matches");
                }
            }
        }
        Ok(out)
    }

    /// Natural join ⋈ via sort-merge join. Semantically identical to
    /// [`Relation::natural_join`]; kept for the A5 ablation bench.
    pub fn natural_join_sort_merge(&self, right: &Relation) -> Result<Relation> {
        let plan = join_plan(self, right);
        let mut out = Relation::new(plan.out_attrs.iter().cloned())?;
        let mut ls: Vec<(Tuple, &Tuple)> = self
            .iter()
            .map(|t| (t.project(&plan.left_key), t))
            .collect();
        let mut rs: Vec<(Tuple, &Tuple)> = right
            .iter()
            .map(|t| (t.project(&plan.right_key), t))
            .collect();
        ls.sort_by(|a, b| a.0.cmp(&b.0));
        rs.sort_by(|a, b| a.0.cmp(&b.0));
        let (mut i, mut j) = (0, 0);
        while i < ls.len() && j < rs.len() {
            match ls[i].0.cmp(&rs[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let key = &ls[i].0;
                    let i_end = ls[i..].iter().take_while(|(k, _)| k == key).count() + i;
                    let j_end = rs[j..].iter().take_while(|(k, _)| k == key).count() + j;
                    for (_, lt) in &ls[i..i_end] {
                        for (_, rt) in &rs[j..j_end] {
                            let extra = plan.right_rest.iter().map(|&c| rt[c].clone());
                            out.insert(lt.extend_with(extra))
                                .expect("join arity matches");
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        Ok(out)
    }

    /// Semijoin ⋉: tuples of `self` that join with at least one tuple of
    /// `right` on the shared attributes.
    pub fn semijoin(&self, right: &Relation) -> Relation {
        let plan = join_plan(self, right);
        let keys: std::collections::HashSet<Tuple> =
            right.iter().map(|t| t.project(&plan.right_key)).collect();
        self.select(|t| keys.contains(&t.project(&plan.left_key)))
    }

    /// Antijoin ▷: tuples of `self` that join with *no* tuple of `right`.
    pub fn antijoin(&self, right: &Relation) -> Relation {
        let plan = join_plan(self, right);
        let keys: std::collections::HashSet<Tuple> =
            right.iter().map(|t| t.project(&plan.right_key)).collect();
        self.select(|t| !keys.contains(&t.project(&plan.left_key)))
    }

    /// ∪ over identical headers.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.check_same_header(other)?;
        let mut out = self.clone();
        for t in other.iter() {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    /// ∩ over identical headers.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        self.check_same_header(other)?;
        Ok(self.select(|t| other.contains(t)))
    }

    /// − (set difference) over identical headers.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.check_same_header(other)?;
        Ok(self.select(|t| !other.contains(t)))
    }

    /// × (Cartesian product); attribute sets must be disjoint.
    pub fn product(&self, other: &Relation) -> Result<Relation> {
        if self.attrs().iter().any(|a| other.attr_pos(a).is_some()) {
            return Err(DataError::HeaderMismatch {
                left: self.attrs().to_vec(),
                right: other.attrs().to_vec(),
            });
        }
        self.natural_join(other)
    }

    fn check_same_header(&self, other: &Relation) -> Result<()> {
        if self.attrs() != other.attrs() {
            return Err(DataError::HeaderMismatch {
                left: self.attrs().to_vec(),
                right: other.attrs().to_vec(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn edges() -> Relation {
        Relation::with_tuples(["x", "y"], [tuple![1, 2], tuple![2, 3], tuple![1, 3]]).unwrap()
    }

    #[test]
    fn select_variants() {
        let e = edges();
        assert_eq!(e.select_eq_const("x", &Value::int(1)).unwrap().len(), 2);
        assert_eq!(e.select_ne_const("x", &Value::int(1)).unwrap().len(), 1);
        let d = Relation::with_tuples(["a", "b"], [tuple![1, 1], tuple![1, 2]]).unwrap();
        assert_eq!(d.select_eq_attrs("a", "b").unwrap().len(), 1);
        assert_eq!(d.select_ne_attrs("a", "b").unwrap().len(), 1);
        assert!(e.select_eq_const("nope", &Value::int(0)).is_err());
    }

    #[test]
    fn project_dedups() {
        let e = edges();
        let p = e.project(&["x"]).unwrap();
        assert_eq!(p.len(), 2); // {1, 2}
        assert_eq!(p.attrs(), ["x"]);
        // reorder + check content
        let q = e.project(&["y", "x"]).unwrap();
        assert!(q.contains(&tuple![2, 1]));
    }

    #[test]
    fn project_onto_ignores_foreign_names() {
        let e = edges();
        let p = e.project_onto(&["y".into(), "zz".into()]);
        assert_eq!(p.attrs(), ["y"]);
    }

    #[test]
    fn hash_join_path_query() {
        // E(x,y) ⋈ E(y,z): paths of length 2
        let e = edges();
        let e2 = e
            .rename(&HashMap::from([
                ("x".into(), "y".into()),
                ("y".into(), "z".into()),
            ]))
            .unwrap();
        let j = e.natural_join(&e2).unwrap();
        assert_eq!(j.attrs(), ["x", "y", "z"]);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&tuple![1, 2, 3]));
    }

    #[test]
    fn sort_merge_agrees_with_hash_join() {
        let e = edges();
        let e2 = e
            .rename(&HashMap::from([
                ("x".into(), "y".into()),
                ("y".into(), "z".into()),
            ]))
            .unwrap();
        assert_eq!(
            e.natural_join(&e2).unwrap(),
            e.natural_join_sort_merge(&e2).unwrap()
        );
    }

    #[test]
    fn join_with_no_shared_attrs_is_product() {
        let a = Relation::with_tuples(["a"], [tuple![1], tuple![2]]).unwrap();
        let b = Relation::with_tuples(["b"], [tuple![10], tuple![20]]).unwrap();
        let p = a.product(&b).unwrap();
        assert_eq!(p.len(), 4);
        assert!(a.product(&a).is_err());
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let e = edges();
        let pick = Relation::with_tuples(["y"], [tuple![2]]).unwrap();
        let semi = e.semijoin(&pick);
        let anti = e.antijoin(&pick);
        assert_eq!(semi.len(), 1);
        assert!(semi.contains(&tuple![1, 2]));
        assert_eq!(anti.len(), 2);
        assert_eq!(semi.len() + anti.len(), e.len());
    }

    #[test]
    fn set_operations() {
        let a = Relation::with_tuples(["x"], [tuple![1], tuple![2]]).unwrap();
        let b = Relation::with_tuples(["x"], [tuple![2], tuple![3]]).unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.intersect(&b).unwrap().len(), 1);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        let c = Relation::new(["y"]).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn rename_detects_collisions() {
        let e = edges();
        let bad = HashMap::from([("x".into(), "y".into())]);
        assert!(e.rename(&bad).is_err());
    }
}
