//! Databases: named catalogs of relations, plus the active domain.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// A database instance `d = [D; R1, …, Rm]` (Section 3 of the paper).
///
/// The domain `D` is implicit: we expose the *active domain* (every constant
/// appearing in some relation), which is what all the paper's algorithms
/// range over.
///
/// Every database carries a monotone **mutation epoch**
/// ([`Database::epoch`]): a counter bumped by every mutating method,
/// including [`Database::relation_mut`] (which is *assumed* to mutate —
/// handing out `&mut Relation` makes the change invisible to the catalog).
/// Caches keyed by `(query, database, epoch)` are therefore invalidated by
/// construction when the data changes. The epoch is bookkeeping, not data:
/// it does not participate in equality.
///
/// The epoch is itself the sum of a **per-relation epoch vector**
/// ([`Database::relation_epoch`]): each mutation bumps exactly one
/// relation's counter, so a cache keyed only by the relations a query
/// actually mentions survives writes to unrelated relations. Counters for
/// removed relations are retained as tombstones — the sum (and every
/// per-name counter) stays monotone across remove/re-add cycles.
#[derive(Debug, Clone, Default, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    epoch: u64,
    rel_epochs: BTreeMap<String, u64>,
}

impl PartialEq for Database {
    /// Semantic equality: same relations, regardless of mutation history.
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The mutation epoch: how many mutating calls this instance has seen.
    ///
    /// Monotone within one instance (clones inherit the current value and
    /// advance independently). Always equal to the sum of the per-relation
    /// epochs, tombstones included.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutation epoch of one relation: how many mutating calls have
    /// targeted `name` (0 when never touched). Survives removal as a
    /// tombstone, so it is monotone even across remove/re-add cycles.
    pub fn relation_epoch(&self, name: &str) -> u64 {
        self.rel_epochs.get(name).copied().unwrap_or(0)
    }

    /// The full per-relation epoch vector (including tombstones for removed
    /// relations), in name order.
    pub fn relation_epochs(&self) -> &BTreeMap<String, u64> {
        &self.rel_epochs
    }

    /// Bump the global epoch and `name`'s per-relation counter in lockstep
    /// (the invariant behind `epoch() == relation_epochs().values().sum()`).
    fn touch(&mut self, name: &str) {
        self.epoch += 1;
        *self.rel_epochs.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Register a relation under `name`.
    ///
    /// # Errors
    /// [`DataError::DuplicateRelation`] when the name is taken.
    pub fn add_relation(&mut self, name: impl Into<String>, rel: Relation) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(DataError::DuplicateRelation(name));
        }
        self.touch(&name);
        self.relations.insert(name, rel);
        Ok(())
    }

    /// Replace (or insert) a relation unconditionally.
    pub fn set_relation(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        self.touch(&name);
        self.relations.insert(name, rel);
    }

    /// Remove a relation, returning it if present. The relation's epoch
    /// counter is kept as a tombstone (see [`Database::relation_epoch`]).
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        let removed = self.relations.remove(name);
        if removed.is_some() {
            self.touch(name);
        }
        removed
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Look up a relation mutably. Bumps the epoch (the borrow is assumed to
    /// mutate; a conservative bump only costs a spurious cache miss, while a
    /// missed bump would serve stale answers).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        if !self.relations.contains_key(name) {
            return Err(DataError::UnknownRelation(name.to_string()));
        }
        self.touch(name);
        Ok(self.relations.get_mut(name).expect("checked above"))
    }

    /// Insert rows into relation `name`, returning the rows that were
    /// actually new (duplicates are silently dropped) in input order. Bumps
    /// the relation's epoch only when something changed, so a no-op batch
    /// does not invalidate caches. The returned rows are the exact delta a
    /// maintenance plan needs.
    ///
    /// # Errors
    /// [`DataError::UnknownRelation`] when absent;
    /// [`DataError::ArityMismatch`] when any row has the wrong arity (the
    /// whole batch is rejected — nothing is inserted).
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<Vec<Tuple>> {
        let arity = self.relation(name)?.arity();
        let rows: Vec<Tuple> = rows.into_iter().collect();
        for t in &rows {
            if t.arity() != arity {
                return Err(DataError::ArityMismatch {
                    expected: arity,
                    found: t.arity(),
                });
            }
        }
        let rel = self.relations.get_mut(name).expect("checked above");
        let mut inserted = Vec::new();
        for t in rows {
            if rel.insert(t.clone())? {
                inserted.push(t);
            }
        }
        if !inserted.is_empty() {
            self.touch(name);
        }
        Ok(inserted)
    }

    /// Delete rows from relation `name`, returning the rows that were
    /// actually present (and are now gone) in input order, deduplicated.
    /// Rows not in the relation — including rows of the wrong arity — are
    /// silently skipped. Bumps the relation's epoch only when something
    /// changed.
    ///
    /// # Errors
    /// [`DataError::UnknownRelation`] when absent.
    pub fn delete_rows(&mut self, name: &str, rows: &[Tuple]) -> Result<Vec<Tuple>> {
        let rel = if self.relations.contains_key(name) {
            self.relations.get_mut(name).expect("checked above")
        } else {
            return Err(DataError::UnknownRelation(name.to_string()));
        };
        let mut removed = Vec::new();
        {
            let mut gone = std::collections::HashSet::new();
            for t in rows {
                if rel.contains(t) && gone.insert(t.clone()) {
                    removed.push(t.clone());
                }
            }
            rel.retain(|t| !gone.contains(t));
        }
        if !removed.is_empty() {
            self.touch(name);
        }
        Ok(removed)
    }

    /// True when `name` is registered.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate over (name, relation) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The database *size* `n`: total number of value occurrences across all
    /// relations (the standard-encoding size the paper's `O(n log n)` bounds
    /// refer to, up to constant factors).
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.len() * r.arity()).sum()
    }

    /// Total tuple count across relations.
    pub fn num_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The active domain: every constant appearing in some tuple.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for r in self.relations.values() {
            for v in r.values() {
                dom.insert(v.clone());
            }
        }
        dom
    }

    /// Convenience: register a fresh relation from raw rows.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<()> {
        self.add_relation(name, Relation::with_tuples(attrs, rows)?)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.relations {
            write!(f, "{name}{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn db() -> Database {
        let mut d = Database::new();
        d.add_table("E", ["x", "y"], [tuple![1, 2], tuple![2, 3]])
            .unwrap();
        d.add_table("L", ["v"], [tuple!["a"]]).unwrap();
        d
    }

    #[test]
    fn add_and_lookup() {
        let d = db();
        assert!(d.has_relation("E"));
        assert_eq!(d.relation("E").unwrap().len(), 2);
        assert!(matches!(
            d.relation("Z"),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected_but_set_overwrites() {
        let mut d = db();
        assert!(d.add_table("E", ["x"], []).is_err());
        d.set_relation("E", Relation::new(["x"]).unwrap());
        assert_eq!(d.relation("E").unwrap().arity(), 1);
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut d = Database::new();
        assert_eq!(d.epoch(), 0);
        d.add_table("E", ["x", "y"], [tuple![1, 2]]).unwrap();
        assert_eq!(d.epoch(), 1);
        // A failed add does not bump.
        assert!(d.add_table("E", ["x"], []).is_err());
        assert_eq!(d.epoch(), 1);
        d.set_relation("F", Relation::new(["v"]).unwrap());
        assert_eq!(d.epoch(), 2);
        d.relation_mut("E").unwrap().insert(tuple![3, 4]).unwrap();
        assert_eq!(d.epoch(), 3);
        assert!(d.relation_mut("missing").is_err());
        assert_eq!(d.epoch(), 3);
        assert!(d.remove_relation("F").is_some());
        assert_eq!(d.epoch(), 4);
        assert!(d.remove_relation("F").is_none());
        assert_eq!(d.epoch(), 4);
        // Read-only accessors never bump.
        let _ = d.relation("E").unwrap();
        let _ = d.size();
        let _ = d.active_domain();
        assert_eq!(d.epoch(), 4);
    }

    #[test]
    fn per_relation_epochs_sum_to_the_global_epoch() {
        let mut d = db();
        assert_eq!(d.relation_epoch("E"), 1);
        assert_eq!(d.relation_epoch("L"), 1);
        assert_eq!(d.relation_epoch("missing"), 0);
        d.relation_mut("E").unwrap().insert(tuple![9, 9]).unwrap();
        assert_eq!(d.relation_epoch("E"), 2);
        assert_eq!(d.relation_epoch("L"), 1, "untouched relation unchanged");
        // Tombstone: removing keeps the counter, re-adding keeps advancing it.
        d.remove_relation("L");
        assert_eq!(d.relation_epoch("L"), 2);
        d.add_table("L", ["v"], []).unwrap();
        assert_eq!(d.relation_epoch("L"), 3);
        assert_eq!(d.epoch(), d.relation_epochs().values().sum::<u64>());
    }

    #[test]
    fn insert_rows_reports_the_exact_delta() {
        let mut d = db();
        let before = d.relation_epoch("E");
        let added = d
            .insert_rows(
                "E",
                [tuple![1, 2], tuple![7, 8], tuple![7, 8], tuple![8, 9]],
            )
            .unwrap();
        assert_eq!(added, vec![tuple![7, 8], tuple![8, 9]]); // dup + existing dropped
        assert_eq!(d.relation_epoch("E"), before + 1);
        // A no-op batch does not bump.
        assert!(d.insert_rows("E", [tuple![1, 2]]).unwrap().is_empty());
        assert_eq!(d.relation_epoch("E"), before + 1);
        // Arity mismatch rejects the whole batch atomically.
        assert!(d.insert_rows("E", [tuple![5, 5], tuple![5]]).is_err());
        assert!(!d.relation("E").unwrap().contains(&tuple![5, 5]));
        assert!(d.insert_rows("missing", [tuple![1]]).is_err());
    }

    #[test]
    fn delete_rows_reports_the_exact_delta() {
        let mut d = db();
        let before = d.relation_epoch("E");
        let removed = d
            .delete_rows("E", &[tuple![1, 2], tuple![1, 2], tuple![9, 9], tuple![7]])
            .unwrap();
        assert_eq!(removed, vec![tuple![1, 2]]); // dup, absent, bad arity skipped
        assert_eq!(d.relation_epoch("E"), before + 1);
        assert_eq!(d.relation("E").unwrap().len(), 1);
        // A no-op batch does not bump.
        assert!(d.delete_rows("E", &[tuple![9, 9]]).unwrap().is_empty());
        assert_eq!(d.relation_epoch("E"), before + 1);
        assert!(d.delete_rows("missing", &[]).is_err());
    }

    #[test]
    fn epoch_is_excluded_from_equality() {
        let a = db();
        let mut b = db();
        // Touch b without changing its contents: epochs diverge.
        b.relation_mut("E").unwrap();
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }

    #[test]
    fn size_and_active_domain() {
        let d = db();
        assert_eq!(d.size(), 2 * 2 + 1);
        assert_eq!(d.num_tuples(), 3);
        let dom = d.active_domain();
        assert_eq!(dom.len(), 4); // 1, 2, 3, "a"
        assert!(dom.contains(&Value::int(3)));
        assert!(dom.contains(&Value::str("a")));
    }
}
