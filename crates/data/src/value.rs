//! Domain values.
//!
//! A database domain `D` (Section 3 of the paper) is a set of constants. We
//! support integer and string constants with a total order so that the
//! comparison constraints of Theorem 3 (`<`, `≤` over a dense order) are
//! well-defined. Integers compare numerically, strings lexicographically, and
//! every integer is ordered before every string; this gives one global dense
//! enough order for the paper's purposes (the consistency procedure of
//! Section 5 only needs *some* fixed total order on constants).

use std::fmt;
use std::sync::Arc;

/// A single constant of the database domain.
///
/// `Value` is cheap to clone: strings are reference-counted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_str_constructors_round_trip() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("abc").as_int(), None);
    }

    #[test]
    fn ordering_is_total_ints_before_strings() {
        assert!(Value::int(-3) < Value::int(5));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from(3usize), Value::int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("alice").to_string(), "alice");
    }

    #[test]
    fn equality_and_hash_agree_across_clones() {
        use std::collections::HashSet;
        let v = Value::str("long-ish shared string");
        let w = v.clone();
        let mut s = HashSet::new();
        s.insert(v);
        assert!(s.contains(&w));
    }
}
