//! Tuples: fixed-arity sequences of [`Value`]s.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A database tuple.
///
/// Tuples are positional; the association of positions with attribute names
/// lives in the owning [`crate::relation::Relation`]'s header.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// The tuple's arity (number of components).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component at `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterate over the components in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// The components as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// A new tuple keeping only the components at `positions`, in the given
    /// order (positions may repeat).
    ///
    /// # Panics
    /// Panics if any position is out of range; callers validate positions
    /// against the relation header.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// A new tuple equal to `self` with `extra` appended.
    pub fn extend_with(&self, extra: impl IntoIterator<Item = Value>) -> Tuple {
        Tuple(self.0.iter().cloned().chain(extra).collect())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro: `tuple![1, "a", 3]` builds a [`Tuple`] from
/// heterogeneous literals convertible [`Into<Value>`].
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_get_index() {
        let t = tuple![1, "x", 3];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(&Value::str("x")));
        assert_eq!(t.get(3), None);
        assert_eq!(t[2], Value::int(3));
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0, 0]), tuple![30, 10, 10]);
        assert_eq!(t.project(&[]), Tuple::default());
    }

    #[test]
    fn concat_and_extend() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        assert_eq!(a.concat(&b), tuple![1, 2, "x"]);
        assert_eq!(a.extend_with([Value::int(9)]), tuple![1, 2, 9]);
    }

    #[test]
    fn display_is_parenthesized() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
        assert_eq!(Tuple::default().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple![1, 2] < tuple![1, 3]);
        assert!(tuple![1] < tuple![1, 0]);
    }
}
