//! A small text format for loading databases, so examples and experiments
//! can ship datasets as plain strings/files.
//!
//! ```text
//! % comments start with '%'
//! EP(emp, proj):          # relation header: name + attribute list
//!   ann, db
//!   ann, web
//!   bob, db
//!
//! ES(emp, sal):
//!   ann, 120
//!   bob, 100
//! ```
//!
//! Field conventions match the query parser: an integer literal is an
//! integer value; everything else (optionally double-quoted) is a string
//! value. Blank lines separate nothing in particular; a new header starts
//! the next relation.

use crate::database::Database;
use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Parse the text format into a [`Database`].
///
/// # Errors
/// Propagates [`DataError`] for malformed headers, arity mismatches, or
/// duplicate relation names; the error message carries the line number.
pub fn parse_database(src: &str) -> Result<Database> {
    let mut db = Database::new();
    let mut current: Option<(String, Relation)> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = parse_header(line) {
            let (name, attrs) = header.map_err(|m| line_err(lineno, &m))?;
            if let Some((n, r)) = current.take() {
                db.add_relation(n, r)?;
            }
            let rel = Relation::new(attrs)?;
            current = Some((name, rel));
        } else {
            let Some((_, rel)) = current.as_mut() else {
                return Err(line_err(lineno, "data row before any relation header"));
            };
            let tuple = parse_row(line);
            if tuple.arity() != rel.arity() {
                return Err(DataError::ArityMismatch {
                    expected: rel.arity(),
                    found: tuple.arity(),
                });
            }
            rel.insert(tuple)?;
        }
    }
    if let Some((n, r)) = current.take() {
        db.add_relation(n, r)?;
    }
    Ok(db)
}

fn line_err(lineno: usize, message: &str) -> DataError {
    DataError::UnknownRelation(format!("line {}: {message}", lineno + 1))
}

fn strip_comment(line: &str) -> &str {
    match line.find('%') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// `Name(attr, attr, …):` → Some((name, attrs)); data rows → None.
#[allow(clippy::type_complexity)]
fn parse_header(line: &str) -> Option<std::result::Result<(String, Vec<String>), String>> {
    let line = line.strip_suffix(':')?;
    let open = line.find('(')?;
    if !line.ends_with(')') {
        return Some(Err("header missing `)`".into()));
    }
    let name = line[..open].trim();
    if name.is_empty() {
        return Some(Err("empty relation name".into()));
    }
    let attrs: Vec<String> = line[open + 1..line.len() - 1]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    Some(Ok((name.to_string(), attrs)))
}

/// Parse one comma-separated data row with the loader's field conventions
/// (integer literals become integers, optionally double-quoted text becomes
/// strings). Shared with the wire protocol's `INSERT`/`DELETE` verbs, whose
/// row syntax is exactly the loader's.
pub fn parse_row(line: &str) -> Tuple {
    Tuple::new(line.split(',').map(|field| {
        let f = field.trim();
        if let Some(stripped) = f.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            return Value::str(stripped);
        }
        match f.parse::<i64>() {
            Ok(n) => Value::Int(n),
            Err(_) => Value::str(f),
        }
    }))
}

/// Render a database back into the text format (inverse of
/// [`parse_database`] up to whitespace).
pub fn render_database(db: &Database) -> String {
    let mut out = String::new();
    for (name, rel) in db.iter() {
        out.push_str(&format!("{name}({}):\n", rel.attrs().join(", ")));
        for t in rel.iter() {
            let fields: Vec<String> = t
                .iter()
                .map(|v| match v {
                    Value::Int(i) => i.to_string(),
                    Value::Str(s) => {
                        if s.parse::<i64>().is_ok() || s.contains(',') || s.contains('%') {
                            format!("\"{s}\"")
                        } else {
                            s.to_string()
                        }
                    }
                })
                .collect();
            out.push_str(&format!("  {}\n", fields.join(", ")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    const SAMPLE: &str = r#"
% a sample company database
EP(emp, proj):
  ann, db
  ann, web
  bob, db

ES(emp, sal):
  ann, 120
  bob, 100       % trailing comment
  "99", 42
"#;

    #[test]
    fn parses_relations_and_values() {
        let db = parse_database(SAMPLE).unwrap();
        assert_eq!(db.num_relations(), 2);
        let ep = db.relation("EP").unwrap();
        assert_eq!(ep.attrs(), ["emp", "proj"]);
        assert_eq!(ep.len(), 3);
        assert!(ep.contains(&tuple!["ann", "web"]));
        let es = db.relation("ES").unwrap();
        assert!(es.contains(&tuple!["ann", 120]));
        // quoted "99" stays a string
        assert!(es.contains(&tuple!["99", 42]));
    }

    #[test]
    fn round_trip() {
        let db = parse_database(SAMPLE).unwrap();
        let text = render_database(&db);
        let db2 = parse_database(&text).unwrap();
        assert_eq!(db, db2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let bad = "R(a, b):\n  1\n";
        assert!(matches!(
            parse_database(bad),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn row_before_header_rejected() {
        assert!(parse_database("1, 2\n").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let bad = "R(a):\n 1\nR(a):\n 2\n";
        assert!(matches!(
            parse_database(bad),
            Err(DataError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn empty_relation_allowed() {
        let db = parse_database("R(a, b):\n").unwrap();
        assert!(db.relation("R").unwrap().is_empty());
    }

    #[test]
    fn zero_ary_relation() {
        let db = parse_database("P():\n").unwrap();
        assert_eq!(db.relation("P").unwrap().arity(), 0);
    }
}
