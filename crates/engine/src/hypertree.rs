//! Width-bounded evaluation of *cyclic* pure CQs by hypertree decomposition
//! (Gottlob–Leone–Scarcello, cs/9812022) — the tractability frontier one
//! step beyond the paper's acyclic island.
//!
//! Given a decomposition of width `k` (from [`pq_hypergraph::decompose`]),
//! evaluation is polynomial for fixed `k`:
//!
//! 1. **Materialize each bag**: join the (at most `k`) atom relations of the
//!    node's cover `λ(t)` together with every atom assigned to the node
//!    (most-connected-first, so disconnected covers don't degenerate into
//!    Cartesian products) and project onto the bag `χ(t)`; each original
//!    atom thereby constrains exactly one bag.
//! 2. **Sweep the bag tree**: the bags form an acyclic query (the
//!    connectedness condition makes the decomposition tree a join tree over
//!    them), so the Yannakakis full reducer plus bottom-up output join —
//!    the same passes `crate::yannakakis` runs over atom relations — finish
//!    the job in time polynomial in input + output.
//!
//! A width-1 decomposition makes this engine coincide with Yannakakis; the
//! planner still routes acyclic queries there directly and reserves this
//! engine for the new Fig. 1 cell: cyclic, pure, hypertree width ≤
//! [`DEFAULT_WIDTH_LIMIT`]. Parallel variants fan the independent bag
//! materializations out over a [`Pool`] and reuse the level-scheduled
//! semijoin sweeps, producing byte-identical output at any thread count.

use std::collections::BTreeSet;

use pq_data::{Database, Relation, Tuple};
use pq_exec::Pool;
use pq_hypergraph::{decompose, Hypergraph, HypertreeDecomposition, JoinTree, DEFAULT_WIDTH_LIMIT};
use pq_query::{ConjunctiveQuery, Term};

use crate::binding::head_attrs;
use crate::error::{EngineError, Result};
use crate::governor::{ExecutionContext, SharedContext};
use crate::yannakakis::{
    atom_relation_governed, parallel_atom_relations, parallel_downward_pass, parallel_output_join,
    parallel_upward_pass, zj_vars,
};

/// Engine name reported in resource-exhaustion errors.
const ENGINE: &str = "hypertree";

/// Precondition checks shared by the self-planning entry points: pure query,
/// and a decomposition of width ≤ [`DEFAULT_WIDTH_LIMIT`] exists. The
/// planner calls [`pq_hypergraph::decompose`] itself (via the analyzer) and
/// uses the `*_decomposed` entry points instead.
pub fn prepare(q: &ConjunctiveQuery) -> Result<HypertreeDecomposition> {
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let hg = q.hypergraph();
    let Some(d) = decompose(&hg, DEFAULT_WIDTH_LIMIT) else {
        return Err(EngineError::Unsupported(format!(
            "query has no relational atoms with variables: {q}"
        )));
    };
    if d.width() > DEFAULT_WIDTH_LIMIT {
        return Err(EngineError::Unsupported(format!(
            "hypertree width bound {} exceeds the engine limit {DEFAULT_WIDTH_LIMIT}: {q}",
            d.width()
        )));
    }
    Ok(d)
}

/// The static scaffolding the evaluator hangs relations on: the query
/// hypergraph, the *bag hypergraph* (one edge per decomposition node,
/// holding the bag's variable labels), the bag tree, and the node each atom
/// is semijoined against.
struct BagPlan {
    hg: Hypergraph,
    bags: Hypergraph,
    tree: JoinTree,
    /// `assign[e]` = the first decomposition node whose bag contains atom
    /// `e`'s variables (condition 1 guarantees one exists).
    assign: Vec<usize>,
}

fn plan_bags(q: &ConjunctiveQuery, d: &HypertreeDecomposition) -> Result<BagPlan> {
    let hg = q.hypergraph();
    debug_assert!(d.verify(&hg), "decomposition does not match the query");
    let mut bags = Hypergraph::new();
    for i in 0..d.num_nodes() {
        bags.add_edge(d.node(i).bag.iter().map(|&v| hg.label(v).to_string()));
    }
    let tree = d.to_join_tree();
    let mut assign = Vec::with_capacity(hg.num_edges());
    for e in 0..hg.num_edges() {
        let node = (0..d.num_nodes())
            .find(|&i| hg.edge(e).is_subset(&d.node(i).bag))
            .ok_or_else(|| {
                EngineError::Unsupported(format!(
                    "decomposition covers no bag for atom #{e}; it does not belong to {q}"
                ))
            })?;
        assign.push(node);
    }
    Ok(BagPlan {
        hg,
        bags,
        tree,
        assign,
    })
}

/// Materialize bag `i`: join the cover's atom relations together with every
/// atom assigned here, then project onto the bag. An assigned atom's
/// variables sit inside the bag, so joining it equals the semijoin the
/// decomposition calls for — but folding it *into* the join lets the
/// most-connected-first order below prune the disconnected-cover case (a
/// cycle's bags pair up opposite edges) that a join-then-filter order would
/// blow up into a full Cartesian product. A constant-only atom has an empty
/// edge and a zero-column relation; joining it degenerates to the emptiness
/// filter such an atom means.
fn materialize_bag(
    d: &HypertreeDecomposition,
    plan: &BagPlan,
    atom_rels: &[Relation],
    i: usize,
    ctx: &ExecutionContext,
) -> Result<Relation> {
    let node = d.node(i);
    // Cover members in ascending atom order, then the other assigned atoms.
    let mut todo: Vec<usize> = node.cover.iter().copied().collect();
    for (e, &n) in plan.assign.iter().enumerate() {
        if n == i && !node.cover.contains(&e) {
            todo.push(e);
        }
    }
    let mut acc: Option<Relation> = None;
    while !todo.is_empty() {
        ctx.tick(ENGINE)?;
        // Greedily pick the relation sharing the most attributes with the
        // accumulator; ties and the first pick fall to the lowest position,
        // so the order — and with it the output bytes — is deterministic.
        let pos = match &acc {
            None => 0,
            Some(r) => {
                let attrs: BTreeSet<&str> = r.attrs().iter().map(String::as_str).collect();
                let shared = |e: usize| {
                    atom_rels[e]
                        .attrs()
                        .iter()
                        .filter(|a| attrs.contains(a.as_str()))
                        .count()
                };
                let mut best = 0;
                for (p, &e) in todo.iter().enumerate().skip(1) {
                    if shared(e) > shared(todo[best]) {
                        best = p;
                    }
                }
                best
            }
        };
        let e = todo.remove(pos);
        let next = match acc {
            None => atom_rels[e].clone(),
            Some(r) => r.natural_join(&atom_rels[e])?,
        };
        ctx.charge_tuples(ENGINE, next.len() as u64)?;
        acc = Some(next);
    }
    let joined = acc.expect("decomposition nodes have nonempty covers");
    let keep: Vec<String> = node
        .bag
        .iter()
        .map(|&v| plan.hg.label(v).to_string())
        .collect();
    let bag_rel = joined.project_onto(&keep);
    ctx.charge_tuples(ENGINE, bag_rel.len() as u64)?;
    Ok(bag_rel)
}

fn check_safety(q: &ConjunctiveQuery) -> Result<()> {
    let body_vars: BTreeSet<&str> = q.atom_variables().into_iter().collect();
    for v in q.head_variables() {
        if !body_vars.contains(v) {
            return Err(EngineError::Query(
                pq_query::QueryError::UnsafeHeadVariable(v.to_string()),
            ));
        }
    }
    Ok(())
}

fn vacuous_output(q: &ConjunctiveQuery) -> Result<Relation> {
    let mut out = Relation::new(head_attrs(&q.head_terms))?;
    out.insert(Tuple::default())?;
    Ok(out)
}

/// Project the reduced root onto the output variables and materialize the
/// head terms — identical to the Yannakakis output step.
fn project_head(
    q: &ConjunctiveQuery,
    root_rel: &Relation,
    z: &[String],
    ctx: &ExecutionContext,
) -> Result<Relation> {
    let z_refs: Vec<&str> = z.iter().map(String::as_str).collect();
    let star = root_rel.project(&z_refs)?;
    let mut out = Relation::new(head_attrs(&q.head_terms))?;
    ctx.charge_tuples(ENGINE, star.len() as u64)?;
    for t in star.iter() {
        ctx.tick(ENGINE)?;
        let vals = q.head_terms.iter().map(|term| match term {
            Term::Const(c) => c.clone(),
            Term::Var(v) => {
                let pos = star.attr_pos(v).expect("head var in Z");
                t[pos].clone()
            }
        });
        out.insert(Tuple::new(vals))?;
    }
    Ok(out)
}

/// Materialize the decomposition's bags for `(q, db)`: the *bag hypergraph*
/// (one edge per decomposition node, labelled by the bag's variables), the
/// bag join tree, and the bag relations in node order.
///
/// This is step 1 of the evaluator, exposed so other sweeps — notably the
/// counting engine in `pq-count` — can run over the same bags without
/// re-deriving the decomposition plumbing. The bag tree is a join tree over
/// the bag hypergraph, so any algorithm for acyclic instances applies to the
/// returned triple.
pub fn materialize_bags_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    ctx: &ExecutionContext,
) -> Result<(Hypergraph, JoinTree, Vec<Relation>)> {
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels: Vec<Relation> = q
        .atoms
        .iter()
        .map(|a| atom_relation_governed(a, db, ctx))
        .collect::<Result<_>>()?;
    let rels: Vec<Relation> = (0..d.num_nodes())
        .map(|i| materialize_bag(d, &plan, &atom_rels, i, ctx))
        .collect::<Result<_>>()?;
    Ok((plan.bags, plan.tree, rels))
}

/// [`materialize_bags_governed`] with parallel atom scans and bag joins (one
/// task per bag, in node order); byte-identical output at any thread count.
pub fn materialize_bags_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<(Hypergraph, JoinTree, Vec<Relation>)> {
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels = parallel_atom_relations(q, db, shared, pool)?;
    let nodes: Vec<usize> = (0..d.num_nodes()).collect();
    let rels: Vec<Relation> = pool.try_run(&nodes, |_, &i| {
        materialize_bag(d, &plan, &atom_rels, i, &shared.worker())
    })?;
    Ok((plan.bags, plan.tree, rels))
}

/// Emptiness by one bottom-up semijoin pass over the bag tree; polynomial in
/// the input alone for fixed width.
pub fn is_nonempty(q: &ConjunctiveQuery, db: &Database) -> Result<bool> {
    is_nonempty_governed(q, db, &ExecutionContext::unlimited())
}

/// [`is_nonempty`] under the resource limits of `ctx`.
pub fn is_nonempty_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<bool> {
    if q.atoms.is_empty() {
        return Ok(true); // vacuous body
    }
    let d = prepare(q)?;
    is_nonempty_decomposed(q, db, &d, ctx)
}

/// [`is_nonempty`] with a caller-supplied decomposition (the planner reuses
/// the one the analyzer attached to its report).
pub fn is_nonempty_decomposed(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    ctx: &ExecutionContext,
) -> Result<bool> {
    if q.atoms.is_empty() {
        return Ok(true);
    }
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels: Vec<Relation> = q
        .atoms
        .iter()
        .map(|a| atom_relation_governed(a, db, ctx))
        .collect::<Result<_>>()?;
    let mut rels: Vec<Relation> = (0..d.num_nodes())
        .map(|i| materialize_bag(d, &plan, &atom_rels, i, ctx))
        .collect::<Result<_>>()?;
    for j in plan.tree.bottom_up() {
        ctx.tick(ENGINE)?;
        if rels[j].is_empty() {
            return Ok(false);
        }
        if let Some(u) = plan.tree.parent(j) {
            rels[u] = rels[u].semijoin(&rels[j]);
            ctx.charge_tuples(ENGINE, rels[u].len() as u64)?;
        }
    }
    Ok(!rels[plan.tree.root()].is_empty())
}

/// The decision problem: `t ∈ Q(d)`? Binding the head may change the
/// hypergraph (bound variables become constants), so the bound query is
/// re-decomposed from scratch.
pub fn decide(q: &ConjunctiveQuery, db: &Database, t: &Tuple) -> Result<bool> {
    decide_governed(q, db, t, &ExecutionContext::unlimited())
}

/// [`decide`] under the resource limits of `ctx`.
pub fn decide_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    t: &Tuple,
    ctx: &ExecutionContext,
) -> Result<bool> {
    match q.bind_head(t)? {
        None => Ok(false),
        Some(bq) => is_nonempty_governed(&bq, db, ctx),
    }
}

/// Full evaluation, polynomial in input + output for fixed width.
///
/// ```
/// use pq_data::{tuple, Database};
/// use pq_query::parse_cq;
///
/// let mut db = Database::new();
/// db.add_table(
///     "E",
///     ["a", "b"],
///     [tuple![1, 2], tuple![2, 3], tuple![3, 1], tuple![3, 4]],
/// )
/// .unwrap();
/// let q = parse_cq("G(x) :- E(x, y), E(y, z), E(z, x).").unwrap();
/// let out = pq_engine::hypertree::evaluate(&q, &db).unwrap();
/// assert_eq!(out.len(), 3); // the 1-2-3 triangle, from each corner
/// ```
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Result<Relation> {
    evaluate_governed(q, db, &ExecutionContext::unlimited())
}

/// [`evaluate`] under the resource limits of `ctx`: bag materialization
/// ticks per cover join and charges every intermediate relation, so a bag
/// blowing past the budget stops the query instead of exhausting memory.
pub fn evaluate_governed(
    q: &ConjunctiveQuery,
    db: &Database,
    ctx: &ExecutionContext,
) -> Result<Relation> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return vacuous_output(q);
    }
    let d = prepare(q)?;
    evaluate_decomposed(q, db, &d, ctx)
}

/// [`evaluate`] with a caller-supplied decomposition.
pub fn evaluate_decomposed(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    ctx: &ExecutionContext,
) -> Result<Relation> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return vacuous_output(q);
    }
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels: Vec<Relation> = q
        .atoms
        .iter()
        .map(|a| atom_relation_governed(a, db, ctx))
        .collect::<Result<_>>()?;
    let mut rels: Vec<Relation> = (0..d.num_nodes())
        .map(|i| materialize_bag(d, &plan, &atom_rels, i, ctx))
        .collect::<Result<_>>()?;

    // Upward semijoin pass (full-reducer half 1) over the bag tree.
    for j in plan.tree.bottom_up() {
        ctx.tick(ENGINE)?;
        if rels[j].is_empty() {
            return Ok(Relation::new(head_attrs(&q.head_terms))?);
        }
        if let Some(u) = plan.tree.parent(j) {
            rels[u] = rels[u].semijoin(&rels[j]);
            ctx.charge_tuples(ENGINE, rels[u].len() as u64)?;
        }
    }

    // Downward semijoin pass (full-reducer half 2).
    for j in plan.tree.top_down() {
        ctx.tick(ENGINE)?;
        if let Some(u) = plan.tree.parent(j) {
            rels[j] = rels[j].semijoin(&rels[u]);
            ctx.charge_tuples(ENGINE, rels[j].len() as u64)?;
        }
    }

    // Bottom-up join + project over the bag hypergraph.
    let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
    for j in plan.tree.bottom_up() {
        ctx.tick(ENGINE)?;
        let Some(u) = plan.tree.parent(j) else {
            continue;
        };
        let zj = zj_vars(&plan.bags, &plan.tree, j, u, &z);
        let projected = rels[j].project_onto(&zj);
        rels[u] = rels[u].natural_join(&projected)?;
        ctx.charge_tuples(ENGINE, (projected.len() + rels[u].len()) as u64)?;
        if rels[u].is_empty() {
            return Ok(Relation::new(head_attrs(&q.head_terms))?);
        }
    }

    project_head(q, &rels[plan.tree.root()], &z, ctx)
}

/// [`is_nonempty`] with parallel bag materialization and level-scheduled
/// parallel semijoin sweeps; same answer as the serial engine at any thread
/// count.
pub fn is_nonempty_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<bool> {
    if q.atoms.is_empty() {
        return Ok(true);
    }
    let d = prepare(q)?;
    is_nonempty_decomposed_parallel(q, db, &d, shared, pool)
}

/// [`is_nonempty_parallel`] with a caller-supplied decomposition.
pub fn is_nonempty_decomposed_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<bool> {
    if q.atoms.is_empty() {
        return Ok(true);
    }
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels = parallel_atom_relations(q, db, shared, pool)?;
    let nodes: Vec<usize> = (0..d.num_nodes()).collect();
    let mut rels: Vec<Relation> = pool.try_run(&nodes, |_, &i| {
        materialize_bag(d, &plan, &atom_rels, i, &shared.worker())
    })?;
    if !parallel_upward_pass(&plan.tree, &mut rels, shared, pool, ENGINE)? {
        return Ok(false);
    }
    Ok(!rels[plan.tree.root()].is_empty())
}

/// [`evaluate`] with parallel bag materialization, parallel semijoin sweeps,
/// and a parallel output-join phase. Byte-identical to the serial engine at
/// any thread count: bags materialize independently (one task per node, in
/// node order), and the tree passes reuse the deterministic level schedule
/// of the Yannakakis engine.
pub fn evaluate_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<Relation> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return vacuous_output(q);
    }
    let d = prepare(q)?;
    evaluate_decomposed_parallel(q, db, &d, shared, pool)
}

/// [`evaluate_parallel`] with a caller-supplied decomposition.
pub fn evaluate_decomposed_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &HypertreeDecomposition,
    shared: &SharedContext,
    pool: &Pool,
) -> Result<Relation> {
    check_safety(q)?;
    if q.atoms.is_empty() {
        return vacuous_output(q);
    }
    if !q.is_pure() {
        return Err(EngineError::Unsupported(
            "hypertree engine handles pure CQs; use the color-coding engine for ≠".into(),
        ));
    }
    let plan = plan_bags(q, d)?;
    let atom_rels = parallel_atom_relations(q, db, shared, pool)?;
    let nodes: Vec<usize> = (0..d.num_nodes()).collect();
    let mut rels: Vec<Relation> = pool.try_run(&nodes, |_, &i| {
        materialize_bag(d, &plan, &atom_rels, i, &shared.worker())
    })?;

    if !parallel_upward_pass(&plan.tree, &mut rels, shared, pool, ENGINE)? {
        return Ok(Relation::new(head_attrs(&q.head_terms))?);
    }
    if rels[plan.tree.root()].is_empty() {
        return Ok(Relation::new(head_attrs(&q.head_terms))?);
    }
    parallel_downward_pass(&plan.tree, &mut rels, shared, pool, ENGINE)?;

    let z: Vec<String> = q.head_variables().iter().map(|v| v.to_string()).collect();
    if !parallel_output_join(&plan.bags, &plan.tree, &mut rels, &z, shared, pool, ENGINE)? {
        return Ok(Relation::new(head_attrs(&q.head_terms))?);
    }
    project_head(q, &rels[plan.tree.root()], &z, &shared.worker())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use pq_data::tuple;
    use pq_query::parse_cq;

    fn triangle_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            "E",
            ["a", "b"],
            [
                tuple![1, 2],
                tuple![2, 3],
                tuple![3, 1],
                tuple![3, 4],
                tuple![4, 5],
                tuple![5, 3],
                tuple![1, 4],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn triangle_query_agrees_with_naive() {
        let q = parse_cq("G(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let db = triangle_db();
        let h = evaluate(&q, &db).unwrap();
        let n = naive::evaluate(&q, &db).unwrap();
        assert_eq!(h, n);
        assert!(!h.is_empty());
    }

    #[test]
    fn cycle_of_length_six_agrees_with_naive() {
        let mut db = Database::new();
        let mut rows = Vec::new();
        for i in 0..14i64 {
            rows.push(tuple![i % 5, (i * 3 + 1) % 5]);
        }
        db.add_table("E", ["a", "b"], rows).unwrap();
        let q = parse_cq(
            "G(x0, x3) :- E(x0, x1), E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x5), E(x5, x0).",
        )
        .unwrap();
        let h = evaluate(&q, &db).unwrap();
        let n = naive::evaluate(&q, &db).unwrap();
        assert_eq!(h, n);
    }

    #[test]
    fn boolean_triangle_and_emptiness() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x).").unwrap();
        let db = triangle_db();
        assert!(is_nonempty(&q, &db).unwrap());
        let out = evaluate(&q, &db).unwrap();
        assert_eq!(out.len(), 1);

        // A triangle-free database: the DAG 1→2→3, 1→3.
        let mut dag = Database::new();
        dag.add_table("E", ["a", "b"], [tuple![1, 2], tuple![2, 3], tuple![1, 3]])
            .unwrap();
        assert!(!is_nonempty(&q, &dag).unwrap());
        assert!(evaluate(&q, &dag).unwrap().is_empty());
    }

    #[test]
    fn acyclic_queries_are_width_one_and_supported() {
        let mut db = Database::new();
        db.add_table("R", ["a", "b"], [tuple![1, 2], tuple![2, 3]])
            .unwrap();
        db.add_table("S", ["b", "c"], [tuple![2, 9]]).unwrap();
        let q = parse_cq("G(x, c) :- R(x, y), S(y, c).").unwrap();
        let h = evaluate(&q, &db).unwrap();
        let n = naive::evaluate(&q, &db).unwrap();
        assert_eq!(h, n);
        assert!(h.contains(&tuple![1, 9]));
    }

    #[test]
    fn decision_problem_on_the_triangle() {
        let q = parse_cq("G(x) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let db = triangle_db();
        assert!(decide(&q, &db, &tuple![1]).unwrap());
        assert!(!decide(&q, &db, &tuple![9]).unwrap()); // 9 is not a vertex at all
    }

    #[test]
    fn impure_query_rejected() {
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x), x != y.").unwrap();
        let db = triangle_db();
        assert!(matches!(
            evaluate(&q, &db),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn width_above_the_limit_is_rejected_for_fallback() {
        // K7 as 21 binary atoms: past the exact gate, heuristic width 4 > 3.
        let mut atoms = Vec::new();
        for i in 0..7 {
            for j in (i + 1)..7 {
                atoms.push(format!("E(v{i}, v{j})"));
            }
        }
        let q = parse_cq(&format!("G :- {}.", atoms.join(", "))).unwrap();
        let mut db = Database::new();
        db.add_table("E", ["a", "b"], [tuple![1, 2]]).unwrap();
        assert!(matches!(
            evaluate(&q, &db),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn constants_and_constant_only_atoms() {
        let mut db = Database::new();
        db.add_table(
            "E",
            ["a", "b"],
            [tuple![1, 2], tuple![2, 3], tuple![3, 1], tuple![2, 1]],
        )
        .unwrap();
        db.add_table("Flag", ["f"], [tuple![1]]).unwrap();
        // Constant in a cyclic atom + a constant-only guard atom.
        let q = parse_cq("G(y, z) :- E(1, y), E(y, z), E(z, 1), Flag(1).").unwrap();
        let h = evaluate(&q, &db).unwrap();
        let n = naive::evaluate(&q, &db).unwrap();
        assert_eq!(h, n);

        // Empty the guard: output must empty too.
        let mut db2 = db.clone();
        db2.set_relation("Flag", Relation::new(["f"]).unwrap());
        assert!(evaluate(&q, &db2).unwrap().is_empty());
        assert_eq!(
            naive::evaluate(&q, &db2).unwrap(),
            evaluate(&q, &db2).unwrap()
        );
    }

    #[test]
    fn parallel_matches_serial_at_one_and_four_threads() {
        let q = parse_cq("G(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let db = triangle_db();
        let serial = evaluate(&q, &db).unwrap();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let shared = ExecutionContext::unlimited().into_shared();
            let par = evaluate_parallel(&q, &db, &shared, &pool).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            let shared2 = ExecutionContext::unlimited().into_shared();
            assert!(is_nonempty_parallel(&q, &db, &shared2, &pool).unwrap());
        }
    }

    #[test]
    fn budget_exhaustion_names_this_engine() {
        let q = parse_cq("G(x, y, z) :- E(x, y), E(y, z), E(z, x).").unwrap();
        let db = triangle_db();
        let ctx = ExecutionContext::new().with_tuple_budget(2);
        match evaluate_governed(&q, &db, &ctx) {
            Err(EngineError::ResourceExhausted { engine, .. }) => {
                // Atom scans charge under the yannakakis helper; bag joins
                // charge under this engine. Either way the query stops.
                assert!(engine == "hypertree" || engine == "yannakakis");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
