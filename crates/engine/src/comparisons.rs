//! Consistency and implied-equality analysis for comparison constraints
//! (`<`, `≤`) — the preprocessing Theorem 3 prescribes before even defining
//! acyclicity for queries with comparisons.
//!
//! "This can be done (for dense orders) by forming a graph whose nodes are
//! the variables and constants in C, with a directed arc u → w … labeled
//! < or ≤ … The system is consistent iff there is no strongly connected
//! component that contains a < arc, and the implied equalities are that all
//! nodes of the same strong component are equal" (citing Klug \[10\]).
//!
//! We treat the order as dense, exactly as the paper does; over the integer
//! constants this is a (documented) relaxation — `x < y ∧ y < x+1` is
//! reported consistent.

use std::collections::{BTreeMap, HashMap};

use pq_data::Value;
use pq_query::{CmpOp, Comparison, ConjunctiveQuery, Term};

use crate::error::{EngineError, Result};

/// Result of analysing a comparison system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonAnalysis {
    /// Whether the system admits a solution over a dense order.
    pub consistent: bool,
    /// For each term mentioned in the system, its representative after
    /// collapsing implied equalities. Constants represent their component
    /// whenever present.
    pub representative: BTreeMap<Term, Term>,
    /// The implied equalities (pairs of distinct terms forced equal).
    pub equalities: Vec<(Term, Term)>,
}

/// Build the constraint graph and analyse it.
pub fn analyze(comps: &[Comparison]) -> ComparisonAnalysis {
    // Intern the terms appearing in the constraints.
    let mut terms: Vec<Term> = Vec::new();
    let mut index: HashMap<Term, usize> = HashMap::new();
    let intern = |t: &Term, terms: &mut Vec<Term>, index: &mut HashMap<Term, usize>| {
        if let Some(&i) = index.get(t) {
            return i;
        }
        let i = terms.len();
        terms.push(t.clone());
        index.insert(t.clone(), i);
        i
    };
    let mut edges: Vec<(usize, usize, bool)> = Vec::new(); // (from, to, strict)
    for c in comps {
        let a = intern(&c.left, &mut terms, &mut index);
        let b = intern(&c.right, &mut terms, &mut index);
        edges.push((a, b, c.op == CmpOp::Lt));
    }
    // Arcs between constants by their actual order.
    let consts: Vec<(usize, Value)> = terms
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.as_const().map(|c| (i, c.clone())))
        .collect();
    for (i, (ia, ca)) in consts.iter().enumerate() {
        for (ib, cb) in consts.iter().skip(i + 1) {
            match ca.cmp(cb) {
                std::cmp::Ordering::Less => edges.push((*ia, *ib, true)),
                std::cmp::Ordering::Greater => edges.push((*ib, *ia, true)),
                std::cmp::Ordering::Equal => unreachable!("terms are interned uniquely"),
            }
        }
    }

    let n = terms.len();
    let comp_of = scc(n, &edges);

    // Inconsistent iff a strict arc stays within one component.
    let consistent = edges
        .iter()
        .all(|&(a, b, strict)| !(strict && comp_of[a] == comp_of[b]));

    // Representatives: constant if the component has one, else the smallest
    // variable. Two distinct constants in a component ⇒ inconsistent — but
    // that already shows as a strict arc inside the component (we added
    // c → c' arcs for c < c').
    let mut rep_of_comp: BTreeMap<usize, Term> = BTreeMap::new();
    for (i, t) in terms.iter().enumerate() {
        let c = comp_of[i];
        match rep_of_comp.get(&c) {
            None => {
                rep_of_comp.insert(c, t.clone());
            }
            Some(existing) => {
                let better = match (existing.as_const().is_some(), t.as_const().is_some()) {
                    (false, true) => true, // constants win
                    (true, false) | (true, true) => false,
                    (false, false) => t < existing, // smaller variable name
                };
                if better {
                    rep_of_comp.insert(c, t.clone());
                }
            }
        }
    }

    let mut representative = BTreeMap::new();
    let mut equalities = Vec::new();
    for (i, t) in terms.iter().enumerate() {
        let rep = rep_of_comp[&comp_of[i]].clone();
        if &rep != t {
            equalities.push((t.clone(), rep.clone()));
        }
        representative.insert(t.clone(), rep);
    }

    ComparisonAnalysis {
        consistent,
        representative,
        equalities,
    }
}

/// Iterative Kosaraju strongly-connected components; returns a component id
/// per node.
fn scc(n: usize, edges: &[(usize, usize, bool)]) -> Vec<usize> {
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b, _) in edges {
        fwd[a].push(b);
        bwd[b].push(a);
    }
    // Pass 1: order by DFS finish time on the forward graph.
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
        visited[s] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < fwd[v].len() {
                let w = fwd[v][*next];
                *next += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: sweep the transpose in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(v) = stack.pop() {
            for &w in &bwd[v] {
                if comp[w] == usize::MAX {
                    comp[w] = c;
                    stack.push(w);
                }
            }
        }
        c += 1;
    }
    comp
}

/// Collapse a conjunctive query's comparison system: check consistency,
/// identify equal terms, rewrite the query over representatives, and drop
/// the comparisons that became internal to a component.
///
/// Returns `Ok(None)` when the system is inconsistent (the query answer is
/// empty); otherwise the rewritten query `Q'` whose comparison graph is
/// acyclic. Theorem 3's notion of acyclicity applies to `Q'`.
pub fn collapse_query(q: &ConjunctiveQuery) -> Result<Option<ConjunctiveQuery>> {
    if !q.neqs.is_empty() {
        return Err(EngineError::Unsupported(
            "collapse_query handles comparison atoms; mix with ≠ is out of the paper's scope"
                .into(),
        ));
    }
    let analysis = analyze(&q.comparisons);
    if !analysis.consistent {
        return Ok(None);
    }

    let rep = |t: &Term| {
        analysis
            .representative
            .get(t)
            .cloned()
            .unwrap_or_else(|| t.clone())
    };

    // Rewrite terms everywhere.
    let map_term = |t: &Term| rep(t);
    let map_atom =
        |a: &pq_query::Atom| pq_query::Atom::new(a.relation.clone(), a.terms.iter().map(map_term));
    let mut comparisons: Vec<Comparison> = Vec::new();
    for c in &q.comparisons {
        let l = rep(&c.left);
        let r = rep(&c.right);
        if l == r {
            continue; // internal to a component: an implied equality
        }
        if let (Term::Const(a), Term::Const(b)) = (&l, &r) {
            // Between distinct constants: true by consistency; drop.
            debug_assert!(c.op.eval(a, b));
            continue;
        }
        let rewritten = Comparison::new(l, c.op, r);
        if !comparisons.contains(&rewritten) {
            comparisons.push(rewritten);
        }
    }

    Ok(Some(ConjunctiveQuery {
        head_name: q.head_name.clone(),
        head_terms: q.head_terms.iter().map(map_term).collect(),
        atoms: q.atoms.iter().map(map_atom).collect(),
        neqs: Vec::new(),
        comparisons,
    }))
}

/// Theorem 3's acyclicity test for conjunctive queries with comparisons:
/// collapse first, then test the relational hypergraph of the collapsed
/// query. Inconsistent systems are vacuously acyclic (empty answer).
pub fn is_acyclic_with_comparisons(q: &ConjunctiveQuery) -> Result<bool> {
    match collapse_query(q)? {
        None => Ok(true),
        Some(q2) => Ok(q2.is_acyclic()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::parse_cq;

    fn cmp(l: Term, op: CmpOp, r: Term) -> Comparison {
        Comparison::new(l, op, r)
    }

    #[test]
    fn empty_system_is_consistent() {
        let a = analyze(&[]);
        assert!(a.consistent);
        assert!(a.equalities.is_empty());
    }

    #[test]
    fn weak_cycle_implies_equality() {
        // x ≤ y ∧ y ≤ x ⇒ x = y, consistent.
        let a = analyze(&[
            cmp(Term::var("x"), CmpOp::Le, Term::var("y")),
            cmp(Term::var("y"), CmpOp::Le, Term::var("x")),
        ]);
        assert!(a.consistent);
        assert_eq!(a.equalities.len(), 1);
        assert_eq!(a.representative[&Term::var("y")], Term::var("x"));
    }

    #[test]
    fn strict_cycle_is_inconsistent() {
        let a = analyze(&[
            cmp(Term::var("x"), CmpOp::Lt, Term::var("y")),
            cmp(Term::var("y"), CmpOp::Le, Term::var("x")),
        ]);
        assert!(!a.consistent);
    }

    #[test]
    fn constants_order_themselves() {
        // x ≤ 3 ∧ 5 ≤ x forces 5 ≤ x ≤ 3, and 3 < 5 → inconsistent.
        let a = analyze(&[
            cmp(Term::var("x"), CmpOp::Le, Term::cons(3)),
            cmp(Term::cons(5), CmpOp::Le, Term::var("x")),
        ]);
        assert!(!a.consistent);
        // x ≤ 5 ∧ 3 ≤ x is fine.
        let b = analyze(&[
            cmp(Term::var("x"), CmpOp::Le, Term::cons(5)),
            cmp(Term::cons(3), CmpOp::Le, Term::var("x")),
        ]);
        assert!(b.consistent);
    }

    #[test]
    fn variable_pinned_to_constant() {
        // x ≤ 3 ∧ 3 ≤ x ⇒ x = 3; the constant represents.
        let a = analyze(&[
            cmp(Term::var("x"), CmpOp::Le, Term::cons(3)),
            cmp(Term::cons(3), CmpOp::Le, Term::var("x")),
        ]);
        assert!(a.consistent);
        assert_eq!(a.representative[&Term::var("x")], Term::cons(3));
    }

    #[test]
    fn chain_of_weak_equalities_collapses_transitively() {
        let a = analyze(&[
            cmp(Term::var("a"), CmpOp::Le, Term::var("b")),
            cmp(Term::var("b"), CmpOp::Le, Term::var("c")),
            cmp(Term::var("c"), CmpOp::Le, Term::var("a")),
        ]);
        assert!(a.consistent);
        assert_eq!(a.representative[&Term::var("c")], Term::var("a"));
        assert_eq!(a.representative[&Term::var("b")], Term::var("a"));
    }

    #[test]
    fn collapse_rewrites_query() {
        // s ≤ t, t ≤ s: collapse merges them; atom R(s,t) becomes R(s,s).
        let q = parse_cq("G(s) :- R(s, t), s <= t, t <= s.").unwrap();
        let q2 = collapse_query(&q).unwrap().expect("consistent");
        assert_eq!(q2.atoms[0].terms[0], q2.atoms[0].terms[1]);
        assert!(q2.comparisons.is_empty());
    }

    #[test]
    fn collapse_detects_inconsistency() {
        let q = parse_cq("G :- R(x, y), x < y, y < x.").unwrap();
        assert_eq!(collapse_query(&q).unwrap(), None);
    }

    #[test]
    fn paper_salary_example_is_acyclic() {
        let q = parse_cq("G(e) :- EM(e, m), ES(e, s), ES(m, s2), s2 < s.").unwrap();
        assert!(is_acyclic_with_comparisons(&q).unwrap());
    }

    #[test]
    fn dense_order_relaxation_documented_behavior() {
        // Over integers x < y < x+1 is impossible, but dense-order analysis
        // accepts it — exactly as the paper (and Klug) define consistency.
        let a = analyze(&[
            cmp(Term::var("x"), CmpOp::Lt, Term::var("y")),
            cmp(Term::var("y"), CmpOp::Lt, Term::cons(1)),
            cmp(Term::cons(0), CmpOp::Lt, Term::var("x")),
        ]);
        assert!(a.consistent);
    }

    #[test]
    fn mixed_neq_rejected() {
        let q = parse_cq("G :- R(x, y), x != y, x < y.").unwrap();
        assert!(collapse_query(&q).is_err());
    }

    #[test]
    fn scc_on_disjoint_graphs() {
        let comp = scc(4, &[(0, 1, false), (1, 0, false), (2, 3, true)]);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }
}
