//! Algorithms 1 and 2 of Section 5, for a fixed hash function `h`.
//!
//! Given an acyclic conjunctive query with `≠` atoms, a database, and a
//! coloring `h : D → {1, …, k}`, [`algorithm1`] decides whether some
//! *consistent satisfying instantiation* exists (one that satisfies all
//! relational and inequality atoms and whose `V1`-values get distinct colors
//! pairwise across each `I1` inequality), and [`algorithm2`] computes
//! `Q_h(d) = { τ(t0) | τ ∈ Θ_h }`. The driver in [`super::driver`] then
//! ranges `h` over a random or k-perfect family.

use std::collections::BTreeSet;

use pq_data::{Database, Relation, Tuple, Value};
use pq_hypergraph::{join_tree, Hypergraph, JoinTree};
use pq_query::ConjunctiveQuery;

use super::hashing::{Coloring, DomainIndex};
use super::partition::NeqPartition;
use crate::error::{EngineError, Result};
use crate::governor::ExecutionContext;
use crate::yannakakis::atom_relation_governed;

/// Engine name reported in resource-exhaustion errors.
const ENGINE: &str = "color-coding";

/// The hashed-attribute name for variable `x` (the paper's `x'`). The `#`
/// cannot appear in parsed variable names, so no collision is possible.
pub fn hashed_attr(x: &str) -> String {
    format!("{x}#h")
}

/// Everything about the query that does not depend on the hash function —
/// computed once, reused for every `h` in the family.
pub struct Prepared {
    /// The query hypergraph (relational atoms only).
    pub hg: Hypergraph,
    /// A join tree for it.
    pub tree: JoinTree,
    /// The `I1`/`I2` partition of the inequalities.
    pub partition: NeqPartition,
    /// `S_j` per atom: constants/equalities of the atom plus all applicable
    /// `I2` inequality selections, projected onto the atom's variables.
    pub s: Vec<Relation>,
    /// `U_j`: the variable set of atom `j`.
    pub u_vars: Vec<BTreeSet<String>>,
    /// `W_j`: the V1-variables from strictly below `j` whose hashed copies
    /// must be carried through node `j` (see Section 5's definition).
    pub w_vars: Vec<BTreeSet<String>>,
    /// `Y_j = U_j ∪ U'_j ∪ W'_j` as attribute names.
    pub y_attrs: Vec<Vec<String>>,
    /// `at(T[j])`: variables appearing in the subtree rooted at `j`.
    pub subtree_vars: Vec<BTreeSet<String>>,
}

impl Prepared {
    /// Build the `h`-independent structure. Fails when the query is cyclic,
    /// has comparison atoms, or references unknown relations.
    ///
    /// `minimize_hashed_attrs` selects the paper's `W_j` definition (true)
    /// or the widened variant carrying *every* subtree `V1`-variable
    /// (false) — ablation A1 of DESIGN.md.
    pub fn build(
        q: &ConjunctiveQuery,
        db: &Database,
        minimize_hashed_attrs: bool,
    ) -> Result<Prepared> {
        Prepared::build_governed(q, db, minimize_hashed_attrs, &ExecutionContext::unlimited())
    }

    /// [`Prepared::build`] under the resource limits of `ctx`.
    pub fn build_governed(
        q: &ConjunctiveQuery,
        db: &Database,
        minimize_hashed_attrs: bool,
        ctx: &ExecutionContext,
    ) -> Result<Prepared> {
        if !q.comparisons.is_empty() {
            return Err(EngineError::Unsupported(
                "color-coding engine handles ≠ only; < comparisons are W[1]-hard (Theorem 3)"
                    .into(),
            ));
        }
        let hg = q.hypergraph();
        let tree = join_tree(&hg)
            .ok_or_else(|| EngineError::Unsupported(format!("query is not acyclic: {q}")))?;
        let partition = NeqPartition::build(q, &hg);

        // S_j: per-atom relations with I2 constraints pushed in.
        let mut s: Vec<Relation> = Vec::with_capacity(q.atoms.len());
        for atom in &q.atoms {
            let mut rel = atom_relation_governed(atom, db, ctx)?;
            for (v, c) in &partition.i2_var_const {
                if rel.attr_pos(v).is_some() {
                    rel = rel.select_ne_const(v, c)?;
                }
            }
            for (a, b) in &partition.i2_var_var {
                if rel.attr_pos(a).is_some() && rel.attr_pos(b).is_some() {
                    rel = rel.select_ne_attrs(a, b)?;
                }
            }
            s.push(rel);
        }

        let u_vars: Vec<BTreeSet<String>> = q
            .atoms
            .iter()
            .map(|a| a.variables().into_iter().map(str::to_string).collect())
            .collect();

        let subtree_vars: Vec<BTreeSet<String>> = (0..q.atoms.len())
            .map(|j| {
                tree.subtree_vertices(&hg, j)
                    .iter()
                    .map(|&v| hg.label(v).to_string())
                    .collect()
            })
            .collect();

        // W_j: V1-variables below j that still have an unresolved I1 partner.
        let mut w_vars: Vec<BTreeSet<String>> = vec![BTreeSet::new(); q.atoms.len()];
        for j in 0..q.atoms.len() {
            for x in &partition.v1 {
                if u_vars[j].contains(x) || !subtree_vars[j].contains(x) {
                    continue;
                }
                // x appears strictly below j, in a unique child subtree.
                let child = tree
                    .children(j)
                    .iter()
                    .copied()
                    .find(|&c| subtree_vars[c].contains(x))
                    .expect("join-tree property: x lives in exactly one child subtree");
                let needed = if minimize_hashed_attrs {
                    partition.i1.iter().any(|(a, b)| {
                        (a == x && !subtree_vars[child].contains(b))
                            || (b == x && !subtree_vars[child].contains(a))
                    })
                } else {
                    true
                };
                if needed {
                    w_vars[j].insert(x.clone());
                }
            }
        }

        let y_attrs: Vec<Vec<String>> = (0..q.atoms.len())
            .map(|j| {
                let mut attrs: Vec<String> = u_vars[j].iter().cloned().collect();
                for x in &u_vars[j] {
                    if partition.in_v1(x) {
                        attrs.push(hashed_attr(x));
                    }
                }
                for x in &w_vars[j] {
                    attrs.push(hashed_attr(x));
                }
                attrs
            })
            .collect();

        Ok(Prepared {
            hg,
            tree,
            partition,
            s,
            u_vars,
            w_vars,
            y_attrs,
            subtree_vars,
        })
    }

    /// `S'_j`: extend `S_j` with one hashed column per `V1`-variable of the
    /// atom, holding `h(value)` as an integer.
    fn extend_with_hashes(&self, j: usize, dom: &DomainIndex, h: &Coloring) -> Relation {
        let base = &self.s[j];
        let hashed_vars: Vec<&String> = self.u_vars[j]
            .iter()
            .filter(|x| self.partition.in_v1(x))
            .collect();
        if hashed_vars.is_empty() {
            return base.clone();
        }
        let mut attrs: Vec<String> = base.attrs().to_vec();
        attrs.extend(hashed_vars.iter().map(|x| hashed_attr(x)));
        let positions: Vec<usize> = hashed_vars
            .iter()
            .map(|x| base.attr_pos(x).expect("hashed var is a column of S_j"))
            .collect();
        let mut out = Relation::new(attrs).expect("distinct attrs by construction");
        for t in base.iter() {
            let extra = positions
                .iter()
                .map(|&p| Value::Int(i64::from(h.color_of(dom, &t[p]))));
            out.insert(t.extend_with(extra)).expect("arity matches");
        }
        out
    }
}

/// Apply the `I1` inequality selections that have *become checkable*: both
/// hashed attributes present in `rel`, and not both already present before
/// the last join (those were filtered earlier).
fn filter_new_i1_pairs(
    rel: Relation,
    partition: &NeqPartition,
    before: &BTreeSet<String>,
) -> Relation {
    let mut out = rel;
    for (a, b) in &partition.i1 {
        let (ha, hb) = (hashed_attr(a), hashed_attr(b));
        let both_now = out.attr_pos(&ha).is_some() && out.attr_pos(&hb).is_some();
        let both_before = before.contains(&ha) && before.contains(&hb);
        if both_now && !both_before {
            out = out.select_ne_attrs(&ha, &hb).expect("attrs present");
        }
    }
    out
}

/// **Algorithm 1 (emptiness test).** Returns the final node relations
/// (`P_u` of the paper) when some consistent satisfying instantiation
/// exists, or `None` when `Q_h(d) = ∅`.
pub fn algorithm1(prep: &Prepared, dom: &DomainIndex, h: &Coloring) -> Option<Vec<Relation>> {
    algorithm1_governed(prep, dom, h, &ExecutionContext::unlimited())
        .expect("unlimited governor cannot trip")
}

/// [`algorithm1`] under the resource limits of `ctx`: every hash-extended
/// node relation and every join result is charged against the tuple budget.
pub fn algorithm1_governed(
    prep: &Prepared,
    dom: &DomainIndex,
    h: &Coloring,
    ctx: &ExecutionContext,
) -> Result<Option<Vec<Relation>>> {
    let n = prep.s.len();
    let mut p: Vec<Relation> = Vec::with_capacity(n);
    for j in 0..n {
        ctx.tick(ENGINE)?;
        let ext = prep.extend_with_hashes(j, dom, h);
        ctx.charge_tuples(ENGINE, ext.len() as u64)?;
        p.push(ext);
    }
    if p.iter().any(Relation::is_empty) {
        return Ok(None);
    }
    for j in prep.tree.bottom_up() {
        ctx.tick(ENGINE)?;
        let Some(u) = prep.tree.parent(j) else {
            continue;
        };
        let keep: Vec<String> = prep.y_attrs[j]
            .iter()
            .filter(|a| prep.y_attrs[u].contains(a))
            .cloned()
            .collect();
        let proj = p[j].project_onto(&keep);
        let before: BTreeSet<String> = p[u].attrs().iter().cloned().collect();
        let joined = p[u].natural_join(&proj).expect("attr sets are consistent");
        let filtered = filter_new_i1_pairs(joined, &prep.partition, &before);
        ctx.charge_tuples(ENGINE, filtered.len() as u64)?;
        if filtered.is_empty() {
            return Ok(None);
        }
        p[u] = filtered;
    }
    Ok(Some(p))
}

/// **Algorithm 2 (evaluation of `Q_h(d)`).** Takes the relations produced by
/// a successful Algorithm 1 run and returns the projection `P* = π_Z(P_1 ⋈ …
/// ⋈ P_s)` over the head variables `Z`, computed without materializing the
/// full join: a top-down dangling-tuple (semijoin) pass, then a bottom-up
/// join+project pass.
pub fn algorithm2(prep: &Prepared, p: Vec<Relation>, head_vars: &[String]) -> Result<Relation> {
    algorithm2_governed(prep, p, head_vars, &ExecutionContext::unlimited())
}

/// [`algorithm2`] under the resource limits of `ctx`.
pub fn algorithm2_governed(
    prep: &Prepared,
    mut p: Vec<Relation>,
    head_vars: &[String],
    ctx: &ExecutionContext,
) -> Result<Relation> {
    // Step 1: top-down semijoins — make the relations globally consistent.
    for j in prep.tree.top_down() {
        ctx.tick(ENGINE)?;
        if let Some(u) = prep.tree.parent(j) {
            p[j] = p[j].semijoin(&p[u]);
            ctx.charge_tuples(ENGINE, p[j].len() as u64)?;
        }
    }

    // Step 2: bottom-up joins, projecting each child onto
    // Z_j = (Y_j ∩ Y_u) ∪ (Z ∩ at(T[j])).
    for j in prep.tree.bottom_up() {
        ctx.tick(ENGINE)?;
        let Some(u) = prep.tree.parent(j) else {
            continue;
        };
        let mut zj: Vec<String> = prep.y_attrs[j]
            .iter()
            .filter(|a| prep.y_attrs[u].contains(a))
            .cloned()
            .collect();
        for z in head_vars {
            if prep.subtree_vars[j].contains(z) && !zj.contains(z) {
                zj.push(z.clone());
            }
        }
        let proj = p[j].project_onto(&zj);
        p[u] = p[u].natural_join(&proj)?;
        ctx.charge_tuples(ENGINE, p[u].len() as u64)?;
    }

    // Step 3: project the root onto Z.
    let z_refs: Vec<&str> = head_vars.iter().map(String::as_str).collect();
    let star = p[prep.tree.root()].project(&z_refs)?;
    ctx.charge_tuples(ENGINE, star.len() as u64)?;
    Ok(star)
}

/// Build the final output relation from `P*` by instantiating the head
/// terms (shared with the Yannakakis engine's convention).
pub fn materialize_head(q: &ConjunctiveQuery, star: &Relation) -> Result<Relation> {
    materialize_head_governed(q, star, &ExecutionContext::unlimited())
}

/// [`materialize_head`] under the resource limits of `ctx`.
pub fn materialize_head_governed(
    q: &ConjunctiveQuery,
    star: &Relation,
    ctx: &ExecutionContext,
) -> Result<Relation> {
    let mut out = Relation::new(crate::binding::head_attrs(&q.head_terms))?;
    for t in star.iter() {
        ctx.tick(ENGINE)?;
        ctx.charge_tuples(ENGINE, 1)?;
        let vals = q.head_terms.iter().map(|term| match term {
            pq_query::Term::Const(c) => c.clone(),
            pq_query::Term::Var(v) => {
                let pos = star.attr_pos(v).expect("head var is a column of P*");
                t[pos].clone()
            }
        });
        out.insert(Tuple::new(vals))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_data::tuple;
    use pq_query::parse_cq;

    fn prep_for(src: &str, db: &Database) -> Prepared {
        let q = parse_cq(src).unwrap();
        Prepared::build(&q, db, true).unwrap()
    }

    fn ep_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            "EP",
            ["e", "p"],
            [
                tuple!["ann", "p1"],
                tuple!["ann", "p2"],
                tuple!["bob", "p1"],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn prepared_structure_for_paper_example() {
        let db = ep_db();
        let prep = prep_for("G(e) :- EP(e, p), EP(e, p2), p != p2.", &db);
        assert_eq!(prep.partition.k(), 2);
        assert_eq!(
            prep.u_vars[0],
            BTreeSet::from(["e".to_string(), "p".to_string()])
        );
        // Y of each node includes its own hashed attr.
        assert!(prep.y_attrs[0].contains(&hashed_attr("p")));
        assert!(prep.y_attrs[1].contains(&hashed_attr("p2")));
    }

    #[test]
    fn algorithm1_distinguishes_colorings() {
        let db = ep_db();
        let prep = prep_for("G(e) :- EP(e, p), EP(e, p2), p != p2.", &db);
        let dom = DomainIndex::from_database(&db);
        // Domain (sorted): ann, bob, p1, p2. A coloring separating p1 and p2
        // must find ann; a constant coloring must fail.
        let idx_p1 = dom.index_of(&Value::str("p1")).unwrap();
        let mut colors = vec![0u32; dom.len()];
        colors[idx_p1] = 1;
        let good = Coloring::new(colors);
        assert!(algorithm1(&prep, &dom, &good).is_some());
        let bad = Coloring::new(vec![0; dom.len()]);
        assert!(algorithm1(&prep, &dom, &bad).is_none());
    }

    #[test]
    fn algorithm2_projects_onto_head() {
        let db = ep_db();
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let prep = Prepared::build(&q, &db, true).unwrap();
        let dom = DomainIndex::from_database(&db);
        let idx_p1 = dom.index_of(&Value::str("p1")).unwrap();
        let mut colors = vec![0u32; dom.len()];
        colors[idx_p1] = 1;
        let p = algorithm1(&prep, &dom, &Coloring::new(colors)).expect("nonempty");
        let star = algorithm2(&prep, p, &["e".to_string()]).unwrap();
        assert_eq!(star.len(), 1);
        assert!(star.contains(&tuple!["ann"]));
    }

    #[test]
    fn i2_constraints_are_enforced_in_s() {
        let mut db = Database::new();
        db.add_table("R", ["a", "b"], [tuple![1, 1], tuple![1, 2]])
            .unwrap();
        let q = parse_cq("G :- R(x, y), x != y.").unwrap();
        let prep = Prepared::build(&q, &db, true).unwrap();
        assert_eq!(prep.partition.k(), 0);
        assert_eq!(prep.s[0].len(), 1); // only (1,2) survives
    }

    #[test]
    fn comparisons_are_rejected() {
        let db = ep_db();
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p < p2.").unwrap();
        assert!(matches!(
            Prepared::build(&q, &db, true),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn cyclic_query_rejected() {
        let mut db = Database::new();
        db.add_table("E", ["a", "b"], [tuple![1, 2]]).unwrap();
        let q = parse_cq("G :- E(x, y), E(y, z), E(z, x), x != z.").unwrap();
        assert!(matches!(
            Prepared::build(&q, &db, true),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn wide_attribute_mode_agrees_on_emptiness() {
        let db = ep_db();
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let dom = DomainIndex::from_database(&db);
        let narrow = Prepared::build(&q, &db, true).unwrap();
        let wide = Prepared::build(&q, &db, false).unwrap();
        let idx_p1 = dom.index_of(&Value::str("p1")).unwrap();
        let mut colors = vec![0u32; dom.len()];
        colors[idx_p1] = 1;
        let h = Coloring::new(colors);
        assert_eq!(
            algorithm1(&narrow, &dom, &h).is_some(),
            algorithm1(&wide, &dom, &h).is_some()
        );
    }
}
