//! Partitioning the inequality atoms into the paper's classes `I1` and `I2`.
//!
//! Section 5: "Partition the inequality atoms of Q into the set I1 of atoms
//! `xi ≠ xj` such that the variables xi, xj do not occur together in any
//! hyperedge (relational atom), and the set I2 of the remaining atoms
//! (`xi ≠ c`, and `xi ≠ xj` such that xi, xj are in a common hyperedge)."
//!
//! Only the `I1` inequalities need the color-coding machinery; `I2`
//! inequalities are enforced locally, inside the per-atom relations `S_j`.

use std::collections::BTreeSet;

use pq_data::Value;
use pq_hypergraph::Hypergraph;
use pq_query::{ConjunctiveQuery, Term};

/// The `I1`/`I2` split of a query's inequality atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeqPartition {
    /// `I1`: variable-variable inequalities whose endpoints never co-occur
    /// in a relational atom. Pairs are stored with the lexicographically
    /// smaller variable first; duplicates are removed.
    pub i1: Vec<(String, String)>,
    /// `I2` variable-variable inequalities (endpoints co-occur in some atom).
    pub i2_var_var: Vec<(String, String)>,
    /// `I2` variable-constant inequalities.
    pub i2_var_const: Vec<(String, Value)>,
    /// `V1`: the distinct variables appearing in `I1`, sorted. Its size is
    /// the color-count parameter `k` of the hash functions.
    pub v1: Vec<String>,
    /// The query is unsatisfiable outright (an atom `x ≠ x`, or `c ≠ c`).
    pub trivially_false: bool,
}

impl NeqPartition {
    /// Split the inequality atoms of `q` against its relational hypergraph.
    pub fn build(q: &ConjunctiveQuery, hg: &Hypergraph) -> NeqPartition {
        let mut i1: BTreeSet<(String, String)> = BTreeSet::new();
        let mut i2_var_var: BTreeSet<(String, String)> = BTreeSet::new();
        let mut i2_var_const: BTreeSet<(String, Value)> = BTreeSet::new();
        let mut trivially_false = false;

        for n in &q.neqs {
            match (&n.left, &n.right) {
                (Term::Var(a), Term::Var(b)) => {
                    if a == b {
                        trivially_false = true;
                        continue;
                    }
                    let (lo, hi) = if a < b {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    };
                    let co = match (hg.vertex(&lo), hg.vertex(&hi)) {
                        (Some(va), Some(vb)) => hg.co_occur(va, vb),
                        // A variable missing from every atom is unsafe; the
                        // driver rejects such queries before reaching here.
                        _ => false,
                    };
                    if co {
                        i2_var_var.insert((lo, hi));
                    } else {
                        i1.insert((lo, hi));
                    }
                }
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                    i2_var_const.insert((v.clone(), c.clone()));
                }
                (Term::Const(a), Term::Const(b)) => {
                    if a == b {
                        trivially_false = true;
                    }
                    // Distinct constants: the atom is vacuously true — drop.
                }
            }
        }

        let v1: Vec<String> = i1
            .iter()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();

        NeqPartition {
            i1: i1.into_iter().collect(),
            i2_var_var: i2_var_var.into_iter().collect(),
            i2_var_const: i2_var_const.into_iter().collect(),
            v1,
            trivially_false,
        }
    }

    /// `k = |V1|`: the number of colors the hash functions need.
    pub fn k(&self) -> usize {
        self.v1.len()
    }

    /// Is `x` a `V1` variable?
    pub fn in_v1(&self, x: &str) -> bool {
        self.v1.iter().any(|v| v == x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_query::{parse_cq, Neq};

    #[test]
    fn paper_example_splits_into_i1() {
        // EP(e,p), EP(e,p2), p != p2: p and p2 never co-occur → I1.
        let q = parse_cq("G(e) :- EP(e, p), EP(e, p2), p != p2.").unwrap();
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert_eq!(part.i1, vec![("p".to_string(), "p2".to_string())]);
        assert!(part.i2_var_var.is_empty());
        assert_eq!(part.v1, vec!["p", "p2"]);
        assert_eq!(part.k(), 2);
    }

    #[test]
    fn co_occurring_pair_goes_to_i2() {
        let q = parse_cq("G :- R(x, y), x != y.").unwrap();
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert!(part.i1.is_empty());
        assert_eq!(part.i2_var_var, vec![("x".to_string(), "y".to_string())]);
        assert_eq!(part.k(), 0);
    }

    #[test]
    fn var_const_always_i2() {
        let q = parse_cq("G :- R(x, y), x != 3.").unwrap();
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert_eq!(part.i2_var_const.len(), 1);
        assert_eq!(part.k(), 0);
    }

    #[test]
    fn degenerate_atoms_detected() {
        let q = parse_cq("G :- R(x, y).").unwrap();
        let q = q.with_neqs([Neq::new(Term::var("x"), Term::var("x"))]);
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert!(part.trivially_false);

        let q2 = parse_cq("G :- R(x, y), 3 != 3.").unwrap();
        let part2 = NeqPartition::build(&q2, &q2.hypergraph());
        assert!(part2.trivially_false);

        // distinct constants: vacuous, not falsifying
        let q3 = parse_cq("G :- R(x, y), 3 != 4.").unwrap();
        let part3 = NeqPartition::build(&q3, &q3.hypergraph());
        assert!(!part3.trivially_false);
        assert!(part3.i1.is_empty() && part3.i2_var_const.is_empty());
    }

    #[test]
    fn duplicates_and_orientation_normalize() {
        let q = parse_cq("G :- R(x), S(y), x != y, y != x.").unwrap();
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert_eq!(part.i1.len(), 1);
    }

    #[test]
    fn mixed_query_partitions_fully() {
        // d, d2 co-occur nowhere; c is compared to a constant.
        let q = parse_cq("G(s) :- SD(s, d), SC(s, c), CD(c, d2), d != d2, c != \"X\".").unwrap();
        let part = NeqPartition::build(&q, &q.hypergraph());
        assert_eq!(part.i1.len(), 1);
        assert_eq!(part.i2_var_const.len(), 1);
        assert_eq!(part.v1, vec!["d", "d2"]);
    }
}
