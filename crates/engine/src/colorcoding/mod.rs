//! The Theorem 2 engine: acyclic conjunctive queries with `≠` inequalities,
//! evaluated in fixed-parameter polynomial time by color coding.
//!
//! Pipeline (Section 5 of the paper):
//!
//! 1. [`partition::NeqPartition`] splits the `≠` atoms into `I2` (checkable
//!    locally inside one atom's relation) and `I1` (endpoints never co-occur;
//!    these are what make the combined complexity NP-complete).
//! 2. [`hashing`] supplies hash functions `h : D → {1,…,k}` with `k = |V1|` —
//!    random (`c·e^k` trials) or an explicit k-perfect family.
//! 3. [`algorithms::algorithm1`] tests emptiness of `Q_h(d)` with one
//!    bottom-up pass over a join tree, carrying *hashed* copies of the `V1`
//!    variables (the `Y_j` attribute sets of Lemma 1) and pushing the `I1`
//!    selections down the tree; [`algorithms::algorithm2`] computes `Q_h(d)`
//!    in time polynomial in input + output.
//! 4. [`driver`] unions over the family: `Q(d) = ⋃_{h∈F} Q_h(d)`.

pub mod algorithms;
pub mod driver;
pub mod formula_neq;
pub mod hashing;
pub mod partition;

pub use algorithms::{
    algorithm1, algorithm1_governed, algorithm2, algorithm2_governed, hashed_attr, Prepared,
};
pub use driver::{
    decide, decide_governed, evaluate, evaluate_governed, evaluate_parallel, is_nonempty,
    is_nonempty_governed, is_nonempty_parallel, ColorCodingOptions,
};
pub use formula_neq::NeqFormula;
pub use hashing::{Coloring, DomainIndex, HashFamily};
pub use partition::NeqPartition;
